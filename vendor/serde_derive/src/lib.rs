//! Offline vendor shim: `#[derive(Serialize, Deserialize)]` for the
//! vendored serde subset, implemented without `syn`/`quote` by
//! hand-walking the `proc_macro` token stream and emitting impl source via
//! `format!` + `.parse()`.
//!
//! Supported input shapes (everything this workspace derives):
//! * structs with named fields, tuple/newtype structs, unit structs;
//! * enums with unit, tuple/newtype, and struct variants (externally
//!   tagged, like real serde: unit → `"Name"`, payload → `{"Name": ...}`);
//! * field attributes `#[serde(skip)]` (omit on serialize, `Default` on
//!   deserialize), `#[serde(default)]` (missing key → `Default`), and
//!   `#[serde(skip_serializing_if = "path")]` (omit the key when
//!   `path(&field)` is true; pair with `default` for round-tripping).
//!
//! Generic parameters are intentionally unsupported (no derived type in
//! this workspace has them) and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Parsed shape
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
    default: bool,
    /// Predicate path from `skip_serializing_if = "path"`: the key is
    /// omitted on serialize when `path(&field)` returns true.
    skip_if: Option<String>,
}

/// Flags folded out of a run of `#[serde(...)]` attributes.
#[derive(Default)]
struct AttrFlags {
    skip: bool,
    default: bool,
    skip_if: Option<String>,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn is_punct(t: Option<&TokenTree>, c: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

fn is_ident(t: Option<&TokenTree>, s: &str) -> bool {
    matches!(t, Some(TokenTree::Ident(id)) if id.to_string() == s)
}

/// Consume leading `#[...]` attributes; fold any `serde(...)` flags found.
fn take_attrs(toks: &[TokenTree], i: &mut usize) -> AttrFlags {
    let mut flags = AttrFlags::default();
    while is_punct(toks.get(*i), '#') {
        if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if is_ident(inner.first(), "serde") {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    let ts: Vec<TokenTree> = args.stream().into_iter().collect();
                    let mut k = 0;
                    while k < ts.len() {
                        match &ts[k] {
                            TokenTree::Ident(id) => match id.to_string().as_str() {
                                "skip" => {
                                    flags.skip = true;
                                    k += 1;
                                }
                                "default" => {
                                    flags.default = true;
                                    k += 1;
                                }
                                "skip_serializing_if" => {
                                    assert!(
                                        is_punct(ts.get(k + 1), '='),
                                        "vendored serde_derive: expected `=` after skip_serializing_if"
                                    );
                                    let lit = match ts.get(k + 2) {
                                        Some(TokenTree::Literal(l)) => l.to_string(),
                                        other => panic!(
                                            "vendored serde_derive: expected string literal for skip_serializing_if, got {other:?}"
                                        ),
                                    };
                                    flags.skip_if = Some(lit.trim_matches('"').to_string());
                                    k += 3;
                                }
                                other => panic!(
                                    "vendored serde_derive: unsupported serde attribute `{other}`"
                                ),
                            },
                            TokenTree::Punct(p) if p.as_char() == ',' => k += 1,
                            other => panic!(
                                "vendored serde_derive: unexpected token {other:?} in serde attribute"
                            ),
                        }
                    }
                }
            }
        } else {
            panic!("vendored serde_derive: malformed attribute");
        }
        *i += 2;
    }
    flags
}

/// Consume an optional `pub` / `pub(...)` visibility.
fn take_vis(toks: &[TokenTree], i: &mut usize) {
    if is_ident(toks.get(*i), "pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = toks.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

/// Skip tokens until a `,` at angle-bracket depth 0 (the end of a field's
/// type), consuming the comma. Groups are atomic in the token tree, so only
/// `<`/`>` puncts need depth tracking.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let flags = take_attrs(&toks, &mut i);
        take_vis(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("vendored serde_derive: expected field name, got {other:?}"),
        };
        i += 1;
        assert!(is_punct(toks.get(i), ':'), "vendored serde_derive: expected `:` after field name");
        i += 1;
        skip_type(&toks, &mut i);
        fields.push(Field {
            name,
            skip: flags.skip,
            default: flags.default,
            skip_if: flags.skip_if,
        });
    }
    fields
}

/// Count comma-separated items at angle-depth 0 inside a tuple body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < toks.len() {
        // `skip_type` also swallows leading attrs/vis tokens — only the
        // comma positions matter for arity.
        skip_type(&toks, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        take_attrs(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("vendored serde_derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if is_punct(toks.get(i), ',') {
            i += 1;
        } else if i < toks.len() {
            panic!("vendored serde_derive: unsupported tokens after variant `{name}` (discriminants are not supported)");
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    take_attrs(&toks, &mut i);
    take_vis(&toks, &mut i);
    let is_enum = if is_ident(toks.get(i), "struct") {
        false
    } else if is_ident(toks.get(i), "enum") {
        true
    } else {
        panic!("vendored serde_derive: only structs and enums are supported");
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("vendored serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if is_punct(toks.get(i), '<') {
        panic!("vendored serde_derive: generic types are not supported (derived type `{name}`)");
    }
    let shape = if is_enum {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("vendored serde_derive: expected enum body, got {other:?}"),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("vendored serde_derive: expected struct body, got {other:?}"),
        }
    };
    Input { name, shape }
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

/// `Vec<(String, Value)>` builder for a named-field set read from `prefix`
/// (`&self.` for structs, bare bindings for match arms).
fn ser_named(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut s = String::from("{ let mut __m: Vec<(String, ::serde::value::Value)> = Vec::new();\n");
    for f in fields {
        if f.skip {
            continue;
        }
        let push = format!(
            "__m.push((\"{n}\".to_string(), ::serde::Serialize::to_json_value(&{a})));\n",
            n = f.name,
            a = access(&f.name)
        );
        match &f.skip_if {
            Some(path) => {
                s.push_str(&format!("if !{path}(&{a}) {{ {push} }}\n", a = access(&f.name)))
            }
            None => s.push_str(&push),
        }
    }
    s.push_str("::serde::value::Value::Map(__m) }");
    s
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => ser_named(fields, |f| format!("self.{f}")),
        Shape::TupleStruct(0) | Shape::UnitStruct => "::serde::value::Value::Null".to_string(),
        Shape::TupleStruct(1) => "::serde::Serialize::to_json_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_json_value(&self.{k})")).collect();
            format!("::serde::value::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::value::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::value::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_json_value(__f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::value::Value::Map(vec![(\"{vn}\".to_string(), ::serde::value::Value::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let inner = ser_named(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::value::Value::Map(vec![(\"{vn}\".to_string(), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

/// Construct `path { ... }` from a map value expression `src` (an expression
/// of type `&Value`).
fn de_named(ty: &str, path: &str, src: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        let n = &f.name;
        if f.skip {
            inits.push_str(&format!("{n}: ::core::default::Default::default(),\n"));
        } else if f.default {
            inits.push_str(&format!(
                "{n}: match __v.get(\"{n}\") {{ Some(__x) => ::serde::Deserialize::from_json_value(__x)?, None => ::core::default::Default::default() }},\n"
            ));
        } else {
            inits.push_str(&format!(
                "{n}: match __v.get(\"{n}\") {{ Some(__x) => ::serde::Deserialize::from_json_value(__x)?, None => return Err(::serde::value::Error::missing_field(\"{ty}\", \"{n}\")) }},\n"
            ));
        }
    }
    format!(
        "{{ let __v = {src};\n\
         if __v.as_map().is_none() {{ return Err(::serde::value::Error::custom(format!(\"expected object for {ty}, found {{}}\", __v.kind()))); }}\n\
         Ok({path} {{\n{inits}}}) }}"
    )
}

fn de_tuple(ty: &str, path: &str, src: &str, n: usize) -> String {
    if n == 1 {
        return format!("Ok({path}(::serde::Deserialize::from_json_value({src})?))");
    }
    let items: Vec<String> =
        (0..n).map(|k| format!("::serde::Deserialize::from_json_value(&__xs[{k}])?")).collect();
    format!(
        "{{ let __xs = {src}.as_seq().ok_or_else(|| ::serde::value::Error::custom(\"expected array for {ty}\"))?;\n\
         if __xs.len() != {n} {{ return Err(::serde::value::Error::custom(\"wrong tuple arity for {ty}\")); }}\n\
         Ok({path}({items})) }}",
        items = items.join(", ")
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => de_named(name, name, "__value", fields),
        Shape::TupleStruct(0) | Shape::UnitStruct => format!("Ok({name} {{}})")
            .replace("{}", if matches!(input.shape, Shape::UnitStruct) { "" } else { "()" }),
        Shape::TupleStruct(n) => de_tuple(name, name, "__value", *n),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tag_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"));
                        // Also accept `{"Name": null}` for leniency.
                        tag_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantKind::Tuple(n) => {
                        let inner = de_tuple(
                            &format!("{name}::{vn}"),
                            &format!("{name}::{vn}"),
                            "__inner",
                            *n,
                        );
                        tag_arms.push_str(&format!("\"{vn}\" => {inner},\n"));
                    }
                    VariantKind::Struct(fields) => {
                        let inner = de_named(
                            &format!("{name}::{vn}"),
                            &format!("{name}::{vn}"),
                            "__inner",
                            fields,
                        );
                        tag_arms.push_str(&format!("\"{vn}\" => {inner},\n"));
                    }
                }
            }
            format!(
                "if let Some(__s) = __value.as_str() {{\n\
                 match __s {{\n{unit_arms}\
                 __other => return Err(::serde::value::Error::custom(format!(\"unknown variant `{{__other}}` for {name}\"))),\n}}\n}}\n\
                 let __m = __value.as_map().ok_or_else(|| ::serde::value::Error::custom(format!(\"expected string or object for enum {name}, found {{}}\", __value.kind())))?;\n\
                 if __m.len() != 1 {{ return Err(::serde::value::Error::custom(\"expected single-key object for enum {name}\")); }}\n\
                 let (__tag, __inner) = (&__m[0].0, &__m[0].1);\n\
                 let _ = __inner;\n\
                 match __tag.as_str() {{\n{tag_arms}\
                 __other => Err(::serde::value::Error::custom(format!(\"unknown variant `{{__other}}` for {name}\"))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_json_value(__value: &::serde::value::Value) -> Result<Self, ::serde::value::Error> {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("vendored serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("vendored serde_derive: generated Deserialize impl failed to parse")
}
