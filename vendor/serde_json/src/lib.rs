//! Offline vendor shim for the subset of `serde_json` this workspace uses:
//! `to_string`, `to_string_pretty`, `from_str`, the [`json!`] macro, and
//! [`Value`] (re-exported from the vendored `serde`'s value tree).

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};

pub use serde::value::{Error, Value};

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Deserialize `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_json_value(&v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Rust's shortest-roundtrip Display; integral values render
                // without a fraction ("3"), which is still a JSON number.
                out.push_str(&f.to_string());
            } else {
                // Match serde_json: non-finite floats become null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(x, out, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(x, out, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected '{'")?;
        let mut m = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' in object")?;
            let v = self.value()?;
            m.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(m));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected '['")?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(xs));
        }
        loop {
            xs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(xs));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected string")?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1; // '\\'
                                self.eat(b'u', "expected \\u after high surrogate")?;
                                // hex4 advances past 'u' itself below; rewind one
                                self.pos -= 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                s.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?,
                                );
                            } else {
                                s.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid \\u escape"))?,
                                );
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Consume `u` + 4 hex digits (caller sits on the `u`).
    fn hex4(&mut self) -> Result<u32, Error> {
        self.pos += 1; // 'u'
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number"))
        } else if neg {
            text.parse::<i64>().map(Value::I64).map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<u64>().map(Value::U64).map_err(|_| self.err("invalid number"))
        }
    }
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Build a [`Value`] from JSON-ish syntax. Supports object and array
/// literals (with arbitrary expression values), `null`, and bare
/// serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($body:tt)* }) => {{
        let mut __jm: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_object_entries!(__jm; $($body)*);
        $crate::Value::Map(__jm)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`]: munch `"key": value` pairs, where a
/// value is a nested object/array literal, `null`, or any expression.
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_entries {
    ($m:ident;) => {};
    ($m:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $m.extend([($key.to_string(), $crate::json!({ $($inner)* }))]);
        $crate::json_object_entries!($m; $($($rest)*)?);
    };
    ($m:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $m.extend([($key.to_string(), $crate::json!([ $($inner)* ]))]);
        $crate::json_object_entries!($m; $($($rest)*)?);
    };
    ($m:ident; $key:literal : null $(, $($rest:tt)*)?) => {
        $m.extend([($key.to_string(), $crate::Value::Null)]);
        $crate::json_object_entries!($m; $($($rest)*)?);
    };
    ($m:ident; $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $m.extend([($key.to_string(), $crate::to_value(&$val))]);
        $crate::json_object_entries!($m; $($($rest)*)?);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
    }

    #[test]
    fn roundtrip_containers() {
        let xs = vec![(1u64, "a".to_string()), (2, "b".to_string())];
        let s = to_string(&xs).unwrap();
        assert_eq!(s, r#"[[1,"a"],[2,"b"]]"#);
        let back: Vec<(u64, String)> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn parses_nested_object() {
        let v: Value = from_str(r#"{"eps":{"num":2147483648},"t_window":8}"#).unwrap();
        assert_eq!(
            v.get("eps").and_then(|e| e.get("num")).and_then(Value::as_u64),
            Some(2147483648)
        );
        assert_eq!(v.get("t_window").and_then(Value::as_u64), Some(8));
    }

    #[test]
    fn string_escapes() {
        let v: Value = from_str(r#""A\t\\\" é""#).unwrap();
        assert_eq!(v.as_str(), Some("A\t\\\" é"));
        let v: Value = from_str(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn json_macro() {
        let n = 7u64;
        let v = json!({
            "a": n,
            "b": [1u64, 2u64],
            "c": { "nested": true },
            "d": null,
            "e": format!("x{n}"),
        });
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":7,"b":[1,2],"c":{"nested":true},"d":null,"e":"x7"}"#);
    }

    #[test]
    fn pretty_has_indentation() {
        let v = json!({"a": 1u64, "b": [true]});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"a\": 1"), "{s}");
        assert!(s.ends_with('}'));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }
}
