//! Offline vendor shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors a minimal, dependency-free implementation of the `rand`
//! surface it actually touches: [`RngCore`], [`SeedableRng`], the [`Rng`]
//! extension methods `gen`, `gen_bool`, `gen_range`, the
//! [`rngs::SmallRng`] generator (xoshiro256++ seeded via SplitMix64, the
//! same construction real `rand` 0.8 uses on 64-bit targets), and
//! [`rngs::mock::StepRng`].
//!
//! Determinism contract: every generator here is a pure function of its
//! seed, and every sampling helper consumes a *fixed* number of raw draws
//! per call (`gen_bool` and float `gen` take exactly one `next_u64`,
//! integer `gen_range` exactly one). The simulation engines rely on that
//! for bit-reproducible runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of raw randomness.
///
/// Matches the object-safe core of `rand::RngCore`; protocols receive it
/// as `&mut dyn RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (the only constructor the
    /// workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// The `0.5`-exclusive upper bound of the 53-bit float mantissa space.
const F64_SCALE: f64 = 1.0 / (1u64 << 53) as f64;

/// Convenience sampling methods, available on every [`RngCore`]
/// (including `&mut dyn RngCore` trait objects for the non-generic
/// methods).
pub trait Rng: RngCore {
    /// Sample a value whose type implements [`Standard`] sampling.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// Consumes exactly one `next_u64`. `p >= 1.0` always yields `true`,
    /// `p <= 0.0` always `false`.
    ///
    /// # Panics
    /// Panics if `p` is NaN (mirrors `rand`'s rejection of invalid `p`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(!p.is_nan(), "gen_bool requires a non-NaN probability");
        ((self.next_u64() >> 11) as f64 * F64_SCALE) < p
    }

    /// Uniform draw from a range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly from their "standard" distribution
/// (`[0, 1)` for floats, the full domain for integers and `bool`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * F64_SCALE
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift ("Lemire") bounded draw: uniform in `[0, bound)` with
/// bias below `2^-64`, consuming exactly one `next_u64`.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded_u64(rng, width) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let width = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if width == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start + bounded_u64(rng, width) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(bounded_u64(rng, width) as $t)
            }
        }
    )*};
}
impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = (rng.next_u64() >> 11) as f64 * F64_SCALE;
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64: seeds the xoshiro state (same scheme as `rand` 0.8's
    /// `seed_from_u64`).
    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state; SplitMix64
            // cannot produce four zeros from any seed, but keep the guard
            // for clarity.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    pub mod mock {
        //! Deterministic mock generators for tests.

        use super::super::RngCore;

        /// Arithmetic-progression "generator": yields `initial`,
        /// `initial + step`, `initial + 2*step`, … Useful for driving
        /// protocol decisions down a known path in unit tests.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            next: u64,
            step: u64,
        }

        impl StepRng {
            /// Create a mock generator.
            pub fn new(initial: u64, step: u64) -> Self {
                StepRng { next: initial, step }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                (self.next_u64() >> 32) as u32
            }
            fn next_u64(&mut self) -> u64 {
                let v = self.next;
                self.next = self.next.wrapping_add(self.step);
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{mock::StepRng, SmallRng};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
        assert!((0..64).all(|_| !rng.gen_bool(0.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "hits {hits}");
    }

    #[test]
    fn gen_bool_works_through_dyn_rngcore() {
        let mut rng = SmallRng::seed_from_u64(2);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let hits = (0..1000).filter(|_| dyn_rng.gen_bool(0.5)).count();
        assert!((400..600).contains(&hits), "hits {hits}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn step_rng_is_an_arithmetic_progression() {
        let mut rng = StepRng::new(3, 10);
        assert_eq!(rng.next_u64(), 3);
        assert_eq!(rng.next_u64(), 13);
        assert_eq!(rng.next_u64(), 23);
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
