//! Offline vendor shim for the subset of `serde` this workspace uses.
//!
//! Instead of serde's visitor architecture, this shim round-trips every
//! serializable type through an owned JSON value tree ([`value::Value`]):
//! `Serialize` renders to a `Value`, `Deserialize` reads from one, and the
//! companion `serde_json` shim converts `Value` to/from text. The derive
//! macros (`serde_derive`, re-exported under the `derive` feature) generate
//! these impls with serde's externally-tagged enum representation, so JSON
//! produced by the real serde for this workspace's types parses here and
//! vice versa. Supported field attributes: `#[serde(skip)]` and
//! `#[serde(default)]`.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Error, Value};

/// Render `self` as a JSON value tree.
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

/// Reconstruct `Self` from a JSON value tree.
pub trait Deserialize: Sized {
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        T::from_json_value(v).map(Box::new)
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    ref other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) if n <= i64::MAX as u64 => n as i64,
                    Value::F64(f)
                        if f.fract() == 0.0
                            && f >= i64::MIN as f64
                            && f <= i64::MAX as f64 =>
                    {
                        f as i64
                    }
                    ref other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::F64(f) => Ok(f as $t),
                    Value::U64(n) => Ok(n as $t),
                    Value::I64(n) => Ok(n as $t),
                    ref other => Err(Error::custom(format!(
                        "expected number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(Error::custom(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => {
                Err(Error::custom(format!("expected single-char string, found {}", other.kind())))
            }
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(x) => x.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(xs) => xs.iter().map(T::from_json_value).collect(),
            other => Err(Error::custom(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> Value {
        Value::Seq(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(xs) if xs.len() == 2 => {
                Ok((A::from_json_value(&xs[0])?, B::from_json_value(&xs[1])?))
            }
            other => {
                Err(Error::custom(format!("expected 2-element array, found {}", other.kind())))
            }
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json_value(&self) -> Value {
        Value::Seq(vec![self.0.to_json_value(), self.1.to_json_value(), self.2.to_json_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(xs) if xs.len() == 3 => Ok((
                A::from_json_value(&xs[0])?,
                B::from_json_value(&xs[1])?,
                C::from_json_value(&xs[2])?,
            )),
            other => {
                Err(Error::custom(format!("expected 3-element array, found {}", other.kind())))
            }
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_json_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
            self.3.to_json_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(xs) if xs.len() == 4 => Ok((
                A::from_json_value(&xs[0])?,
                B::from_json_value(&xs[1])?,
                C::from_json_value(&xs[2])?,
                D::from_json_value(&xs[3])?,
            )),
            other => {
                Err(Error::custom(format!("expected 4-element array, found {}", other.kind())))
            }
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize, E: Serialize> Serialize
    for (A, B, C, D, E)
{
    fn to_json_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
            self.3.to_json_value(),
            self.4.to_json_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize, E: Deserialize> Deserialize
    for (A, B, C, D, E)
{
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(xs) if xs.len() == 5 => Ok((
                A::from_json_value(&xs[0])?,
                B::from_json_value(&xs[1])?,
                C::from_json_value(&xs[2])?,
                D::from_json_value(&xs[3])?,
                E::from_json_value(&xs[4])?,
            )),
            other => {
                Err(Error::custom(format!("expected 5-element array, found {}", other.kind())))
            }
        }
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u64::from_json_value(&42u64.to_json_value()).unwrap(), 42);
        assert_eq!(i64::from_json_value(&(-7i64).to_json_value()).unwrap(), -7);
        assert!(bool::from_json_value(&true.to_json_value()).unwrap());
        assert_eq!(String::from_json_value(&"hi".to_string().to_json_value()).unwrap(), "hi");
        let v: Option<u64> = None;
        assert_eq!(v.to_json_value(), Value::Null);
        assert_eq!(Option::<u64>::from_json_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn cross_type_numbers() {
        // JSON has one number type; integer-valued floats coerce.
        assert_eq!(u64::from_json_value(&Value::F64(3.0)).unwrap(), 3);
        assert!(u64::from_json_value(&Value::F64(3.5)).is_err());
        assert!(u8::from_json_value(&Value::U64(300)).is_err());
        assert_eq!(f64::from_json_value(&Value::U64(3)).unwrap(), 3.0);
    }

    #[test]
    fn containers() {
        let xs = vec![(1u64, "a".to_string()), (2, "b".to_string())];
        let v = xs.to_json_value();
        let back: Vec<(u64, String)> = Deserialize::from_json_value(&v).unwrap();
        assert_eq!(back, xs);
    }
}
