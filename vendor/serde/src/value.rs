//! The owned JSON value tree all (de)serialization routes through.

use std::fmt;

/// A JSON value. Maps preserve insertion order (fields serialize in
/// declaration order, like serde's derive).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Human name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(f) => Some(f),
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// (De)serialization error: a message, optionally with JSON text position
/// context added by the parser.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }

    /// A field required by the target type was absent.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error::custom(format!("missing field `{field}` while deserializing {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}
