//! Offline vendor shim for the subset of `criterion` 0.5 this workspace
//! uses. Provides real wall-clock measurements (calibrated iteration
//! counts, median-of-samples reporting, optional element throughput) but
//! none of criterion's statistics, HTML reports, or baselines — results
//! are printed as plain text, one line per benchmark.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported for convenience.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation: scales the report into elements/second.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Per-iteration timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level driver: holds defaults shared by all groups.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Builder: number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        println!("group: {name}");
        BenchmarkGroup { _criterion: self, name, sample_size, throughput: None }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let sample_size = self.sample_size;
        run_benchmark("", &id.into().id, sample_size, None, f);
    }
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_benchmark(&self.name, &id.into().id, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&self.name, &id.id, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Target wall-clock per timed sample; keeps total runtime bounded while
/// amortizing timer overhead.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);

fn run_benchmark<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate: run one iteration to estimate cost, then choose an
    // iteration count that fills TARGET_SAMPLE.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];

    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:.3} Melem/s", n as f64 / median * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:.3} MB/s", n as f64 / median * 1e3)
        }
        None => String::new(),
    };
    println!("  {label}: {} ns/iter (median of {sample_size}){rate}", fmt_ns(median));
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else if ns >= 1e3 {
        // Thousands separators keep large counts readable.
        let whole = ns.round() as u64;
        let s = whole.to_string();
        let mut out = String::new();
        for (i, c) in s.chars().enumerate() {
            if i > 0 && (s.len() - i).is_multiple_of(3) {
                out.push('_');
            }
            out.push(c);
        }
        out
    } else {
        format!("{ns:.1}")
    }
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(100));
        let mut calls = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
