//! Offline vendor shim for the subset of `rand_distr` 0.4 this workspace
//! uses: the [`Distribution`] trait and an exact-enough [`Binomial`].
//!
//! The cohort engine samples `Binomial(n, p)` once per simulated slot, for
//! `n` up to millions. Two regimes:
//!
//! * small mean (`min(np, n(1-p)) < 64`): exact CDF inversion via the pmf
//!   recurrence — O(mean) expected time, exact distribution;
//! * large mean: normal approximation with continuity correction, clamped
//!   to `[0, n]`. The absolute error of the normal approximation is
//!   `O(1/sqrt(np(1-p)))` (Berry–Esseen), i.e. < 1.3% at the switchover
//!   and shrinking for larger means — far below the Monte-Carlo noise of
//!   any experiment in this repository.
//!
//! Every sample consumes a variable number of raw draws, but the sequence
//! is a pure function of the rng state, preserving seed determinism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::RngCore;

/// One uniform draw in `[0, 1)` (53 random bits), usable with unsized rngs.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A distribution samplable with any [`RngCore`].
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a [`Binomial`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinomialError {
    /// `p` was not a probability in `[0, 1]` (NaN included).
    ProbabilityInvalid,
}

impl core::fmt::Display for BinomialError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "binomial probability must be a number in [0, 1]")
    }
}

impl std::error::Error for BinomialError {}

/// The binomial distribution `Bin(n, p)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Create a `Bin(n, p)` distribution.
    ///
    /// # Errors
    /// Rejects `p` outside `[0, 1]`, including NaN.
    pub fn new(n: u64, p: f64) -> Result<Self, BinomialError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(BinomialError::ProbabilityInvalid);
        }
        Ok(Binomial { n, p })
    }
}

/// Mean threshold below which exact CDF inversion is used.
const INVERSION_MEAN_CUTOFF: f64 = 64.0;

/// Exact inversion: walk the pmf from `k = 0` accumulating the CDF.
fn sample_inversion<R: RngCore + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    let q = 1.0 - p;
    // pmf(0) = q^n; for the regimes routed here (np < 64) this only
    // underflows when n is astronomically large, in which case the normal
    // branch is used instead.
    let mut pmf = q.powf(n as f64);
    let mut cdf = pmf;
    let u = unit_f64(rng);
    let mut k = 0u64;
    while u > cdf && k < n {
        // pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/q
        pmf *= (n - k) as f64 * p / ((k + 1) as f64 * q);
        cdf += pmf;
        k += 1;
        if pmf == 0.0 {
            // Numerical tail exhausted: the remaining mass is below f64
            // resolution, so `k` is the right answer for any drawable `u`.
            break;
        }
    }
    k
}

/// One standard normal via Box–Muller (consumes exactly two draws).
fn sample_std_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1 = unit_f64(rng);
    let u2 = unit_f64(rng);
    // Guard u1 = 0 (ln(0) = -inf).
    let r = (-2.0 * (1.0 - u1).ln()).sqrt();
    r * (core::f64::consts::TAU * u2).cos()
}

impl Distribution<u64> for Binomial {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        let (n, p) = (self.n, self.p);
        if n == 0 || p == 0.0 {
            return 0;
        }
        if p == 1.0 {
            return n;
        }
        // Sample the rarer side for inversion efficiency.
        let flipped = p > 0.5;
        let ps = if flipped { 1.0 - p } else { p };
        let mean = n as f64 * ps;
        let k = if mean < INVERSION_MEAN_CUTOFF && n as f64 * (1.0 - ps) < 1e15 {
            sample_inversion(n, ps, rng)
        } else {
            let sd = (mean * (1.0 - ps)).sqrt();
            let z = sample_std_normal(rng);
            let x = (mean + sd * z + 0.5).floor();
            x.clamp(0.0, n as f64) as u64
        };
        if flipped {
            n - k
        } else {
            k
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn rejects_invalid_p() {
        assert!(Binomial::new(10, f64::NAN).is_err());
        assert!(Binomial::new(10, -0.1).is_err());
        assert!(Binomial::new(10, 1.1).is_err());
        assert!(Binomial::new(10, 0.0).is_ok());
        assert!(Binomial::new(10, 1.0).is_ok());
    }

    #[test]
    fn degenerate_cases() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(Binomial::new(100, 0.0).unwrap().sample(&mut rng), 0);
        assert_eq!(Binomial::new(100, 1.0).unwrap().sample(&mut rng), 100);
        assert_eq!(Binomial::new(0, 0.5).unwrap().sample(&mut rng), 0);
    }

    #[test]
    fn small_mean_matches_moments() {
        // Inversion regime: n=100, p=0.3 (mean 30, below the cutoff after
        // flipping is irrelevant here: min side mean is 30).
        let d = Binomial::new(100, 0.3).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let k = 20_000;
        let xs: Vec<u64> = (0..k).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<u64>() as f64 / k as f64;
        let var = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / k as f64;
        assert!((mean - 30.0).abs() < 0.2, "mean {mean}");
        assert!((var - 21.0).abs() < 1.5, "var {var}");
        assert!(xs.iter().all(|&x| x <= 100));
    }

    #[test]
    fn large_mean_matches_moments() {
        // Normal-approximation regime: n=100_000, p=0.5 (mean 50_000).
        let d = Binomial::new(100_000, 0.5).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let k = 5_000;
        let xs: Vec<u64> = (0..k).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<u64>() as f64 / k as f64;
        assert!((mean - 50_000.0).abs() < 10.0, "mean {mean}");
        assert!(xs.iter().all(|&x| x <= 100_000));
    }

    #[test]
    fn flipped_side_is_consistent() {
        // p = 0.97: sampled via the q = 0.03 side. Mean must still be np.
        let d = Binomial::new(1000, 0.97).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let k = 10_000;
        let mean = (0..k).map(|_| d.sample(&mut rng)).sum::<u64>() as f64 / k as f64;
        assert!((mean - 970.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = Binomial::new(64, 0.2).unwrap();
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(9);
            (0..32).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(9);
            (0..32).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
