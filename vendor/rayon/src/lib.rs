//! Offline vendor shim for the subset of `rayon` this workspace uses:
//! `(range).into_par_iter().map(f).collect::<Vec<_>>()`, plus an explicit
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`] pair for sizing the
//! parallelism of a region (the `--jobs N` plumbing).
//!
//! Implemented as a chunked fan-out over `std::thread::scope`. Order is
//! preserved (chunk `i` writes slot `i` of the output), and a panic in any
//! worker is re-raised on the calling thread via `resume_unwind`, matching
//! rayon's propagation semantics. `ThreadPool::install` sets a
//! thread-local worker-count override for the duration of the closure —
//! parallel iterators started inside it fan out to exactly that many
//! workers, mirroring real rayon's pool-scoped execution.

#![forbid(unsafe_code)]

use std::cell::Cell;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`] for the
    /// current thread; `None` means "use all available parallelism".
    static POOL_WORKERS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads a parallel iterator started on this thread
/// would use (the installed pool's size, or available parallelism).
pub fn current_num_threads() -> usize {
    POOL_WORKERS
        .with(Cell::get)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1))
}

/// Error building a [`ThreadPool`] (kept for API parity with real rayon;
/// the shim's `build` never fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for an explicitly sized [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (automatic) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request exactly `n` worker threads; `0` keeps the automatic count,
    /// matching real rayon's convention.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. Never fails in the shim; the `Result` mirrors real
    /// rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// An explicitly sized pool. The shim spawns scoped threads per parallel
/// call rather than keeping workers alive, so the pool is just a recorded
/// width applied via [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

/// Restores the previous override when an `install` region exits, even by
/// panic.
struct InstallGuard(Option<usize>);

impl Drop for InstallGuard {
    fn drop(&mut self) {
        POOL_WORKERS.with(|w| w.set(self.0));
    }
}

impl ThreadPool {
    /// Number of worker threads this pool fans out to.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run `op` with this pool's width governing any parallel iterators it
    /// starts (on this thread).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = POOL_WORKERS.with(|w| w.replace(Some(self.threads)));
        let _guard = InstallGuard(prev);
        op()
    }
}

/// Conversion into a parallel iterator (materializes the source).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

macro_rules! impl_range_into_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_into_par!(u32, u64, usize, i32, i64);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A materialized parallel iterator.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

/// Minimal `ParallelIterator`: just `map` + `collect`.
pub trait ParallelIterator: Sized {
    type Item: Send;

    fn map<U, F>(self, f: F) -> ParMap<Self::Item, U, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync + Send;
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn map<U, F>(self, f: F) -> ParMap<T, U, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync + Send,
    {
        ParMap { items: self.items, f, _out: core::marker::PhantomData }
    }
}

/// The result of `ParIter::map`, ready to `collect`.
pub struct ParMap<T: Send, U: Send, F: Fn(T) -> U + Sync + Send> {
    items: Vec<T>,
    f: F,
    _out: core::marker::PhantomData<fn() -> U>,
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync + Send> ParMap<T, U, F> {
    pub fn collect<C: FromParallelIterator<U>>(self) -> C {
        C::from_par_map(self)
    }
}

/// Collection target for `ParMap::collect`.
pub trait FromParallelIterator<U: Send>: Sized {
    fn from_par_map<T: Send, F: Fn(T) -> U + Sync + Send>(m: ParMap<T, U, F>) -> Self;
}

impl<U: Send> FromParallelIterator<U> for Vec<U> {
    fn from_par_map<T: Send, F: Fn(T) -> U + Sync + Send>(m: ParMap<T, U, F>) -> Self {
        run_chunked(m.items, &m.f)
    }
}

fn run_chunked<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: &F) -> Vec<U> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = current_num_threads().min(n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    // Split the input into owned chunks up front so each worker thread
    // gets plain ownership of its slice of work.
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let mut out: Vec<Vec<U>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            match h.join() {
                Ok(v) => out.push(v),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out.into_iter().flatten().collect()
}

/// A fork-join scope handle mirroring `rayon::scope`: tasks spawned
/// through it may borrow from the enclosing stack frame (`'scope`) and
/// are all joined before [`scope`] returns.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task into the scope. The closure receives the scope handle
    /// (so it can spawn more tasks), matching real rayon's signature.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }));
    }
}

/// Structured fork-join parallelism over borrowed data, mirroring
/// `rayon::scope`: every task spawned inside `op` completes before the
/// call returns, and a panic in any task is re-raised on the caller.
///
/// The shim maps each spawned task to one scoped OS thread, so callers
/// should spawn O([`current_num_threads`]) coarse tasks, not one per item.
pub fn scope<'env, F, R>(op: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| op(&Scope { inner: s }))
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let v: Vec<u64> = (0u64..10_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 * 2));
    }

    #[test]
    fn empty_range() {
        let v: Vec<u64> = (0u64..0).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn vec_source() {
        let v: Vec<String> = vec![1, 2, 3].into_par_iter().map(|i: i32| format!("{i}")).collect();
        assert_eq!(v, ["1", "2", "3"]);
    }

    #[test]
    fn sized_pool_limits_workers() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        assert_eq!(pool.current_num_threads(), 2);
        let distinct = pool.install(|| {
            assert_eq!(crate::current_num_threads(), 2);
            let ids: Vec<String> = (0u64..64)
                .into_par_iter()
                .map(|_| format!("{:?}", std::thread::current().id()))
                .collect();
            let mut uniq = ids.clone();
            uniq.sort();
            uniq.dedup();
            uniq.len()
        });
        assert!(distinct <= 2, "2-thread pool used {distinct} workers");
        // The override does not leak out of the install region.
        assert!(crate::current_num_threads() >= 1);
    }

    #[test]
    fn install_restores_override_on_panic() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(999_983).build().unwrap();
        let r = std::panic::catch_unwind(|| pool.install(|| panic!("boom")));
        assert!(r.is_err());
        assert_ne!(crate::current_num_threads(), 999_983);
    }

    #[test]
    fn zero_threads_means_default() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            let _: Vec<u64> = (0u64..100)
                .into_par_iter()
                .map(|i| if i == 42 { panic!("boom") } else { i })
                .collect();
        });
        assert!(r.is_err());
    }

    #[test]
    fn scope_joins_borrowed_chunks() {
        let mut data = vec![0u64; 97];
        let chunk = 10;
        crate::scope(|s| {
            for (c, slice) in data.chunks_mut(chunk).enumerate() {
                s.spawn(move |_| {
                    for (j, x) in slice.iter_mut().enumerate() {
                        *x = (c * chunk + j) as u64;
                    }
                });
            }
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn scope_returns_value_and_propagates_panics() {
        let v = crate::scope(|_| 42);
        assert_eq!(v, 42);
        let r = std::panic::catch_unwind(|| {
            crate::scope(|s| s.spawn(|_| panic!("boom")));
        });
        assert!(r.is_err());
    }

    #[test]
    fn scope_spawn_can_nest() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        crate::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        });
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
