//! Offline vendor shim for the subset of `rayon` this workspace uses:
//! `(range).into_par_iter().map(f).collect::<Vec<_>>()`.
//!
//! Implemented as a chunked fan-out over `std::thread::scope`. Order is
//! preserved (chunk `i` writes slot `i` of the output), and a panic in any
//! worker is re-raised on the calling thread via `resume_unwind`, matching
//! rayon's propagation semantics.

#![forbid(unsafe_code)]

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a parallel iterator (materializes the source).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

macro_rules! impl_range_into_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_into_par!(u32, u64, usize, i32, i64);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A materialized parallel iterator.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

/// Minimal `ParallelIterator`: just `map` + `collect`.
pub trait ParallelIterator: Sized {
    type Item: Send;

    fn map<U, F>(self, f: F) -> ParMap<Self::Item, U, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync + Send;
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn map<U, F>(self, f: F) -> ParMap<T, U, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync + Send,
    {
        ParMap { items: self.items, f, _out: core::marker::PhantomData }
    }
}

/// The result of `ParIter::map`, ready to `collect`.
pub struct ParMap<T: Send, U: Send, F: Fn(T) -> U + Sync + Send> {
    items: Vec<T>,
    f: F,
    _out: core::marker::PhantomData<fn() -> U>,
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync + Send> ParMap<T, U, F> {
    pub fn collect<C: FromParallelIterator<U>>(self) -> C {
        C::from_par_map(self)
    }
}

/// Collection target for `ParMap::collect`.
pub trait FromParallelIterator<U: Send>: Sized {
    fn from_par_map<T: Send, F: Fn(T) -> U + Sync + Send>(m: ParMap<T, U, F>) -> Self;
}

impl<U: Send> FromParallelIterator<U> for Vec<U> {
    fn from_par_map<T: Send, F: Fn(T) -> U + Sync + Send>(m: ParMap<T, U, F>) -> Self {
        run_chunked(m.items, &m.f)
    }
}

fn run_chunked<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: &F) -> Vec<U> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    // Split the input into owned chunks up front so each worker thread
    // gets plain ownership of its slice of work.
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let mut out: Vec<Vec<U>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            match h.join() {
                Ok(v) => out.push(v),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let v: Vec<u64> = (0u64..10_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 * 2));
    }

    #[test]
    fn empty_range() {
        let v: Vec<u64> = (0u64..0).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn vec_source() {
        let v: Vec<String> = vec![1, 2, 3].into_par_iter().map(|i: i32| format!("{i}")).collect();
        assert_eq!(v, ["1", "2", "3"]);
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            let _: Vec<u64> = (0u64..100)
                .into_par_iter()
                .map(|i| if i == 42 { panic!("boom") } else { i })
                .collect();
        });
        assert!(r.is_err());
    }
}
