//! Offline vendor shim for the subset of `proptest` this workspace uses.
//!
//! Differences from real proptest, by design:
//! * inputs are sampled uniformly at random from the strategy — there is no
//!   growth schedule and **no shrinking**; a failure reports the sampled
//!   case index and the assertion message instead of a minimized input;
//! * each test gets a deterministic RNG seeded from a hash of its module
//!   path and name, so failures reproduce across runs;
//! * only the API surface exercised here is provided: `proptest!` (with an
//!   optional `#![proptest_config(..)]` header, `ident in strategy` and
//!   `ident: type` argument forms), `prop_assert!`/`prop_assert_eq!`,
//!   `prop_oneof!`, `Just`, `.prop_map`, `any::<T>()`,
//!   `collection::vec`, and range strategies.

#![forbid(unsafe_code)]

use rand::{rngs::SmallRng, Rng, RngCore, SeedableRng};

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Config + RNG
// ---------------------------------------------------------------------------

/// Subset of proptest's run configuration: just the case count.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies. Deterministic per test site.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Seed from a stable FNV-1a hash of the test's full path, so every
    /// run of a given test replays the same case sequence.
    pub fn for_test(test_path: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform in `[0, n)`; `n > 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.0.gen_range(0..n)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen()
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of test inputs.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait StrategyObj<T> {
    fn sample_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn sample_obj(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn StrategyObj<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_obj(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `Strategy::prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed arms (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

// Integer range strategies.
macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy behind `any::<T>()` for primitives.
pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(core::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(core::marker::PhantomData)
    }
}

// ---------------------------------------------------------------------------
// collection
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count bounds for [`vec`]: `[min, max)` like proptest's
    /// range form.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests. Each `fn` becomes a `#[test]`-able function that
/// samples its arguments `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_each {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    $crate::__proptest_body!(__rng; ($($args)*); $body);
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!("proptest case #{} failed: {}", __case, __msg);
                }
            }
        }
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    ($rng:ident; (); $body:block) => {
        (|| -> ::std::result::Result<(), ::std::string::String> {
            $body
            ::std::result::Result::Ok(())
        })()
    };
    ($rng:ident; ($name:ident in $strat:expr $(, $($rest:tt)*)?); $body:block) => {{
        let $name = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_body!($rng; ($($($rest)*)?); $body)
    }};
    ($rng:ident; ($name:ident : $ty:ty $(, $($rest:tt)*)?); $body:block) => {{
        let $name: $ty = $crate::Strategy::sample(&$crate::any::<$ty>(), &mut $rng);
        $crate::__proptest_body!($rng; ($($($rest)*)?); $body)
    }};
}

/// Uniform choice among the given strategies (must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert inside a proptest body; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err(
                format!("assertion failed: `{:?} == {:?}`", __l, __r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err(
                format!("assertion failed: `{:?} == {:?}`: {}", __l, __r, format!($($fmt)+)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_test_path() {
        let mut a = crate::TestRng::for_test("x::y");
        let mut b = crate::TestRng::for_test("x::y");
        let mut c = crate::TestRng::for_test("x::z");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn strategies_respect_bounds() {
        let mut rng = crate::TestRng::for_test("bounds");
        for _ in 0..2000 {
            let v = (3u64..10).sample(&mut rng);
            assert!((3..10).contains(&v));
            let f = (0.5f64..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let xs = crate::collection::vec(0u64..5, 1..4).sample(&mut rng);
            assert!((1..4).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_and_map_cover_arms() {
        let s = prop_oneof![Just(1u64), (10u64..20).prop_map(|x| x * 10),];
        let mut rng = crate::TestRng::for_test("oneof");
        let mut saw_just = false;
        let mut saw_map = false;
        for _ in 0..200 {
            match s.sample(&mut rng) {
                1 => saw_just = true,
                v if (100..200).contains(&v) => saw_map = true,
                v => panic!("unexpected sample {v}"),
            }
        }
        assert!(saw_just && saw_map);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_both_arg_forms(
            n in 1u64..50,
            flag: bool,
            xs in crate::collection::vec(any::<bool>(), 0..10),
        ) {
            prop_assert!((1..50).contains(&n));
            prop_assert!(xs.len() < 10, "len {}", xs.len());
            let _ = flag;
        }
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        mod inner {
            use crate::prelude::*;
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                fn always_fails(n in 0u64..10) {
                    prop_assert!(n > 100, "n was {n}");
                }
            }
            pub fn run() {
                always_fails();
            }
        }
        let err = std::panic::catch_unwind(inner::run).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("proptest case #0 failed"), "{msg}");
    }
}
