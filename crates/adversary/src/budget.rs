//! Exact, prospective enforcement of the `(T, 1−ε)` jamming budget.
//!
//! **Definition** (Section 1.1): the adversary can jam at most
//! `⌊(1−ε)·w⌋` out of **any** `w ≥ T` contiguous slots; windows shorter
//! than `T` are unconstrained.
//!
//! **Prospectivity.** A naive enforcer that only checks windows *ending* at
//! the current slot is unsound: jamming slots `0..T−2` is never checked
//! (no window of length ≥ T has completed yet), yet once slot `T−1`
//! arrives the window `[0, T−1]` may already be violated with no way to
//! repair it. This enforcer therefore admits a jam of slot `t` only if
//! **every window containing `t` — past or future — can still satisfy its
//! bound**. Since future slots can only add jams, the binding constraint
//! for a start `s ≤ t` is the *shortest* completable window
//! `[s, max(t, s+T−1)]`:
//!
//! 1. for `s > t−T+1` (a suffix shorter than `T`): the window
//!    `[s, s+T−1]` of length exactly `T` must satisfy
//!    `J(s..t) ≤ ⌊(1−ε)·T⌋`; the binding `s` is `max(0, t−T+2)`;
//! 2. for `s ≤ t−T+1`: the completed window `[s, t]` must satisfy
//!    `J(s..t) ≤ ⌊(1−ε)(t−s+1)⌋`.
//!
//! **Soundness** (every completed window `[s, e]`, `e−s+1 ≥ T`, respects
//! the bound): let `t'` be the last jammed slot in `[s, e]`; the check at
//! `t'` bounded `J(s..t') = J(s..e)` by the allowance of
//! `max(T, t'−s+1) ≤ e−s+1` slots, and allowances are monotone.
//!
//! **Complexity.** Condition 1 is a sliding-window jam counter. With
//! `P(x)` = jams in slots `0..x` and the potential
//! `G(x) = 2^32·P(x) − (2^32 − num)·x` (`ε = num/2^32`), condition 2 for
//! an integer jam count is *equivalent* to `G(t+1) ≤ min_{x ≤ t+1−T} G(x)`,
//! maintained with a `T`-slot delay line and a running minimum — O(1)
//! amortized per slot, O(T) memory.

use crate::rate::Rate;
use std::collections::VecDeque;

/// Stateful `(T, 1−ε)` budget enforcer.
///
/// Drive it one slot at a time: query [`JamBudget::can_jam`] for the slot
/// about to be played, then commit the decision with
/// [`JamBudget::advance`].
///
/// # Examples
///
/// ```
/// use jle_adversary::{JamBudget, Rate};
///
/// // (T = 4, 1 - eps = 1/2): at most floor(w/2) jams in any window w >= 4.
/// let mut budget = JamBudget::new(Rate::from_f64(0.5), 4);
/// // Short bursts inside a window shorter than T are allowed...
/// assert!(budget.try_jam());
/// assert!(budget.try_jam());
/// // ...but the enforcer never lets a completed window overflow.
/// assert!(!budget.try_jam());
/// assert_eq!(budget.total_jammed(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct JamBudget {
    eps: Rate,
    t_window: u64,
    /// Next slot index to be decided.
    now: u64,
    /// Total jams committed so far (`P(now)`).
    total_jams: u64,
    /// Jam bits of the last `min(now, T−1)` slots, oldest first.
    recent: VecDeque<bool>,
    /// Number of `true` bits in `recent`.
    recent_jams: u64,
    /// `G(x)` values for `x` in `(now−T, now]` awaiting eligibility,
    /// oldest first (front is `G(now − len + 1)`).
    pending_g: VecDeque<i128>,
    /// `min_{x ≤ now − T} G(x)`; `G(0) = 0` is eligible from the start
    /// once `now ≥ T`.
    min_g_eligible: Option<i128>,
    /// Precomputed `⌊(1−ε)·T⌋`.
    allow_t: u64,
}

impl JamBudget {
    /// Create an enforcer for a `(t_window, 1−eps)`-bounded adversary.
    ///
    /// # Panics
    /// Panics if `t_window == 0` (the paper requires `T ≥ 1`).
    pub fn new(eps: Rate, t_window: u64) -> Self {
        assert!(t_window >= 1, "T must be at least 1");
        JamBudget {
            eps,
            t_window,
            now: 0,
            total_jams: 0,
            recent: VecDeque::with_capacity((t_window as usize).saturating_sub(1).min(1 << 22)),
            recent_jams: 0,
            pending_g: VecDeque::with_capacity((t_window as usize).min(1 << 22)),
            min_g_eligible: None,
            allow_t: eps.allowance(t_window),
        }
    }

    /// The ε of this budget.
    #[inline]
    pub fn eps(&self) -> Rate {
        self.eps
    }

    /// The window parameter `T`.
    #[inline]
    pub fn t_window(&self) -> u64 {
        self.t_window
    }

    /// Index of the slot about to be decided.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Total jams committed so far.
    #[inline]
    pub fn total_jammed(&self) -> u64 {
        self.total_jams
    }

    /// Fraction of the jamming allowance spent so far: committed jams over
    /// `⌊(1−ε)·max(now, T)⌋` (windows shorter than `T` are measured
    /// against the `T`-slot allowance they are borrowing from). `0.0` when
    /// the allowance is zero; may briefly exceed `1.0` inside a window
    /// shorter than `T`, where bursts beyond the pro-rata bound are legal.
    pub fn spent_fraction(&self) -> f64 {
        let allowance = self.eps.allowance(self.now.max(self.t_window));
        if allowance == 0 {
            0.0
        } else {
            self.total_jams as f64 / allowance as f64
        }
    }

    /// `G(x)` for the *current* prefix (`x = now`), assuming `add` extra
    /// jams.
    #[inline]
    fn g_with(&self, extra_jams: u64, extra_slots: u64) -> i128 {
        let p = (self.total_jams + extra_jams) as i128 * Rate::SCALE as i128;
        let w = (self.now + extra_slots) as i128 * self.eps.complement_num() as i128;
        p - w
    }

    /// Whether jamming the slot about to be played would keep every window
    /// (past and future) satisfiable.
    pub fn can_jam(&self) -> bool {
        // Condition 1: the length-T window starting at max(0, now−T+2).
        // J over the last min(now, T−1) committed slots, plus this jam.
        if self.recent_jams + 1 > self.allow_t {
            return false;
        }
        // Condition 2: completed windows [s, now] with now−s+1 ≥ T,
        // i.e. x = s ∈ [0, now+1−T]. Equivalent: G(now+1) ≤ min G(x).
        if let Some(min_g) = self.eligible_min_with_current() {
            let g_next = self.g_with(1, 1);
            if g_next > min_g {
                return false;
            }
        }
        true
    }

    /// `min_{x ≤ now+1−T} G(x)`, or `None` if no `x` is eligible yet.
    ///
    /// Eligible set for deciding slot `now`: `x ∈ [0, now+1−T]`. The
    /// delay-line bookkeeping in [`advance`](Self::advance) keeps
    /// `min_g_eligible` covering `x ≤ now−T`; the one newly eligible value
    /// `x = now+1−T` sits at the front of `pending_g` (or is `G(0) = 0`).
    fn eligible_min_with_current(&self) -> Option<i128> {
        if self.now + 1 < self.t_window {
            return None;
        }
        let newly = if self.now + 1 == self.t_window {
            // x = 0: G(0) = 0.
            0i128
        } else {
            // pending_g front is G(now − len + 1); we need G(now+1−T).
            // len is maintained at exactly T (see advance), so front is
            // G(now + 1 − T).
            *self.pending_g.front().expect("delay line non-empty once now+1 > T")
        };
        Some(match self.min_g_eligible {
            Some(m) => m.min(newly),
            None => newly,
        })
    }

    /// Commit the decision for the slot about to be played.
    ///
    /// # Panics
    /// Panics if `jam` is `true` but the jam violates the budget — callers
    /// must consult [`JamBudget::can_jam`] first (the engine does).
    pub fn advance(&mut self, jam: bool) {
        if jam {
            assert!(self.can_jam(), "budget violation: jam of slot {} rejected", self.now);
        }
        // Newly eligible G becomes part of the running minimum.
        if self.now + 1 >= self.t_window {
            let newly = if self.now + 1 == self.t_window {
                0i128
            } else {
                self.pending_g.pop_front().expect("delay line non-empty")
            };
            self.min_g_eligible = Some(match self.min_g_eligible {
                Some(m) => m.min(newly),
                None => newly,
            });
        }
        if jam {
            self.total_jams += 1;
            self.recent_jams += 1;
        }
        self.now += 1;
        // Push G(now) (prefix after this slot) into the delay line.
        self.pending_g.push_back(self.g_with(0, 0));
        debug_assert!(self.pending_g.len() as u64 <= self.t_window);
        // Maintain the trailing window of T−1 jam bits.
        self.recent.push_back(jam);
        if self.recent.len() as u64 > self.t_window.saturating_sub(1)
            && self.recent.pop_front() == Some(true)
        {
            self.recent_jams -= 1;
        }
    }

    /// Convenience: jam if permitted, then advance. Returns whether the
    /// slot was jammed.
    pub fn try_jam(&mut self) -> bool {
        let ok = self.can_jam();
        self.advance(ok);
        ok
    }

    /// Advance one slot without jamming.
    #[inline]
    pub fn skip(&mut self) {
        self.advance(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force referee: check every window of length ≥ T.
    fn verify_all_windows(jams: &[bool], eps: Rate, t_window: u64) {
        let n = jams.len();
        let prefix: Vec<u64> = std::iter::once(0)
            .chain(jams.iter().scan(0u64, |acc, &j| {
                *acc += j as u64;
                Some(*acc)
            }))
            .collect();
        for s in 0..n {
            for e in s..n {
                let w = (e - s + 1) as u64;
                if w < t_window {
                    continue;
                }
                let count = prefix[e + 1] - prefix[s];
                assert!(
                    count <= eps.allowance(w),
                    "window [{s},{e}] has {count} jams > allowance {} (T={t_window})",
                    eps.allowance(w)
                );
            }
        }
    }

    #[test]
    fn greedy_half_small_window() {
        let eps = Rate::from_f64(0.5);
        let mut b = JamBudget::new(eps, 4);
        let jams: Vec<bool> = (0..64).map(|_| b.try_jam()).collect();
        verify_all_windows(&jams, eps, 4);
        // Greedy must achieve a substantial fraction of the budget.
        let total: u64 = jams.iter().map(|&j| j as u64).sum();
        assert!(total >= 16, "greedy only jammed {total}/64");
    }

    #[test]
    fn greedy_never_violates_many_params() {
        for &(p, q, t) in
            &[(1u64, 2u64, 1u64), (1, 2, 8), (1, 10, 16), (9, 10, 5), (1, 3, 100), (2, 3, 2)]
        {
            let eps = Rate::from_ratio(p, q);
            let mut b = JamBudget::new(eps, t);
            let jams: Vec<bool> = (0..400).map(|_| b.try_jam()).collect();
            verify_all_windows(&jams, eps, t);
        }
    }

    #[test]
    fn prefix_cannot_be_overjammed() {
        // The classic unsoundness of retrospective checking: with T = 10,
        // eps = 1/2, the first 9 slots must NOT be all jammable.
        let eps = Rate::from_f64(0.5);
        let mut b = JamBudget::new(eps, 10);
        let jams: Vec<bool> = (0..9).map(|_| b.try_jam()).collect();
        let count = jams.iter().filter(|&&j| j).count();
        assert!(count <= 5, "prefix jam count {count} exceeds allowance of window [0,9]");
    }

    #[test]
    fn t_equals_one_blocks_everything() {
        // With T = 1 every single slot is a window; allowance(1) = 0 for
        // any eps > 0, so no jam is ever possible.
        let eps = Rate::from_ratio(1, 100);
        let mut b = JamBudget::new(eps, 1);
        for _ in 0..50 {
            assert!(!b.try_jam());
        }
        assert_eq!(b.total_jammed(), 0);
    }

    #[test]
    fn short_bursts_inside_t_are_allowed() {
        // The paper: "the adversary can block even all slots in a short
        // window of less than T slots". With T = 8, eps = 1/2 the greedy
        // adversary's first 4 jams may be consecutive.
        let eps = Rate::from_f64(0.5);
        let mut b = JamBudget::new(eps, 8);
        let first4: Vec<bool> = (0..4).map(|_| b.try_jam()).collect();
        assert_eq!(first4, vec![true; 4]);
    }

    #[test]
    fn interleaved_requests_respect_budget() {
        // A bursty requester: ask for jams in blocks of 7, rest in blocks
        // of 3; verify the referee.
        let eps = Rate::from_ratio(1, 4);
        let mut b = JamBudget::new(eps, 6);
        let mut jams = Vec::new();
        for i in 0..300usize {
            let want = (i / 7) % 2 == 0;
            if want {
                jams.push(b.try_jam());
            } else {
                b.skip();
                jams.push(false);
            }
        }
        verify_all_windows(&jams, eps, 6);
    }

    #[test]
    #[should_panic(expected = "budget violation")]
    fn advance_panics_on_forced_violation() {
        let eps = Rate::from_f64(0.9);
        let mut b = JamBudget::new(eps, 2);
        // allowance(2) = floor(0.1 * 2) = 0: no jam ever permitted.
        b.advance(true);
    }

    #[test]
    fn long_run_rate_approaches_one_minus_eps() {
        let eps = Rate::from_ratio(1, 5); // allowance ~ 0.8 w
        let mut b = JamBudget::new(eps, 50);
        let n = 20_000u64;
        let mut total = 0u64;
        for _ in 0..n {
            total += b.try_jam() as u64;
        }
        let rate = total as f64 / n as f64;
        assert!(rate > 0.7 && rate <= 0.8 + 1e-9, "rate {rate} should approach 0.8");
    }

    #[test]
    fn can_jam_is_pure() {
        let eps = Rate::from_f64(0.5);
        let mut b = JamBudget::new(eps, 4);
        for _ in 0..100 {
            let a = b.can_jam();
            let bb = b.can_jam();
            assert_eq!(a, bb);
            b.advance(a);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::tests_support::verify_all_windows_ref;
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// No request pattern can ever trick the enforcer into letting a
        /// completed window exceed its allowance.
        #[test]
        fn no_window_ever_violates(
            num in 1u64..Rate::SCALE,
            t in 1u64..40,
            requests in proptest::collection::vec(any::<bool>(), 1..300),
        ) {
            let eps = Rate::from_num(num);
            let mut b = JamBudget::new(eps, t);
            let mut jams = Vec::with_capacity(requests.len());
            for &want in &requests {
                if want {
                    jams.push(b.try_jam());
                } else {
                    b.skip();
                    jams.push(false);
                }
            }
            verify_all_windows_ref(&jams, eps, t);
        }

        /// `try_jam` reports exactly the committed jams.
        #[test]
        fn totals_are_consistent(
            num in 1u64..Rate::SCALE,
            t in 1u64..20,
            len in 1usize..200,
        ) {
            let eps = Rate::from_num(num);
            let mut b = JamBudget::new(eps, t);
            let mut count = 0u64;
            for _ in 0..len {
                count += b.try_jam() as u64;
            }
            prop_assert_eq!(b.total_jammed(), count);
            prop_assert_eq!(b.now(), len as u64);
        }
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;

    /// Shared brute-force referee (also used by the proptests).
    pub fn verify_all_windows_ref(jams: &[bool], eps: Rate, t_window: u64) {
        let n = jams.len();
        let prefix: Vec<u64> = std::iter::once(0)
            .chain(jams.iter().scan(0u64, |acc, &j| {
                *acc += j as u64;
                Some(*acc)
            }))
            .collect();
        for s in 0..n {
            for e in s..n {
                let w = (e - s + 1) as u64;
                if w < t_window {
                    continue;
                }
                let count = prefix[e + 1] - prefix[s];
                assert!(
                    count <= eps.allowance(w),
                    "window [{s},{e}] has {count} jams > allowance {}",
                    eps.allowance(w)
                );
            }
        }
    }
}
