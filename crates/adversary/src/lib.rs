//! # jle-adversary — `(T, 1−ε)`-bounded jamming adversaries
//!
//! The adversary substrate of the SPAA 2015 reproduction. It separates
//! *policy* from *admissibility*:
//!
//! * [`JamBudget`] is the admissibility clamp: an exact, prospective
//!   enforcer of the paper's `(T, 1−ε)` bound (at most `⌊(1−ε)w⌋` jams in
//!   any window of `w ≥ T` contiguous slots). No strategy can exceed it;
//!   see `budget.rs` for the soundness argument.
//! * [`JamStrategy`] implementations decide *where* to spend the budget —
//!   from the passive [`strategies::NoJammer`] through oblivious periodic
//!   and random jammers up to the protocol-aware
//!   [`strategies::AdaptiveEstimatorJammer`] that mirrors LESK's estimate
//!   from the public channel history.
//! * [`AdversarySpec`] is the serializable description used by experiment
//!   configs.
//!
//! ε is an exact fixed-point [`Rate`] so that budget arithmetic carries no
//! floating-point drift over multi-million-slot runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod rate;
pub mod strategies;
pub mod traits;

pub use budget::JamBudget;
pub use rate::Rate;
pub use strategies::JamStrategyKind;
pub use traits::{AdversarySpec, JamStrategy};
