//! The adversary interface and the serializable adversary specification.

use crate::budget::JamBudget;
use crate::rate::Rate;
use jle_radio::HistoryView;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A jamming strategy: decides, slot by slot, whether it *wants* to jam.
///
/// Per the paper's model the adversary is adaptive — it sees the entire
/// channel history and knows the protocol, `n`, `ε` and `T` — but it must
/// commit to jamming **before** the stations act in the current slot.
/// The engine enforces that interface: `decide` is called before station
/// actions are sampled, and the request is clamped by [`JamBudget`] (a
/// strategy may consult the budget read-only to avoid wasting requests).
pub trait JamStrategy: Send {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Whether the adversary requests to jam the slot about to be played.
    fn decide(
        &mut self,
        history: &dyn HistoryView,
        budget: &JamBudget,
        rng: &mut dyn RngCore,
    ) -> bool;

    /// Reset internal state for a fresh run.
    fn reset(&mut self) {}
}

/// Serializable description of an adversary: budget parameters plus a
/// strategy, buildable into a live [`JamStrategy`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdversarySpec {
    /// The ε of the `(T, 1−ε)` bound.
    pub eps: Rate,
    /// The window parameter `T`.
    pub t_window: u64,
    /// Which strategy to run within the budget.
    pub kind: crate::strategies::JamStrategyKind,
}

impl AdversarySpec {
    /// Create a spec.
    pub fn new(eps: Rate, t_window: u64, kind: crate::strategies::JamStrategyKind) -> Self {
        AdversarySpec { eps, t_window, kind }
    }

    /// A spec whose strategy never jams (budget parameters still recorded).
    pub fn passive() -> Self {
        AdversarySpec {
            eps: Rate::from_f64(0.5),
            t_window: 1,
            kind: crate::strategies::JamStrategyKind::None,
        }
    }

    /// Instantiate the budget enforcer.
    pub fn budget(&self) -> JamBudget {
        JamBudget::new(self.eps, self.t_window)
    }

    /// Instantiate the strategy.
    pub fn strategy(&self) -> Box<dyn JamStrategy> {
        self.kind.build(self)
    }

    /// Short label like `saturating(eps=0.50,T=32)` for tables.
    pub fn label(&self) -> String {
        format!("{}(eps={:.3},T={})", self.kind.name(), self.eps.as_f64(), self.t_window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::JamStrategyKind;

    #[test]
    fn spec_serde_roundtrip_all_kinds() {
        let kinds = vec![
            JamStrategyKind::None,
            JamStrategyKind::Saturating,
            JamStrategyKind::PeriodicFront,
            JamStrategyKind::Random { prob: 0.25 },
            JamStrategyKind::ReactiveNull,
            JamStrategyKind::AdaptiveEstimator {
                n: 1024,
                protocol_eps: 0.3,
                band: 2.5,
                initial_u: 0.0,
            },
            JamStrategyKind::Burst { on: 8, off: 4 },
            JamStrategyKind::FrontLoaded { horizon: 1000 },
            JamStrategyKind::Scripted { pattern: vec![true, false, true], repeat: true },
            JamStrategyKind::SweepTargeted { n: 256, band: 3.0 },
            JamStrategyKind::Phased {
                phases: vec![(0, JamStrategyKind::None), (100, JamStrategyKind::Saturating)],
            },
        ];
        for kind in kinds {
            let spec = AdversarySpec::new(Rate::from_ratio(1, 3), 16, kind);
            let json = serde_json::to_string(&spec).expect("serialize");
            let back: AdversarySpec = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back.eps, spec.eps);
            assert_eq!(back.t_window, spec.t_window);
            assert_eq!(back.kind.name(), spec.kind.name());
            // The rebuilt strategy must be constructible.
            let _ = back.strategy();
            let _ = back.budget();
        }
    }

    #[test]
    fn adaptive_estimator_initial_u_defaults_in_old_payloads() {
        // Payloads written before the initial_u field must still load.
        let json = r#"{"eps":{"num":2147483648},"t_window":8,
            "kind":{"AdaptiveEstimator":{"n":64,"protocol_eps":0.5,"band":3.0}}}"#;
        let spec: AdversarySpec = serde_json::from_str(json).expect("backward compat");
        assert_eq!(spec.kind.name(), "adaptive-estimator");
    }

    #[test]
    fn labels_are_informative() {
        let spec = AdversarySpec::new(Rate::from_f64(0.25), 64, JamStrategyKind::Saturating);
        let label = spec.label();
        assert!(label.contains("saturating"));
        assert!(label.contains("0.250"));
        assert!(label.contains("T=64"));
    }

    #[test]
    fn passive_spec_never_jams() {
        let spec = AdversarySpec::passive();
        let mut strategy = spec.strategy();
        let mut budget = spec.budget();
        let history = jle_radio::ChannelHistory::new(4);
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        for _ in 0..16 {
            assert!(!strategy.decide(&history, &budget, &mut rng));
            budget.skip();
        }
    }
}
