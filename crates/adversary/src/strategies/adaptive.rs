//! The protocol-aware adaptive attacker.

use crate::budget::JamBudget;
use crate::traits::JamStrategy;
use jle_radio::{ChannelState, HistoryView};
use rand::RngCore;

/// Mirrors LESK's public estimate `u` and spends jamming budget only when
/// a `Single` is plausible.
///
/// The paper grants the adversary the protocol code, the channel history
/// and the true `n` (Section 1.1). Because LESK is *uniform*, its estimate
/// `u` is a deterministic function of the observed channel prefix, so the
/// adversary can track it exactly: `Null → u ← max(u−1, 0)`,
/// `Collision → u ← u + ε/8` (jammed slots read as Collision to the
/// stations, hence also bump the mirror). It then requests a jam exactly
/// when `u` is within `band` of `log₂ n` — the region where
/// `P[Single]` is non-negligible (Lemma 2.4) — and saves budget elsewhere,
/// which lets it jam the danger zone *continuously* for stretches up to
/// its banked allowance.
#[derive(Debug, Clone)]
pub struct AdaptiveEstimatorJammer {
    log2_n: f64,
    increment: f64,
    band: f64,
    u: f64,
    initial_u: f64,
    slots_seen: u64,
}

impl AdaptiveEstimatorJammer {
    /// `n` — true network size; `protocol_eps` — the ε the attacked LESK
    /// instance uses (increment `ε/8`); `band` — half-width of the danger
    /// band around `log₂ n`.
    pub fn new(n: u64, protocol_eps: f64, band: f64) -> Self {
        Self::with_initial_u(n, protocol_eps, band, 0.0)
    }

    /// Like [`AdaptiveEstimatorJammer::new`] but starting the mirror at
    /// `initial_u` (for attacking warm-started protocol instances).
    pub fn with_initial_u(n: u64, protocol_eps: f64, band: f64, initial_u: f64) -> Self {
        AdaptiveEstimatorJammer {
            log2_n: (n.max(1) as f64).log2(),
            increment: protocol_eps / 8.0,
            band,
            u: initial_u.max(0.0),
            initial_u: initial_u.max(0.0),
            slots_seen: 0,
        }
    }

    /// The adversary's current mirror of LESK's estimate.
    pub fn mirrored_u(&self) -> f64 {
        self.u
    }

    fn catch_up(&mut self, history: &dyn HistoryView) {
        // Replay any slots completed since the last decision. With the
        // engine calling decide() every slot this loop runs at most once.
        while self.slots_seen < history.now() {
            let Some(p) = history.slot(self.slots_seen) else {
                // Slot fell out of retention (cannot happen with the
                // engine's retention >= 1 slot lag); skip conservatively.
                self.slots_seen += 1;
                continue;
            };
            match p.state() {
                ChannelState::Null => self.u = (self.u - 1.0).max(0.0),
                ChannelState::Collision => self.u += self.increment,
                ChannelState::Single => {} // election ends; mirror freezes
            }
            self.slots_seen += 1;
        }
    }
}

impl JamStrategy for AdaptiveEstimatorJammer {
    fn name(&self) -> &'static str {
        "adaptive-estimator"
    }

    fn decide(
        &mut self,
        history: &dyn HistoryView,
        _budget: &JamBudget,
        _rng: &mut dyn RngCore,
    ) -> bool {
        self.catch_up(history);
        (self.u - self.log2_n).abs() <= self.band
    }

    fn reset(&mut self) {
        self.u = self.initial_u;
        self.slots_seen = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::Rate;
    use jle_radio::{ChannelHistory, SlotTruth};
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn mirrors_lesk_updates() {
        let mut s = AdaptiveEstimatorJammer::new(16, 0.5, 1.0);
        let b = JamBudget::new(Rate::from_f64(0.5), 8);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut h = ChannelHistory::new(64);
        // Two collisions then a null.
        h.push(&SlotTruth::new(3, false));
        h.push(&SlotTruth::new(0, true)); // jammed → Collision to stations
        s.decide(&h, &b, &mut rng);
        assert!((s.mirrored_u() - 2.0 * 0.5 / 8.0).abs() < 1e-12);
        h.push(&SlotTruth::new(0, false));
        s.decide(&h, &b, &mut rng);
        assert!((s.mirrored_u() - 0.0f64.max(2.0 * 0.0625 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn fires_only_in_band() {
        // n = 4 → log2 n = 2; band 0.25. Drive u to ~2 with collisions.
        let mut s = AdaptiveEstimatorJammer::new(4, 0.5, 0.25);
        let b = JamBudget::new(Rate::from_f64(0.5), 8);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut h = ChannelHistory::new(4096);
        // u increments by 1/16 per collision; after 32 collisions u = 2.
        let mut fired_before_band = false;
        let mut fired_in_band = false;
        for i in 0..32 {
            let d = s.decide(&h, &b, &mut rng);
            if i < 28 && d {
                fired_before_band = true;
            }
            h.push(&SlotTruth::new(5, false));
        }
        if s.decide(&h, &b, &mut rng) {
            fired_in_band = true;
        }
        assert!(!fired_before_band, "must save budget below the band");
        assert!(fired_in_band, "must spend budget inside the band");
    }

    #[test]
    fn reset_clears_mirror() {
        let mut s = AdaptiveEstimatorJammer::new(16, 0.5, 1.0);
        let b = JamBudget::new(Rate::from_f64(0.5), 8);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut h = ChannelHistory::new(64);
        h.push(&SlotTruth::new(3, false));
        s.decide(&h, &b, &mut rng);
        assert!(s.mirrored_u() > 0.0);
        s.reset();
        assert_eq!(s.mirrored_u(), 0.0);
    }
}
