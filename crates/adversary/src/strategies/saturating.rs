//! The maximally aggressive admissible jammer.

use crate::budget::JamBudget;
use crate::traits::JamStrategy;
use jle_radio::HistoryView;
use rand::RngCore;

/// Requests a jam in every slot. Clamped by the budget, this realizes the
/// greedy `(T, 1−ε)` jammer: every slot that *can* be jammed *is* jammed.
///
/// Against LESK this is a strong oblivious baseline: each jam reads as a
/// `Collision` and pushes the estimate `u` up by `ε/8`, exactly the
/// pressure the paper's asymmetric update rule is designed to absorb.
#[derive(Debug, Clone, Copy, Default)]
pub struct SaturatingJammer;

impl JamStrategy for SaturatingJammer {
    fn name(&self) -> &'static str {
        "saturating"
    }

    fn decide(&mut self, _: &dyn HistoryView, _: &JamBudget, _: &mut dyn RngCore) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::Rate;
    use jle_radio::ChannelHistory;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn always_requests() {
        let mut s = SaturatingJammer;
        let h = ChannelHistory::new(8);
        let b = JamBudget::new(Rate::from_f64(0.5), 4);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(s.decide(&h, &b, &mut rng));
    }
}
