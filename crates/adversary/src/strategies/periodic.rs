//! The Lemma 2.7 lower-bound adversary.

use crate::budget::JamBudget;
use crate::rate::Rate;
use crate::traits::JamStrategy;
use jle_radio::HistoryView;
use rand::RngCore;

/// Jams the first `⌊(1−ε)·T⌋` slots of every aligned block of `T`
/// consecutive slots — the construction in the paper's Lemma 2.7 proof:
/// "the adversary can simply jam the first `⌊(1−ε)T⌋` slots out of each
/// `T` consecutive time steps", which forces any algorithm needing
/// `c·log n` clean slots to run for `Ω(max{T, ε⁻¹ log n})` slots.
#[derive(Debug, Clone, Copy)]
pub struct PeriodicFrontJammer {
    t_window: u64,
    jam_per_block: u64,
}

impl PeriodicFrontJammer {
    /// Build for a `(t_window, 1−eps)` budget.
    pub fn new(eps: Rate, t_window: u64) -> Self {
        PeriodicFrontJammer { t_window: t_window.max(1), jam_per_block: eps.allowance(t_window) }
    }
}

impl JamStrategy for PeriodicFrontJammer {
    fn name(&self) -> &'static str {
        "periodic-front"
    }

    fn decide(
        &mut self,
        history: &dyn HistoryView,
        _budget: &JamBudget,
        _rng: &mut dyn RngCore,
    ) -> bool {
        let pos_in_block = history.now() % self.t_window;
        pos_in_block < self.jam_per_block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jle_radio::{ChannelHistory, SlotTruth};
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn block_pattern_is_clamped_to_admissibility() {
        // The paper's Lemma 2.7 construction jams the first floor((1-eps)T)
        // slots of each T-block. Under the strict "every window w >= T"
        // reading this slightly overshoots on block-crossing windows (e.g.
        // [0..8] of length 9 would collect 5 jams > floor(4.5)), so the
        // budget clamp trims a slot per block boundary; the achieved
        // density must stay close to the target.
        let eps = Rate::from_f64(0.5);
        let t = 8u64;
        let mut s = PeriodicFrontJammer::new(eps, t);
        let mut b = JamBudget::new(eps, t);
        let mut h = ChannelHistory::new(64);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut jams = Vec::new();
        for _ in 0..64u64 {
            let want = s.decide(&h, &b, &mut rng);
            let ok = want && b.can_jam();
            b.advance(ok);
            h.push(&SlotTruth::new(0, ok));
            jams.push(ok);
        }
        // The very first block is jammed exactly as the paper describes.
        for (i, &j) in jams.iter().enumerate().take(8) {
            assert_eq!(j, i < 4, "slot {i}");
        }
        // Overall the clamp keeps at least 3 of the 4 requested jams per
        // block, and never exceeds the budget (referee below).
        let total: usize = jams.iter().filter(|&&j| j).count();
        assert!(total >= 3 * 8, "achieved only {total} jams over 8 blocks");
        crate::budget::tests_support::verify_all_windows_ref(&jams, eps, t);
    }

    #[test]
    fn small_eps_jams_most_of_each_block() {
        let eps = Rate::from_ratio(1, 8);
        let t = 16u64;
        let s = PeriodicFrontJammer::new(eps, t);
        assert_eq!(s.jam_per_block, 14); // floor(7/8 * 16)
    }
}
