//! Piecewise composition of strategies.

use crate::budget::JamBudget;
use crate::traits::JamStrategy;
use jle_radio::HistoryView;
use rand::RngCore;

/// Runs a different sub-strategy in each slot range: the entry with the
/// largest `from_slot ≤ now` is active. Useful for modelling adversaries
/// that change tactics (e.g. sleep through `Estimation`, then attack the
/// LESK phase).
pub struct PhasedJammer {
    phases: Vec<(u64, Box<dyn JamStrategy>)>,
}

impl PhasedJammer {
    /// `phases` must be sorted by `from_slot` ascending; the first phase
    /// should start at 0 (slots before the first phase are idle).
    pub fn new(mut phases: Vec<(u64, Box<dyn JamStrategy>)>) -> Self {
        phases.sort_by_key(|(from, _)| *from);
        PhasedJammer { phases }
    }
}

impl JamStrategy for PhasedJammer {
    fn name(&self) -> &'static str {
        "phased"
    }

    fn decide(
        &mut self,
        history: &dyn HistoryView,
        budget: &JamBudget,
        rng: &mut dyn RngCore,
    ) -> bool {
        let now = history.now();
        let active = self.phases.iter_mut().rev().find(|(from, _)| *from <= now);
        match active {
            Some((_, strategy)) => strategy.decide(history, budget, rng),
            None => false,
        }
    }

    fn reset(&mut self) {
        for (_, s) in &mut self.phases {
            s.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::Rate;
    use crate::strategies::{NoJammer, SaturatingJammer};
    use jle_radio::{ChannelHistory, SlotTruth};
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn switches_at_boundaries() {
        let mut s = PhasedJammer::new(vec![
            (0, Box::new(NoJammer) as Box<dyn JamStrategy>),
            (3, Box::new(SaturatingJammer)),
            (5, Box::new(NoJammer)),
        ]);
        let b = JamBudget::new(Rate::from_f64(0.5), 4);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut h = ChannelHistory::new(16);
        let mut pat = Vec::new();
        for _ in 0..7 {
            pat.push(s.decide(&h, &b, &mut rng));
            h.push(&SlotTruth::IDLE);
        }
        assert_eq!(pat, vec![false, false, false, true, true, false, false]);
    }

    #[test]
    fn empty_is_idle() {
        let mut s = PhasedJammer::new(vec![]);
        let b = JamBudget::new(Rate::from_f64(0.5), 4);
        let mut rng = SmallRng::seed_from_u64(1);
        let h = ChannelHistory::new(16);
        assert!(!s.decide(&h, &b, &mut rng));
    }
}
