//! Oblivious random jamming.

use crate::budget::JamBudget;
use crate::traits::JamStrategy;
use jle_radio::HistoryView;
use rand::{Rng, RngCore};

/// Requests a jam independently each slot with fixed probability — models
/// the benign end of the paper's threat spectrum: "random faults generated
/// by incidental transmissions of coexisting networks".
#[derive(Debug, Clone, Copy)]
pub struct RandomJammer {
    prob: f64,
}

impl RandomJammer {
    /// Jam request probability, clamped to `[0, 1]`.
    pub fn new(prob: f64) -> Self {
        RandomJammer { prob: prob.clamp(0.0, 1.0) }
    }
}

impl JamStrategy for RandomJammer {
    fn name(&self) -> &'static str {
        "random"
    }

    fn decide(&mut self, _: &dyn HistoryView, _: &JamBudget, rng: &mut dyn RngCore) -> bool {
        rng.gen_bool(self.prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::Rate;
    use jle_radio::ChannelHistory;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn request_rate_matches_probability() {
        let mut s = RandomJammer::new(0.3);
        let h = ChannelHistory::new(8);
        let b = JamBudget::new(Rate::from_f64(0.5), 4);
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 20_000;
        let count: u32 = (0..n).map(|_| s.decide(&h, &b, &mut rng) as u32).sum();
        let rate = count as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn degenerate_probabilities() {
        let h = ChannelHistory::new(8);
        let b = JamBudget::new(Rate::from_f64(0.5), 4);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut never = RandomJammer::new(-1.0);
        let mut always = RandomJammer::new(2.0);
        for _ in 0..16 {
            assert!(!never.decide(&h, &b, &mut rng));
            assert!(always.decide(&h, &b, &mut rng));
        }
    }
}
