//! The passive adversary.

use crate::budget::JamBudget;
use crate::traits::JamStrategy;
use jle_radio::HistoryView;
use rand::RngCore;

/// Never requests a jam. Used for jam-free control runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoJammer;

impl JamStrategy for NoJammer {
    fn name(&self) -> &'static str {
        "none"
    }

    fn decide(&mut self, _: &dyn HistoryView, _: &JamBudget, _: &mut dyn RngCore) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::Rate;
    use jle_radio::ChannelHistory;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn never_jams() {
        let mut s = NoJammer;
        let h = ChannelHistory::new(8);
        let b = JamBudget::new(Rate::from_f64(0.5), 4);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..32 {
            assert!(!s.decide(&h, &b, &mut rng));
        }
    }
}
