//! Periodic burst jamming.

use crate::budget::JamBudget;
use crate::traits::JamStrategy;
use jle_radio::HistoryView;
use rand::RngCore;

/// Alternates `on` consecutive jam requests with `off` idle slots.
///
/// With `on` close to `T` this saturates whole contiguous stretches —
/// the workload for experiment E3, where the paper's runtime bound
/// transitions from the `log n` regime to the `Θ(T)` regime.
#[derive(Debug, Clone, Copy)]
pub struct BurstJammer {
    on: u64,
    off: u64,
}

impl BurstJammer {
    /// `on` jam requests followed by `off` idle slots (period `on+off`).
    /// Both are clamped to at least 1.
    pub fn new(on: u64, off: u64) -> Self {
        BurstJammer { on: on.max(1), off: off.max(1) }
    }
}

impl JamStrategy for BurstJammer {
    fn name(&self) -> &'static str {
        "burst"
    }

    fn decide(&mut self, history: &dyn HistoryView, _: &JamBudget, _: &mut dyn RngCore) -> bool {
        history.now() % (self.on + self.off) < self.on
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::Rate;
    use jle_radio::{ChannelHistory, SlotTruth};
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn burst_pattern() {
        let mut s = BurstJammer::new(3, 2);
        let b = JamBudget::new(Rate::from_f64(0.5), 4);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut h = ChannelHistory::new(32);
        let mut pat = Vec::new();
        for _ in 0..10 {
            pat.push(s.decide(&h, &b, &mut rng));
            h.push(&SlotTruth::IDLE);
        }
        assert_eq!(pat, vec![true, true, true, false, false, true, true, true, false, false]);
    }

    #[test]
    fn zero_params_clamped() {
        let s = BurstJammer::new(0, 0);
        assert_eq!((s.on, s.off), (1, 1));
    }
}
