//! Reactive jamming keyed on the previous slot's state.

use crate::budget::JamBudget;
use crate::traits::JamStrategy;
use jle_radio::{ChannelState, HistoryView};
use rand::RngCore;

/// Requests a jam whenever the *previous* slot was observed as `Null`.
///
/// Rationale against LESK: a `Null` means the estimate `u` was above
/// `log₂ n` and just dropped by 1; jamming right after converts the next
/// would-be `Null` into a `Collision`, stalling the downward correction
/// and keeping the transmission probability too small for a `Single`.
/// This is a *reactive* adversary in the sense of Richa et al. (ICDCS'11).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReactiveNullJammer;

impl JamStrategy for ReactiveNullJammer {
    fn name(&self) -> &'static str {
        "reactive-null"
    }

    fn decide(&mut self, history: &dyn HistoryView, _: &JamBudget, _: &mut dyn RngCore) -> bool {
        history.last().is_some_and(|p| p.state() == ChannelState::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::Rate;
    use jle_radio::{ChannelHistory, SlotTruth};
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn fires_only_after_null() {
        let mut s = ReactiveNullJammer;
        let b = JamBudget::new(Rate::from_f64(0.5), 4);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut h = ChannelHistory::new(8);
        assert!(!s.decide(&h, &b, &mut rng), "no history yet");
        h.push(&SlotTruth::new(0, false)); // Null
        assert!(s.decide(&h, &b, &mut rng));
        h.push(&SlotTruth::new(2, false)); // Collision
        assert!(!s.decide(&h, &b, &mut rng));
        h.push(&SlotTruth::new(1, false)); // Single
        assert!(!s.decide(&h, &b, &mut rng));
        h.push(&SlotTruth::new(0, true)); // jammed: reads Collision
        assert!(!s.decide(&h, &b, &mut rng));
    }
}
