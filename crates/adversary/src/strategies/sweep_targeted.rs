//! Schedule-aware jamming of oblivious sweep protocols.

use crate::budget::JamBudget;
use crate::traits::JamStrategy;
use jle_radio::HistoryView;
use rand::RngCore;

/// Targets the cyclic probability sweep of `BackoffProtocol`-style
/// oblivious protocols (cycle `R = 1, 2, …`, one slot per probability
/// `2^{-1} … 2^{-R}`).
///
/// Because the schedule never reacts to the channel, the exponent `r`
/// used in any slot is a pure function of the slot index; the jammer
/// replays it and requests a jam exactly when `|r − log₂ n|` is within
/// `band` — the slots whose `Single` probability is non-negligible. This
/// is the natural attack on any no-CD protocol: without collision
/// detection a protocol cannot estimate `n` adaptively and is driven to
/// oblivious sweeps, whose useful slots are few, predictable, and cheap
/// to jam (experiment E21).
#[derive(Debug, Clone, Copy)]
pub struct SweepTargetedJammer {
    log2_n: f64,
    band: f64,
}

impl SweepTargetedJammer {
    /// `n` — the true network size (granted to the adversary by the
    /// model); `band` — half-width of the targeted exponent window.
    pub fn new(n: u64, band: f64) -> Self {
        SweepTargetedJammer { log2_n: (n.max(1) as f64).log2(), band }
    }

    /// The sweep exponent used at a given global slot (mirrors
    /// `BackoffProtocol`'s schedule: cycles of length 1, 2, 3, …).
    pub fn exponent_at(slot: u64) -> u32 {
        // Find the cycle R with triangular(R-1) <= slot < triangular(R).
        // slot is 0-based; triangular(R) = R(R+1)/2.
        let r = ((((8 * slot + 1) as f64).sqrt() - 1.0) / 2.0).floor() as u64;
        // `r` cycles are complete before this slot; position in cycle:
        let start = r * (r + 1) / 2;
        (slot - start + 1) as u32
    }
}

impl JamStrategy for SweepTargetedJammer {
    fn name(&self) -> &'static str {
        "sweep-targeted"
    }

    fn decide(&mut self, history: &dyn HistoryView, _: &JamBudget, _: &mut dyn RngCore) -> bool {
        let r = Self::exponent_at(history.now()) as f64;
        (r - self.log2_n).abs() <= self.band
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_schedule_matches_backoff() {
        // Backoff positions: [1], [1,2], [1,2,3], [1,2,3,4] …
        let expect = [1u32, 1, 2, 1, 2, 3, 1, 2, 3, 4, 1, 2, 3, 4, 5];
        for (slot, &want) in expect.iter().enumerate() {
            assert_eq!(SweepTargetedJammer::exponent_at(slot as u64), want, "slot {slot}");
        }
    }

    #[test]
    fn exponent_schedule_far_out() {
        // Cycle 1000 starts at triangular(999) = 499500.
        assert_eq!(SweepTargetedJammer::exponent_at(499_500), 1);
        assert_eq!(SweepTargetedJammer::exponent_at(499_500 + 999), 1000);
    }

    #[test]
    fn targets_only_the_dangerous_window() {
        use crate::rate::Rate;
        use jle_radio::{ChannelHistory, SlotTruth};
        use rand::{rngs::SmallRng, SeedableRng};
        let mut s = SweepTargetedJammer::new(256, 2.0); // log2 n = 8, window r in [6, 10]
        let b = JamBudget::new(Rate::from_f64(0.5), 8);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut h = ChannelHistory::new(4096);
        let mut requested = Vec::new();
        for slot in 0..200u64 {
            let want = s.decide(&h, &b, &mut rng);
            let r = SweepTargetedJammer::exponent_at(slot);
            assert_eq!(want, (6..=10).contains(&r), "slot {slot} r={r}");
            requested.push(want);
            h.push(&SlotTruth::IDLE);
        }
        assert!(requested.iter().any(|&w| w), "window must be hit in 200 slots");
        assert!(!requested.iter().all(|&w| w), "must save budget outside the window");
    }
}
