//! Front-loaded jamming.

use crate::budget::JamBudget;
use crate::traits::JamStrategy;
use jle_radio::HistoryView;
use rand::RngCore;

/// Requests a jam in every slot before `horizon`, nothing after — models
/// an attacker with a fixed energy reserve spent as early as possible
/// (worst case for protocols whose estimate starts far from `log₂ n`).
#[derive(Debug, Clone, Copy)]
pub struct FrontLoadedJammer {
    horizon: u64,
}

impl FrontLoadedJammer {
    /// Jamming phase covers slots `0..horizon`.
    pub fn new(horizon: u64) -> Self {
        FrontLoadedJammer { horizon }
    }
}

impl JamStrategy for FrontLoadedJammer {
    fn name(&self) -> &'static str {
        "front-loaded"
    }

    fn decide(&mut self, history: &dyn HistoryView, _: &JamBudget, _: &mut dyn RngCore) -> bool {
        history.now() < self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::Rate;
    use jle_radio::{ChannelHistory, SlotTruth};
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn stops_at_horizon() {
        let mut s = FrontLoadedJammer::new(3);
        let b = JamBudget::new(Rate::from_f64(0.5), 4);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut h = ChannelHistory::new(16);
        let mut pat = Vec::new();
        for _ in 0..6 {
            pat.push(s.decide(&h, &b, &mut rng));
            h.push(&SlotTruth::IDLE);
        }
        assert_eq!(pat, vec![true, true, true, false, false, false]);
    }
}
