//! Scripted jamming from an explicit bitmap — mainly for tests.

use crate::budget::JamBudget;
use crate::traits::JamStrategy;
use jle_radio::HistoryView;
use rand::RngCore;

/// Plays back an explicit request pattern, optionally looping it.
#[derive(Debug, Clone)]
pub struct ScriptedJammer {
    pattern: Vec<bool>,
    repeat: bool,
}

impl ScriptedJammer {
    /// Pattern of jam requests indexed by slot; when `repeat` the pattern
    /// loops, otherwise the jammer is idle after the pattern ends.
    pub fn new(pattern: Vec<bool>, repeat: bool) -> Self {
        ScriptedJammer { pattern, repeat }
    }
}

impl JamStrategy for ScriptedJammer {
    fn name(&self) -> &'static str {
        "scripted"
    }

    fn decide(&mut self, history: &dyn HistoryView, _: &JamBudget, _: &mut dyn RngCore) -> bool {
        if self.pattern.is_empty() {
            return false;
        }
        let t = history.now() as usize;
        if self.repeat {
            self.pattern[t % self.pattern.len()]
        } else {
            self.pattern.get(t).copied().unwrap_or(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::Rate;
    use jle_radio::{ChannelHistory, SlotTruth};
    use rand::{rngs::SmallRng, SeedableRng};

    fn play(s: &mut ScriptedJammer, n: usize) -> Vec<bool> {
        let b = JamBudget::new(Rate::from_f64(0.5), 4);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut h = ChannelHistory::new(64);
        (0..n)
            .map(|_| {
                let d = s.decide(&h, &b, &mut rng);
                h.push(&SlotTruth::IDLE);
                d
            })
            .collect()
    }

    #[test]
    fn oneshot_pattern() {
        let mut s = ScriptedJammer::new(vec![true, false, true], false);
        assert_eq!(play(&mut s, 5), vec![true, false, true, false, false]);
    }

    #[test]
    fn repeating_pattern() {
        let mut s = ScriptedJammer::new(vec![true, false], true);
        assert_eq!(play(&mut s, 5), vec![true, false, true, false, true]);
    }

    #[test]
    fn empty_pattern_is_idle() {
        let mut s = ScriptedJammer::new(vec![], true);
        assert_eq!(play(&mut s, 3), vec![false, false, false]);
    }
}
