//! Exact fixed-point representation of the paper's ε parameter.
//!
//! The `(T, 1−ε)`-bounded adversary may jam at most `(1−ε)·w` slots out of
//! any `w ≥ T` contiguous slots. Budget enforcement must be *exact* — a
//! floating-point allowance that is off by one slot in a multi-million-slot
//! window would silently change the adversary class — so ε is stored as a
//! rational `num / 2^32` and all allowance arithmetic is integer-only.

use serde::{Deserialize, Serialize};

/// A probability-like quantity in `(0, 1)`, stored exactly as `num / 2^32`.
///
/// # Examples
///
/// ```
/// use jle_adversary::Rate;
///
/// let eps = Rate::from_ratio(1, 3);
/// // Allowance of a window is floor((1 - eps) * w), computed exactly.
/// assert_eq!(eps.allowance(9), 6);
/// assert_eq!(eps.allowance(10), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rate {
    num: u64,
}

impl Rate {
    /// Fixed-point denominator: `2^32`.
    pub const SCALE: u64 = 1 << 32;

    /// Exact rate from a numerator over [`Rate::SCALE`]. Clamped to
    /// `[1, SCALE − 1]` so the rate is a valid ε ∈ (0, 1).
    #[inline]
    pub fn from_num(num: u64) -> Self {
        Rate { num: num.clamp(1, Self::SCALE - 1) }
    }

    /// Nearest representable rate to an `f64` in `(0, 1)`.
    ///
    /// Values outside `(0, 1)` are clamped to the smallest/largest
    /// representable positive rate.
    #[inline]
    pub fn from_f64(eps: f64) -> Self {
        let num = (eps * Self::SCALE as f64).round();
        if num.is_nan() {
            return Rate { num: Self::SCALE / 2 };
        }
        Rate::from_num(num.clamp(1.0, (Self::SCALE - 1) as f64) as u64)
    }

    /// Exact rate `p/q`.
    ///
    /// # Panics
    /// Panics if `q == 0`.
    #[inline]
    pub fn from_ratio(p: u64, q: u64) -> Self {
        assert!(q > 0, "denominator must be positive");
        Rate::from_num(((p as u128 * Self::SCALE as u128) / q as u128) as u64)
    }

    /// The raw numerator over [`Rate::SCALE`].
    #[inline]
    pub fn num(&self) -> u64 {
        self.num
    }

    /// The rate as an `f64` (for protocol arithmetic, not for budgets).
    #[inline]
    pub fn as_f64(&self) -> f64 {
        self.num as f64 / Self::SCALE as f64
    }

    /// Numerator of the complement `1 − ε` over [`Rate::SCALE`].
    #[inline]
    pub fn complement_num(&self) -> u64 {
        Self::SCALE - self.num
    }

    /// Exact jamming allowance of a window of `w` slots:
    /// `⌊(1 − ε) · w⌋`, computed in integer arithmetic.
    #[inline]
    pub fn allowance(&self, w: u64) -> u64 {
        ((self.complement_num() as u128 * w as u128) / Self::SCALE as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_allowances() {
        let eps = Rate::from_f64(0.5);
        assert_eq!(eps.allowance(0), 0);
        assert_eq!(eps.allowance(1), 0);
        assert_eq!(eps.allowance(2), 1);
        assert_eq!(eps.allowance(3), 1);
        assert_eq!(eps.allowance(4), 2);
        assert_eq!(eps.allowance(1001), 500);
    }

    #[test]
    fn ratio_exactness() {
        // eps = 1/3: allowance(w) = floor(2w/3)
        let eps = Rate::from_ratio(1, 3);
        for w in 0u64..10_000 {
            // from_ratio floors eps, so 1-eps is rounded *up* by at most
            // 2^-32; allowance can exceed floor(2w/3) only for w > 2^32.
            assert_eq!(eps.allowance(w), 2 * w / 3, "w={w}");
        }
    }

    #[test]
    fn tiny_and_huge_eps() {
        let tiny = Rate::from_f64(1e-12); // clamps to 1/2^32
        assert_eq!(tiny.num(), 1);
        assert!(tiny.allowance(100) <= 100);
        let huge = Rate::from_f64(1.5); // clamps below 1
        assert_eq!(huge.num(), Rate::SCALE - 1);
        // eps ≈ 1 − 2^-32: allowance of any laptop-scale window is 0.
        assert_eq!(huge.allowance(1 << 20), 0);
    }

    #[test]
    fn f64_roundtrip_close() {
        for &e in &[0.05, 0.1, 0.25, 0.5, 0.75, 0.9] {
            let r = Rate::from_f64(e);
            assert!((r.as_f64() - e).abs() < 1e-9, "eps={e}");
        }
    }

    #[test]
    fn allowance_monotone_in_window() {
        let eps = Rate::from_ratio(3, 10);
        let mut prev = 0;
        for w in 0u64..5_000 {
            let a = eps.allowance(w);
            assert!(a >= prev);
            assert!(a <= w);
            prev = a;
        }
    }

    #[test]
    fn nan_defaults_to_half() {
        assert_eq!(Rate::from_f64(f64::NAN).num(), Rate::SCALE / 2);
    }
}
