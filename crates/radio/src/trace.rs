//! Compact per-slot traces.
//!
//! Experiments with very large `T` run for millions of slots; a trace entry
//! is packed into a single byte (2 bits of observed state, 1 bit of jam
//! flag, 1 bit "clean single", 1 bit "any transmitter") so full traces stay
//! cheap to keep around for post-hoc slot classification (experiment E11).

use crate::slot::{ChannelState, SlotTruth};
use serde::{Deserialize, Serialize};

/// One slot of a [`Trace`], packed into a byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedSlot(u8);

impl PackedSlot {
    const JAM: u8 = 0b0000_0100;
    const CLEAN_SINGLE: u8 = 0b0000_1000;
    const ANY_TX: u8 = 0b0001_0000;

    /// Pack a slot ground truth.
    #[inline]
    pub fn new(truth: &SlotTruth) -> Self {
        let mut b = truth.observed().code();
        if truth.jammed {
            b |= Self::JAM;
        }
        if truth.is_clean_single() {
            b |= Self::CLEAN_SINGLE;
        }
        if truth.transmitters > 0 {
            b |= Self::ANY_TX;
        }
        PackedSlot(b)
    }

    /// The observed channel state of the slot.
    #[inline]
    pub fn state(&self) -> ChannelState {
        ChannelState::from_code(self.0 & 0b11)
    }

    /// Whether the adversary jammed the slot.
    #[inline]
    pub fn jammed(&self) -> bool {
        self.0 & Self::JAM != 0
    }

    /// Whether the slot was an unjammed Single.
    #[inline]
    pub fn clean_single(&self) -> bool {
        self.0 & Self::CLEAN_SINGLE != 0
    }

    /// Whether at least one station transmitted.
    #[inline]
    pub fn any_transmitter(&self) -> bool {
        self.0 & Self::ANY_TX != 0
    }
}

/// A whole-run channel trace: one [`PackedSlot`] per slot, plus an optional
/// parallel series of protocol-internal estimates (e.g. LESK's `u`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    slots: Vec<PackedSlot>,
    /// Optional per-slot scalar recorded by the protocol under test (LESK's
    /// estimate `u` in the reproduction experiments). Empty if disabled.
    pub estimates: Vec<f64>,
}

impl Trace {
    /// New empty trace with capacity for `cap` slots.
    pub fn with_capacity(cap: usize) -> Self {
        Trace { slots: Vec::with_capacity(cap), estimates: Vec::new() }
    }

    /// Append one slot.
    #[inline]
    pub fn push(&mut self, truth: &SlotTruth) {
        self.slots.push(PackedSlot::new(truth));
    }

    /// Append one slot together with a protocol estimate.
    #[inline]
    pub fn push_with_estimate(&mut self, truth: &SlotTruth, estimate: f64) {
        self.push(truth);
        self.estimates.push(estimate);
    }

    /// Clear all recorded slots and estimates, keeping the allocations —
    /// the arena-reuse hook: a recycled trace records a fresh run without
    /// reallocating its backing storage.
    pub fn reset(&mut self) {
        self.slots.clear();
        self.estimates.clear();
    }

    /// Number of recorded slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the trace is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Slot at index `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Option<PackedSlot> {
        self.slots.get(i).copied()
    }

    /// Iterator over packed slots.
    pub fn iter(&self) -> impl Iterator<Item = PackedSlot> + '_ {
        self.slots.iter().copied()
    }

    /// Count slots with the given observed state.
    pub fn count_state(&self, state: ChannelState) -> usize {
        self.iter().filter(|s| s.state() == state).count()
    }

    /// Count jammed slots.
    pub fn count_jammed(&self) -> usize {
        self.iter().filter(|s| s.jammed()).count()
    }

    /// Index of the first unjammed Single, if any.
    pub fn first_clean_single(&self) -> Option<usize> {
        self.iter().position(|s| s.clean_single())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_roundtrip() {
        for k in [0u64, 1, 2, 3, 17] {
            for jam in [false, true] {
                let t = SlotTruth::new(k, jam);
                let p = PackedSlot::new(&t);
                assert_eq!(p.state(), t.observed());
                assert_eq!(p.jammed(), jam);
                assert_eq!(p.clean_single(), t.is_clean_single());
                assert_eq!(p.any_transmitter(), k > 0);
            }
        }
    }

    #[test]
    fn trace_counting() {
        let mut tr = Trace::with_capacity(8);
        tr.push(&SlotTruth::new(0, false)); // Null
        tr.push(&SlotTruth::new(2, false)); // Collision
        tr.push(&SlotTruth::new(0, true)); // jammed Collision
        tr.push(&SlotTruth::new(1, false)); // Single
        assert_eq!(tr.len(), 4);
        assert_eq!(tr.count_state(ChannelState::Null), 1);
        assert_eq!(tr.count_state(ChannelState::Collision), 2);
        assert_eq!(tr.count_state(ChannelState::Single), 1);
        assert_eq!(tr.count_jammed(), 1);
        assert_eq!(tr.first_clean_single(), Some(3));
    }

    #[test]
    fn estimates_series() {
        let mut tr = Trace::default();
        tr.push_with_estimate(&SlotTruth::new(0, false), 0.0);
        tr.push_with_estimate(&SlotTruth::new(2, false), 0.5);
        assert_eq!(tr.estimates, vec![0.0, 0.5]);
    }

    #[test]
    fn no_single_no_position() {
        let mut tr = Trace::default();
        tr.push(&SlotTruth::new(0, false));
        tr.push(&SlotTruth::new(1, true)); // jammed single is not clean
        assert_eq!(tr.first_clean_single(), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// PackedSlot is a faithful 1-byte projection of SlotTruth.
        #[test]
        fn packed_slot_roundtrip(k in 0u64..10_000, jam: bool) {
            let t = SlotTruth::new(k, jam);
            let p = PackedSlot::new(&t);
            prop_assert_eq!(p.state(), t.observed());
            prop_assert_eq!(p.jammed(), jam);
            prop_assert_eq!(p.clean_single(), t.is_clean_single());
            prop_assert_eq!(p.any_transmitter(), k > 0);
        }

        /// Trace counters agree with a naive recount.
        #[test]
        fn trace_counts_agree(entries in proptest::collection::vec((0u64..5, any::<bool>()), 0..200)) {
            let mut tr = Trace::default();
            for &(k, jam) in &entries {
                tr.push(&SlotTruth::new(k, jam));
            }
            prop_assert_eq!(tr.len(), entries.len());
            let nulls = entries.iter().filter(|&&(k, j)| k == 0 && !j).count();
            let singles = entries.iter().filter(|&&(k, j)| k == 1 && !j).count();
            prop_assert_eq!(tr.count_state(ChannelState::Null), nulls);
            prop_assert_eq!(tr.count_state(ChannelState::Single), singles);
            prop_assert_eq!(tr.count_jammed(), entries.iter().filter(|e| e.1).count());
            let first = entries.iter().position(|&(k, j)| k == 1 && !j);
            prop_assert_eq!(tr.first_clean_single(), first);
        }
    }
}
