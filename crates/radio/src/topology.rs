//! Interference topologies: from one shared channel to a graph of
//! neighborhoods.
//!
//! The paper is single-hop: every station hears every other station, so
//! one global [`crate::SlotTruth`] describes the slot for everyone. The
//! strongest related work (Ghaffari–Haeupler, Czumaj–Davies) generalizes
//! exactly this to *multi-hop* radio networks, where a station only hears
//! its graph neighbors and each node perceives its own channel state.
//!
//! [`Topology`] captures the interference graph:
//!
//! * [`Topology::Complete`] — the paper's single shared channel. Every
//!   node's neighborhood is the whole network, so per-neighborhood
//!   resolution degenerates to the global rule and the multi-hop engine
//!   path is bit-identical to the single-channel one (locked by golden
//!   fixtures in `jle-engine`).
//! * [`Topology::unit_disk`] — seeded random positions in the unit
//!   square, edge iff distance ≤ radius. Generation is a *pure function*
//!   of `(n, radius, seed)` — same inputs, same graph, on every
//!   platform.
//! * [`Topology::explicit`] — an arbitrary validated adjacency.
//!   Construction rejects self-loops and out-of-range node ids, and the
//!   stored adjacency is symmetric by construction (radio links are
//!   undirected); [`Topology::from_directed_arcs`] additionally *checks*
//!   symmetry of caller-supplied directed arcs instead of silently
//!   mirroring them.
//!
//! Ground truth per node is resolved over the **closed** neighborhood
//! `N[i] = N(i) ∪ {i}`: a node that transmits contributes to its own
//! perceived slot (its radio occupies its own channel), which is exactly
//! what makes the complete graph collapse to the global rule. The
//! arithmetic itself — jam ⇒ `Collision`, else 0/1/≥2 transmitters ⇒
//! `Null`/`Single`/`Collision` — lives in one place, [`resolve`], shared
//! by [`crate::SlotTruth::observed`] and the per-neighborhood path so the
//! two can never drift.

use crate::slot::ChannelState;

/// The ground-truth slot-resolution arithmetic, shared by the global
/// channel ([`crate::SlotTruth::observed`]) and the per-neighborhood
/// multi-hop path.
///
/// A jammed slot always reads as [`ChannelState::Collision`], even with
/// zero or one transmitters ("to the listening stations, a jammed slot is
/// indistinguishable from the case of at least two transmitters");
/// otherwise the transmitter count resolves 0 → `Null`, 1 → `Single`,
/// ≥2 → `Collision`.
#[inline]
pub const fn resolve(transmitters: u64, jammed: bool) -> ChannelState {
    if jammed {
        ChannelState::Collision
    } else {
        match transmitters {
            0 => ChannelState::Null,
            1 => ChannelState::Single,
            _ => ChannelState::Collision,
        }
    }
}

/// Why a topology could not be built or used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// An edge connects a node to itself; interference graphs are simple.
    SelfLoop {
        /// The offending node id.
        node: u64,
    },
    /// An edge references a node id `>= n`.
    OutOfRange {
        /// The offending node id.
        node: u64,
        /// The declared node count.
        n: u64,
    },
    /// A directed arc has no reverse arc (radio links are undirected).
    Asymmetric {
        /// Tail of the one-way arc.
        from: u64,
        /// Head of the one-way arc.
        to: u64,
    },
    /// The graph was built for a different station count than the run.
    SizeMismatch {
        /// Nodes in the topology.
        topology: u64,
        /// Stations in the simulation config.
        stations: u64,
    },
    /// A graph topology needs at least one node.
    Empty,
    /// Node count exceeds the `u32` index space of the graph storage.
    TooLarge {
        /// The requested node count.
        n: u64,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::SelfLoop { node } => {
                write!(f, "self-loop on node {node}: interference graphs are simple graphs")
            }
            TopologyError::OutOfRange { node, n } => {
                write!(f, "edge references node {node}, but the graph has {n} nodes (valid ids are 0..{n})")
            }
            TopologyError::Asymmetric { from, to } => {
                write!(
                    f,
                    "arc {from} -> {to} has no reverse arc {to} -> {from}: radio links are undirected"
                )
            }
            TopologyError::SizeMismatch { topology, stations } => {
                write!(
                    f,
                    "topology has {topology} nodes but the simulation has {stations} stations"
                )
            }
            TopologyError::Empty => write!(f, "a graph topology needs at least one node"),
            TopologyError::TooLarge { n } => {
                write!(f, "graph topology with {n} nodes exceeds the u32 index space")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// How a [`Graph`] was generated, for canonical descriptors.
#[derive(Debug, Clone, PartialEq)]
enum GraphKind {
    UnitDisk { radius: f64, seed: u64 },
    Explicit,
    DenseLinear { clusters: u32, size: u32 },
    CoreTail { core: u32, tail: u32 },
}

/// A validated interference graph in CSR form, with connected components
/// precomputed for the engine's per-component sharding.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    n: u32,
    /// CSR row offsets, length `n + 1`.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbor lists.
    neighbors: Vec<u32>,
    /// Connected-component id per node (ids are dense, assigned in
    /// order of each component's smallest node).
    component: Vec<u32>,
    /// Node ids sorted by `(component, id)` — each component's members
    /// are a contiguous range, ready for deterministic sharding.
    comp_order: Vec<u32>,
    /// Range offsets into `comp_order`, length `component_count + 1`.
    comp_offsets: Vec<u32>,
    kind: GraphKind,
}

impl Graph {
    /// Build the CSR + component structure from a validated, deduplicated,
    /// symmetric edge set (both directions present for every edge).
    fn from_arcs(n: u32, mut arcs: Vec<(u32, u32)>, kind: GraphKind) -> Graph {
        arcs.sort_unstable();
        arcs.dedup();
        let mut offsets = vec![0u32; n as usize + 1];
        for &(u, _) in &arcs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n as usize {
            offsets[i + 1] += offsets[i];
        }
        let neighbors: Vec<u32> = arcs.iter().map(|&(_, v)| v).collect();

        // Connected components by iterative DFS, component ids in order of
        // the smallest node id in each component.
        let mut component = vec![u32::MAX; n as usize];
        let mut n_components = 0u32;
        let mut stack = Vec::new();
        for start in 0..n {
            if component[start as usize] != u32::MAX {
                continue;
            }
            let id = n_components;
            n_components += 1;
            component[start as usize] = id;
            stack.push(start);
            while let Some(u) = stack.pop() {
                let (lo, hi) = (offsets[u as usize] as usize, offsets[u as usize + 1] as usize);
                for &v in &neighbors[lo..hi] {
                    if component[v as usize] == u32::MAX {
                        component[v as usize] = id;
                        stack.push(v);
                    }
                }
            }
        }
        let mut comp_order: Vec<u32> = (0..n).collect();
        comp_order.sort_unstable_by_key(|&i| (component[i as usize], i));
        let mut comp_offsets = vec![0u32; n_components as usize + 1];
        for &c in &component {
            comp_offsets[c as usize + 1] += 1;
        }
        for i in 0..n_components as usize {
            comp_offsets[i + 1] += comp_offsets[i];
        }
        Graph { n, offsets, neighbors, component, comp_order, comp_offsets, kind }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> u64 {
        self.neighbors.len() as u64 / 2
    }

    /// The sorted open neighborhood `N(i)` of node `i`.
    #[inline]
    pub fn neighbors(&self, i: u32) -> &[u32] {
        &self.neighbors[self.offsets[i as usize] as usize..self.offsets[i as usize + 1] as usize]
    }

    /// Degree of node `i`.
    #[inline]
    pub fn degree(&self, i: u32) -> u32 {
        self.offsets[i as usize + 1] - self.offsets[i as usize]
    }

    /// Connected-component id of node `i` (dense ids, assigned in order
    /// of each component's smallest member).
    #[inline]
    pub fn component_of(&self, i: u32) -> u32 {
        self.component[i as usize]
    }

    /// Number of connected components.
    #[inline]
    pub fn component_count(&self) -> u32 {
        self.comp_offsets.len() as u32 - 1
    }

    /// The members of component `c`, sorted by node id. Components are
    /// contiguous ranges of one shared array, so per-component work can be
    /// sharded without gathering.
    #[inline]
    pub fn component_members(&self, c: u32) -> &[u32] {
        &self.comp_order
            [self.comp_offsets[c as usize] as usize..self.comp_offsets[c as usize + 1] as usize]
    }

    /// Count the transmitters in the **closed** neighborhood `N[i]` and,
    /// when the count is exactly one, identify that lone transmitter.
    /// `tx(j)` reports whether node `j` transmitted this slot.
    ///
    /// This is the multi-hop half of the shared-resolution contract: feed
    /// the count (plus the slot's jam flag) through [`resolve`] to get
    /// node `i`'s perceived channel state.
    #[inline]
    pub fn closed_neighborhood_tx(
        &self,
        i: u32,
        mut tx: impl FnMut(u32) -> bool,
    ) -> (u64, Option<u32>) {
        let mut count = 0u64;
        let mut lone = None;
        if tx(i) {
            count = 1;
            lone = Some(i);
        }
        for &j in self.neighbors(i) {
            if tx(j) {
                count += 1;
                lone = if count == 1 { Some(j) } else { None };
            }
        }
        (count, lone)
    }
}

/// The interference topology of a simulated network.
#[derive(Debug, Clone, PartialEq)]
pub enum Topology {
    /// The paper's single-hop model: every station hears every other.
    /// Size-agnostic — valid for any station count.
    Complete,
    /// A multi-hop interference graph.
    Graph(Box<Graph>),
}

impl Topology {
    /// The single shared channel (the paper's model).
    pub fn complete() -> Topology {
        Topology::Complete
    }

    /// Build a graph from an undirected edge list. Symmetry holds by
    /// construction (each pair is stored in both directions); self-loops
    /// and out-of-range ids are rejected with descriptive errors, and
    /// duplicate edges are deduplicated.
    pub fn explicit(n: u64, edges: &[(u64, u64)]) -> Result<Topology, TopologyError> {
        let n = Self::check_n(n)?;
        let mut arcs = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            Self::check_edge(n, u, v)?;
            arcs.push((u as u32, v as u32));
            arcs.push((v as u32, u as u32));
        }
        Ok(Topology::Graph(Box::new(Graph::from_arcs(n, arcs, GraphKind::Explicit))))
    }

    /// Build a graph from *directed* arcs, enforcing that every arc has
    /// its reverse (radio links are undirected). Use this when the arc
    /// list comes from an external source that could be silently one-way;
    /// [`Topology::explicit`] mirrors pairs instead.
    pub fn from_directed_arcs(n: u64, arcs: &[(u64, u64)]) -> Result<Topology, TopologyError> {
        let n32 = Self::check_n(n)?;
        let mut set: Vec<(u32, u32)> = Vec::with_capacity(arcs.len());
        for &(u, v) in arcs {
            Self::check_edge(n32, u, v)?;
            set.push((u as u32, v as u32));
        }
        set.sort_unstable();
        set.dedup();
        for &(u, v) in &set {
            if set.binary_search(&(v, u)).is_err() {
                return Err(TopologyError::Asymmetric { from: u as u64, to: v as u64 });
            }
        }
        Ok(Topology::Graph(Box::new(Graph::from_arcs(n32, set, GraphKind::Explicit))))
    }

    /// A unit-disk graph: `n` seeded positions in the unit square, edge
    /// iff Euclidean distance ≤ `radius`. A **pure function** of its
    /// arguments: positions come from a SplitMix64 stream derived only
    /// from `seed`, so the same `(n, radius, seed)` builds the same graph
    /// everywhere, every time (property-tested).
    pub fn unit_disk(n: u64, radius: f64, seed: u64) -> Result<Topology, TopologyError> {
        let n32 = Self::check_n(n)?;
        let pts = unit_disk_positions(n, seed);
        let r2 = radius * radius;
        let mut arcs = Vec::new();
        for i in 0..n as usize {
            for j in (i + 1)..n as usize {
                let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
                if dx * dx + dy * dy <= r2 {
                    arcs.push((i as u32, j as u32));
                    arcs.push((j as u32, i as u32));
                }
            }
        }
        Ok(Topology::Graph(Box::new(Graph::from_arcs(
            n32,
            arcs,
            GraphKind::UnitDisk { radius, seed },
        ))))
    }

    /// The dense-linear scenario: a chain of `clusters` cliques of `size`
    /// nodes each, consecutive cliques bridged by one gateway edge (last
    /// node of clique `k` — first node of clique `k+1`). Returns the
    /// topology and the cluster assignment (node → cluster index).
    ///
    /// # Panics
    /// Panics if `clusters == 0` or `size == 0`.
    pub fn dense_linear(clusters: u32, size: u32) -> (Topology, Vec<u32>) {
        assert!(clusters > 0 && size > 0, "dense_linear needs clusters >= 1 and size >= 1");
        let n = clusters as u64 * size as u64;
        let mut arcs = Vec::new();
        for c in 0..clusters {
            let base = c * size;
            for a in 0..size {
                for b in (a + 1)..size {
                    arcs.push((base + a, base + b));
                    arcs.push((base + b, base + a));
                }
            }
            if c + 1 < clusters {
                let (gw, next) = (base + size - 1, (c + 1) * size);
                arcs.push((gw, next));
                arcs.push((next, gw));
            }
        }
        let n32 = Self::check_n(n).expect("dense_linear size fits u32");
        let clusters_of: Vec<u32> = (0..n as u32).map(|i| i / size).collect();
        let graph = Graph::from_arcs(n32, arcs, GraphKind::DenseLinear { clusters, size });
        (Topology::Graph(Box::new(graph)), clusters_of)
    }

    /// The core-tail scenario: a clique of `core` nodes with a path of
    /// `tail` nodes hanging off node 0. Returns the topology and the
    /// cluster assignment: the core is cluster 0; each tail node is its
    /// own singleton cluster.
    ///
    /// # Panics
    /// Panics if `core == 0`.
    pub fn core_tail(core: u32, tail: u32) -> (Topology, Vec<u32>) {
        assert!(core > 0, "core_tail needs core >= 1");
        let n = core as u64 + tail as u64;
        let mut arcs = Vec::new();
        for a in 0..core {
            for b in (a + 1)..core {
                arcs.push((a, b));
                arcs.push((b, a));
            }
        }
        for t in 0..tail {
            let node = core + t;
            let prev = if t == 0 { 0 } else { node - 1 };
            arcs.push((prev, node));
            arcs.push((node, prev));
        }
        let n32 = Self::check_n(n).expect("core_tail size fits u32");
        let clusters_of: Vec<u32> =
            (0..n as u32).map(|i| if i < core { 0 } else { i - core + 1 }).collect();
        let graph = Graph::from_arcs(n32, arcs, GraphKind::CoreTail { core, tail });
        (Topology::Graph(Box::new(graph)), clusters_of)
    }

    fn check_n(n: u64) -> Result<u32, TopologyError> {
        if n == 0 {
            return Err(TopologyError::Empty);
        }
        u32::try_from(n).map_err(|_| TopologyError::TooLarge { n })
    }

    fn check_edge(n: u32, u: u64, v: u64) -> Result<(), TopologyError> {
        if u == v {
            return Err(TopologyError::SelfLoop { node: u });
        }
        for node in [u, v] {
            if node >= n as u64 {
                return Err(TopologyError::OutOfRange { node, n: n as u64 });
            }
        }
        Ok(())
    }

    /// Whether this is the single-hop complete topology.
    #[inline]
    pub fn is_complete(&self) -> bool {
        matches!(self, Topology::Complete)
    }

    /// The underlying graph, if any.
    #[inline]
    pub fn graph(&self) -> Option<&Graph> {
        match self {
            Topology::Complete => None,
            Topology::Graph(g) => Some(g),
        }
    }

    /// Check the topology against a station count. `Complete` fits any
    /// `n`; a graph must match exactly.
    pub fn validate_for(&self, stations: u64) -> Result<(), TopologyError> {
        match self {
            Topology::Complete => Ok(()),
            Topology::Graph(g) if g.n() as u64 == stations => Ok(()),
            Topology::Graph(g) => {
                Err(TopologyError::SizeMismatch { topology: g.n() as u64, stations })
            }
        }
    }

    /// Canonical descriptor for cache keys, CLI labels, and reports. Two
    /// topologies with the same descriptor resolve slots identically.
    pub fn descriptor(&self) -> String {
        match self {
            Topology::Complete => "complete".to_string(),
            Topology::Graph(g) => match &g.kind {
                GraphKind::UnitDisk { radius, seed } => {
                    format!("unit-disk(n={},r={radius},seed={seed})", g.n())
                }
                GraphKind::Explicit => {
                    format!("explicit(n={},m={},fnv={:016x})", g.n(), g.edge_count(), g.edge_fnv())
                }
                GraphKind::DenseLinear { clusters, size } => {
                    format!("dense-linear(k={clusters},m={size})")
                }
                GraphKind::CoreTail { core, tail } => format!("core-tail(core={core},tail={tail})"),
            },
        }
    }
}

impl Graph {
    /// FNV-1a over the canonical arc list, so explicit graphs get a
    /// content-derived descriptor.
    fn edge_fnv(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |x: u32| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for u in 0..self.n {
            for &v in self.neighbors(u) {
                mix(u);
                mix(v);
            }
        }
        h
    }
}

/// The seeded positions behind [`Topology::unit_disk`] — exposed so plots
/// and tests can reconstruct the embedding. Pure function of `(n, seed)`:
/// node `i` takes the `2i`-th and `2i+1`-th outputs of a SplitMix64
/// stream seeded with `seed`, mapped to `[0, 1)`.
pub fn unit_disk_positions(n: u64, seed: u64) -> Vec<(f64, f64)> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let unit = |x: u64| (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    (0..n).map(|_| (unit(next()), unit(next()))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slot::SlotTruth;

    #[test]
    fn resolve_matches_slot_truth_observed() {
        for k in [0u64, 1, 2, 7, 1000] {
            for jam in [false, true] {
                assert_eq!(resolve(k, jam), SlotTruth::new(k, jam).observed());
            }
        }
    }

    #[test]
    fn explicit_rejects_self_loops() {
        let err = Topology::explicit(4, &[(0, 1), (2, 2)]).unwrap_err();
        assert_eq!(err, TopologyError::SelfLoop { node: 2 });
        assert!(err.to_string().contains("self-loop on node 2"));
    }

    #[test]
    fn explicit_rejects_out_of_range_ids() {
        let err = Topology::explicit(4, &[(0, 7)]).unwrap_err();
        assert_eq!(err, TopologyError::OutOfRange { node: 7, n: 4 });
        assert!(err.to_string().contains("node 7"));
        assert!(err.to_string().contains("4 nodes"));
    }

    #[test]
    fn explicit_rejects_empty_graphs() {
        assert_eq!(Topology::explicit(0, &[]).unwrap_err(), TopologyError::Empty);
    }

    #[test]
    fn explicit_adjacency_is_symmetric_and_deduplicated() {
        let t = Topology::explicit(4, &[(0, 1), (1, 0), (1, 2), (0, 1)]).unwrap();
        let g = t.graph().unwrap();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn directed_arcs_enforce_symmetry() {
        let err = Topology::from_directed_arcs(3, &[(0, 1), (1, 0), (1, 2)]).unwrap_err();
        assert_eq!(err, TopologyError::Asymmetric { from: 1, to: 2 });
        assert!(err.to_string().contains("no reverse arc"));
        let ok = Topology::from_directed_arcs(3, &[(0, 1), (1, 0)]).unwrap();
        assert_eq!(ok.graph().unwrap().edge_count(), 1);
    }

    #[test]
    fn validate_for_matches_sizes() {
        let t = Topology::explicit(4, &[(0, 1)]).unwrap();
        assert!(t.validate_for(4).is_ok());
        assert_eq!(
            t.validate_for(5).unwrap_err(),
            TopologyError::SizeMismatch { topology: 4, stations: 5 }
        );
        assert!(Topology::complete().validate_for(1).is_ok());
        assert!(Topology::complete().validate_for(1 << 40).is_ok());
    }

    #[test]
    fn unit_disk_is_pure_in_its_seed() {
        let a = Topology::unit_disk(64, 0.25, 7).unwrap();
        let b = Topology::unit_disk(64, 0.25, 7).unwrap();
        assert_eq!(a, b);
        let c = Topology::unit_disk(64, 0.25, 8).unwrap();
        assert_ne!(a, c, "different seeds should embed differently");
        assert_eq!(unit_disk_positions(64, 7), unit_disk_positions(64, 7));
    }

    #[test]
    fn unit_disk_radius_sqrt2_is_complete() {
        let t = Topology::unit_disk(10, 1.5, 3).unwrap();
        let g = t.graph().unwrap();
        assert_eq!(g.edge_count(), 45, "r > sqrt(2) connects every pair in the unit square");
        assert_eq!(g.component_count(), 1);
    }

    #[test]
    fn dense_linear_is_connected_chain_of_cliques() {
        let (t, clusters) = Topology::dense_linear(4, 3);
        let g = t.graph().unwrap();
        assert_eq!(g.n(), 12);
        assert_eq!(g.component_count(), 1, "gateway edges connect the chain");
        assert_eq!(clusters, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]);
        // Gateway: node 2 (last of clique 0) touches node 3 (first of clique 1).
        assert!(g.neighbors(2).contains(&3));
        assert!(!g.neighbors(0).contains(&3), "non-gateway nodes stay inside their clique");
        // In-clique degree 2 + gateway for the bridge nodes.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(t.descriptor(), "dense-linear(k=4,m=3)");
    }

    #[test]
    fn core_tail_shape() {
        let (t, clusters) = Topology::core_tail(4, 3);
        let g = t.graph().unwrap();
        assert_eq!(g.n(), 7);
        assert_eq!(g.component_count(), 1);
        assert_eq!(clusters, vec![0, 0, 0, 0, 1, 2, 3]);
        assert_eq!(g.degree(0), 4, "core node 0 carries the tail");
        assert_eq!(g.neighbors(4), &[0, 5]);
        assert_eq!(g.neighbors(6), &[5], "tail end");
        assert_eq!(t.descriptor(), "core-tail(core=4,tail=3)");
    }

    #[test]
    fn components_partition_disconnected_graphs() {
        let t = Topology::explicit(6, &[(0, 1), (2, 3), (3, 4)]).unwrap();
        let g = t.graph().unwrap();
        assert_eq!(g.component_count(), 3);
        assert_eq!(g.component_of(0), g.component_of(1));
        assert_eq!(g.component_of(2), g.component_of(4));
        assert_ne!(g.component_of(0), g.component_of(2));
        assert_eq!(g.component_members(g.component_of(2)), &[2, 3, 4]);
        assert_eq!(g.component_members(g.component_of(5)), &[5]);
        let total: usize = (0..g.component_count()).map(|c| g.component_members(c).len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn closed_neighborhood_counts_include_self() {
        let t = Topology::explicit(4, &[(0, 1), (1, 2)]).unwrap();
        let g = t.graph().unwrap();
        let tx = [true, false, true, true];
        // Node 0 hears itself and node 1: one transmitter (itself).
        assert_eq!(g.closed_neighborhood_tx(0, |j| tx[j as usize]), (1, Some(0)));
        // Node 1 hears 0 and 2: two transmitters.
        assert_eq!(g.closed_neighborhood_tx(1, |j| tx[j as usize]), (2, None));
        // Node 3 is isolated and transmitting: its own Single.
        assert_eq!(g.closed_neighborhood_tx(3, |j| tx[j as usize]), (1, Some(3)));
    }

    #[test]
    fn descriptors_are_canonical() {
        assert_eq!(Topology::complete().descriptor(), "complete");
        let u = Topology::unit_disk(16, 0.3, 42).unwrap();
        assert_eq!(u.descriptor(), "unit-disk(n=16,r=0.3,seed=42)");
        let e1 = Topology::explicit(3, &[(0, 1)]).unwrap();
        let e2 = Topology::explicit(3, &[(1, 0)]).unwrap();
        assert_eq!(e1.descriptor(), e2.descriptor(), "descriptor is content-derived");
        let e3 = Topology::explicit(3, &[(1, 2)]).unwrap();
        assert_ne!(e1.descriptor(), e3.descriptor());
    }

    #[test]
    fn too_large_is_rejected() {
        assert_eq!(
            Topology::explicit(1 << 40, &[]).unwrap_err(),
            TopologyError::TooLarge { n: 1 << 40 }
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Unit-disk generation is a pure function of its seed, and the
        /// adjacency it produces is symmetric and simple.
        #[test]
        fn unit_disk_pure_and_symmetric(n in 1u64..48, seed: u64, r_pct in 0u32..150) {
            let r = r_pct as f64 / 100.0;
            let a = Topology::unit_disk(n, r, seed).unwrap();
            let b = Topology::unit_disk(n, r, seed).unwrap();
            prop_assert_eq!(&a, &b);
            let g = a.graph().unwrap();
            for u in 0..g.n() {
                for &v in g.neighbors(u) {
                    prop_assert!(u != v, "no self-loops");
                    prop_assert!(g.neighbors(v).contains(&u), "symmetry");
                }
            }
        }

        /// Explicit construction yields symmetric adjacency and components
        /// that partition the node set.
        #[test]
        fn explicit_symmetric_components_partition(
            n in 1u64..32,
            edges in proptest::collection::vec((0u64..32, 0u64..32), 0..64),
        ) {
            let valid: Vec<(u64, u64)> =
                edges.into_iter().filter(|&(u, v)| u != v && u < n && v < n).collect();
            let t = Topology::explicit(n, &valid).unwrap();
            let g = t.graph().unwrap();
            let mut seen = vec![false; n as usize];
            for c in 0..g.component_count() {
                for &m in g.component_members(c) {
                    prop_assert!(!seen[m as usize], "components must be disjoint");
                    seen[m as usize] = true;
                    prop_assert_eq!(g.component_of(m), c);
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "components must cover every node");
            for u in 0..g.n() {
                for &v in g.neighbors(u) {
                    prop_assert!(g.neighbors(v).contains(&u));
                }
            }
        }

        /// On any topology, closed-neighborhood resolution with the full
        /// transmitter set equals the global rule when the graph is
        /// complete (here: a unit-disk with radius > sqrt(2)).
        #[test]
        fn complete_disk_local_equals_global(
            n in 1u64..24,
            tx_bits in proptest::collection::vec(any::<bool>(), 24),
            jam: bool,
        ) {
            let t = Topology::unit_disk(n, 1.5, 1).unwrap();
            let g = t.graph().unwrap();
            let global: u64 = tx_bits.iter().take(n as usize).filter(|&&b| b).count() as u64;
            for i in 0..g.n() {
                let (count, _) = g.closed_neighborhood_tx(i, |j| tx_bits[j as usize]);
                prop_assert_eq!(count, global);
                prop_assert_eq!(
                    resolve(count, jam),
                    crate::slot::SlotTruth::new(global, jam).observed()
                );
            }
        }
    }
}
