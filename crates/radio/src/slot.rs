//! Ground-truth slot outcomes and the three-valued channel state.

use serde::{Deserialize, Serialize};

/// The state of the channel as perceived by a *listening* station with
/// collision detection.
///
/// Per Section 1.1 of the paper: `Null` — the channel is idle; `Single` —
/// exactly one station transmits (all listeners receive the message);
/// `Collision` — at least two stations transmit, **or** the adversary jams
/// the slot (listeners cannot tell these apart).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelState {
    /// No transmitter and no jamming: an idle slot.
    Null,
    /// Exactly one transmitter and no jamming: a successful transmission.
    Single,
    /// Two or more transmitters, or a jammed slot.
    Collision,
}

impl ChannelState {
    /// Compact 2-bit encoding used by [`crate::trace::PackedSlot`].
    #[inline]
    pub const fn code(self) -> u8 {
        match self {
            ChannelState::Null => 0,
            ChannelState::Single => 1,
            ChannelState::Collision => 2,
        }
    }

    /// Inverse of [`ChannelState::code`].
    ///
    /// # Panics
    /// Panics if `code > 2`.
    #[inline]
    pub const fn from_code(code: u8) -> Self {
        match code {
            0 => ChannelState::Null,
            1 => ChannelState::Single,
            2 => ChannelState::Collision,
            _ => panic!("invalid ChannelState code"),
        }
    }
}

/// Listener view in the **no-CD** model: only "exactly one transmitter"
/// versus "anything else" is distinguishable (Section 1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NoCdState {
    /// Exactly one transmitter and no jamming.
    Single,
    /// Zero or at least two transmitters, or a jammed slot.
    NoSingle,
}

impl From<ChannelState> for NoCdState {
    #[inline]
    fn from(s: ChannelState) -> Self {
        match s {
            ChannelState::Single => NoCdState::Single,
            _ => NoCdState::NoSingle,
        }
    }
}

/// The ground truth of one slot: how many stations transmitted and whether
/// the adversary jammed it. Only the simulator sees this; stations see a
/// projection of it through their [`crate::CdModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SlotTruth {
    /// Number of stations that transmitted in the slot.
    pub transmitters: u64,
    /// Whether the adversary jammed the slot.
    pub jammed: bool,
}

impl SlotTruth {
    /// A quiet slot: nobody transmits, no jamming.
    pub const IDLE: SlotTruth = SlotTruth { transmitters: 0, jammed: false };

    /// Create a slot truth.
    #[inline]
    pub const fn new(transmitters: u64, jammed: bool) -> Self {
        SlotTruth { transmitters, jammed }
    }

    /// The state a listening station with (weak or strong) collision
    /// detection observes.
    ///
    /// A jammed slot always reads as [`ChannelState::Collision`], even when
    /// zero or one stations transmitted: "to the listening stations, a
    /// jammed slot is indistinguishable from the case of at least two
    /// transmitters" (abstract of the paper). In particular jamming
    /// destroys a would-be `Single`, and the adversary can never *create*
    /// a `Null` or a `Single`.
    ///
    /// The arithmetic is [`crate::topology::resolve`], shared with the
    /// per-neighborhood multi-hop path so CD/no-CD/jamming semantics
    /// cannot drift between the global and local channels.
    #[inline]
    pub const fn observed(&self) -> ChannelState {
        crate::topology::resolve(self.transmitters, self.jammed)
    }

    /// Whether the slot is an *unjammed successful transmission* — the only
    /// event the adversary can neither fake nor (once it declined to jam)
    /// prevent.
    #[inline]
    pub const fn is_clean_single(&self) -> bool {
        !self.jammed && self.transmitters == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_truth_table() {
        assert_eq!(SlotTruth::new(0, false).observed(), ChannelState::Null);
        assert_eq!(SlotTruth::new(1, false).observed(), ChannelState::Single);
        assert_eq!(SlotTruth::new(2, false).observed(), ChannelState::Collision);
        assert_eq!(SlotTruth::new(100, false).observed(), ChannelState::Collision);
        // Jamming always reads as Collision, regardless of transmitters.
        assert_eq!(SlotTruth::new(0, true).observed(), ChannelState::Collision);
        assert_eq!(SlotTruth::new(1, true).observed(), ChannelState::Collision);
        assert_eq!(SlotTruth::new(7, true).observed(), ChannelState::Collision);
    }

    #[test]
    fn jamming_destroys_single() {
        let s = SlotTruth::new(1, true);
        assert!(!s.is_clean_single());
        assert_eq!(s.observed(), ChannelState::Collision);
    }

    #[test]
    fn clean_single_detection() {
        assert!(SlotTruth::new(1, false).is_clean_single());
        assert!(!SlotTruth::new(0, false).is_clean_single());
        assert!(!SlotTruth::new(2, false).is_clean_single());
        assert!(!SlotTruth::new(1, true).is_clean_single());
    }

    #[test]
    fn no_cd_projection() {
        assert_eq!(NoCdState::from(ChannelState::Null), NoCdState::NoSingle);
        assert_eq!(NoCdState::from(ChannelState::Single), NoCdState::Single);
        assert_eq!(NoCdState::from(ChannelState::Collision), NoCdState::NoSingle);
    }

    #[test]
    fn state_codes_roundtrip() {
        for s in [ChannelState::Null, ChannelState::Single, ChannelState::Collision] {
            assert_eq!(ChannelState::from_code(s.code()), s);
        }
    }

    #[test]
    fn idle_constant() {
        assert_eq!(SlotTruth::IDLE.observed(), ChannelState::Null);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The observation function is total and consistent: jam forces
        /// Collision, Single requires exactly one transmitter unjammed.
        #[test]
        fn observed_is_consistent(k in 0u64..1_000_000, jam: bool) {
            let t = SlotTruth::new(k, jam);
            let s = t.observed();
            if jam {
                prop_assert_eq!(s, ChannelState::Collision);
            } else {
                match k {
                    0 => prop_assert_eq!(s, ChannelState::Null),
                    1 => prop_assert_eq!(s, ChannelState::Single),
                    _ => prop_assert_eq!(s, ChannelState::Collision),
                }
            }
            prop_assert_eq!(t.is_clean_single(), s == ChannelState::Single);
            // NoCd projection agrees.
            prop_assert_eq!(
                NoCdState::from(s) == NoCdState::Single,
                t.is_clean_single()
            );
        }
    }
}
