//! # jle-radio — slotted single-hop radio channel model
//!
//! This crate is the physical-layer substrate of the reproduction of
//! *Electing a Leader in Wireless Networks Quickly Despite Jamming*
//! (Klonowski & Pająk, SPAA 2015). It models exactly the channel the paper
//! assumes: time is divided into discrete slots; in each slot every station
//! either transmits or listens; the channel takes one of three states —
//! [`ChannelState::Null`] (no transmitter), [`ChannelState::Single`]
//! (exactly one transmitter, message delivered) or
//! [`ChannelState::Collision`] (two or more transmitters *or* an
//! adversarially jammed slot — the two are indistinguishable to listeners).
//!
//! Three collision-detection (CD) regimes are supported ([`CdModel`]):
//!
//! * **strong-CD** — every station, including transmitters, learns the slot
//!   state;
//! * **weak-CD** — only listeners learn the state; a transmitter learns
//!   nothing and, per the paper's weak `Broadcast` (Function 3), assumes
//!   the slot was a Collision;
//! * **no-CD** — listeners can only distinguish Single from no-Single.
//!
//! The crate also provides the deterministic interval partition
//! C1/C2/C3 of the paper's Section 3 ([`partition`]), the per-slot
//! ground-truth record ([`SlotTruth`]), compact slot traces ([`trace`]), a
//! bounded channel history for adaptive adversaries ([`history`]) and the
//! multi-hop interference-graph layer ([`topology`]): a validated
//! [`Topology`] (complete / unit-disk / explicit adjacency) whose
//! per-node slot outcomes are resolved from each node's *closed
//! neighborhood* through the same arithmetic
//! ([`topology::resolve`]) as the global channel, so single-hop is just
//! the complete-graph special case.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cd;
pub mod history;
pub mod partition;
pub mod slot;
pub mod topology;
pub mod trace;

pub use cd::{CdModel, Observation};
pub use history::{ChannelHistory, HistoryView};
pub use partition::{Interval, SlotClass};
pub use slot::{ChannelState, NoCdState, SlotTruth};
pub use topology::{unit_disk_positions, Graph, Topology, TopologyError};
pub use trace::{PackedSlot, Trace};
