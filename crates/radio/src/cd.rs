//! Collision-detection models and the per-station observation function.

use crate::slot::{ChannelState, NoCdState, SlotTruth};
use serde::{Deserialize, Serialize};

/// The collision-detection capability of the network (Section 1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CdModel {
    /// Stations can transmit and listen simultaneously; everyone receives
    /// the true three-valued channel state each slot.
    Strong,
    /// Only non-transmitting stations receive the channel state. A
    /// transmitter learns nothing; the paper's weak `Broadcast`
    /// (Function 3) has it *assume* a Collision.
    Weak,
    /// Listeners distinguish only Single vs. no-Single; transmitters learn
    /// nothing. Included for completeness (robust election under no-CD is
    /// an open problem per the paper's Section 4).
    NoCd,
}

impl CdModel {
    /// All supported models, for test matrices.
    pub const ALL: [CdModel; 3] = [CdModel::Strong, CdModel::Weak, CdModel::NoCd];
}

/// What a single station perceives at the end of a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Observation {
    /// Full three-valued channel state (listener under strong/weak CD, or
    /// any station under strong CD).
    State(ChannelState),
    /// no-CD listener view.
    NoCd(NoCdState),
    /// Transmitter under weak-CD or no-CD: no feedback; the paper's weak
    /// `Broadcast` returns `Collision` in this case, which callers should
    /// treat as the pessimistic assumption encoded here.
    TxAssumedCollision,
}

impl Observation {
    /// The channel state a protocol following the paper's `Broadcast`
    /// conventions should act on.
    ///
    /// * strong-CD: the true state;
    /// * weak-CD transmitter: `Collision` (Function 3: "if transmitted
    ///   then return Collision");
    /// * no-CD listener: `Single` maps to `Single`; `NoSingle` has no
    ///   faithful three-valued image and is surfaced as `Collision` — only
    ///   protocols explicitly written for no-CD should consume
    ///   [`Observation::NoCd`] directly instead of calling this.
    #[inline]
    pub fn effective_state(&self) -> ChannelState {
        match *self {
            Observation::State(s) => s,
            Observation::NoCd(NoCdState::Single) => ChannelState::Single,
            Observation::NoCd(NoCdState::NoSingle) => ChannelState::Collision,
            Observation::TxAssumedCollision => ChannelState::Collision,
        }
    }

    /// Whether this observation tells the station a successful transmission
    /// (a `Single`) happened in the slot.
    #[inline]
    pub fn heard_single(&self) -> bool {
        matches!(
            *self,
            Observation::State(ChannelState::Single) | Observation::NoCd(NoCdState::Single)
        )
    }
}

/// Compute the observation of one station for one slot.
///
/// `transmitted` is whether *this* station transmitted in the slot;
/// `truth` is the slot's ground truth.
#[inline]
pub fn observe(model: CdModel, transmitted: bool, truth: &SlotTruth) -> Observation {
    match (model, transmitted) {
        (CdModel::Strong, _) => Observation::State(truth.observed()),
        (CdModel::Weak, false) => Observation::State(truth.observed()),
        (CdModel::Weak, true) => Observation::TxAssumedCollision,
        (CdModel::NoCd, false) => Observation::NoCd(truth.observed().into()),
        (CdModel::NoCd, true) => Observation::TxAssumedCollision,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_cd_gives_truth_to_everyone() {
        let truth = SlotTruth::new(1, false);
        assert_eq!(
            observe(CdModel::Strong, true, &truth),
            Observation::State(ChannelState::Single)
        );
        assert_eq!(
            observe(CdModel::Strong, false, &truth),
            Observation::State(ChannelState::Single)
        );
    }

    #[test]
    fn weak_cd_transmitter_assumes_collision() {
        // Even on its own successful Single, the weak-CD transmitter does
        // not find out — this is exactly why the paper needs Notification.
        let truth = SlotTruth::new(1, false);
        assert_eq!(observe(CdModel::Weak, true, &truth), Observation::TxAssumedCollision);
        assert_eq!(observe(CdModel::Weak, false, &truth), Observation::State(ChannelState::Single));
    }

    #[test]
    fn weak_cd_listener_sees_truth() {
        for (k, jam, want) in [
            (0u64, false, ChannelState::Null),
            (1, false, ChannelState::Single),
            (3, false, ChannelState::Collision),
            (0, true, ChannelState::Collision),
        ] {
            let truth = SlotTruth::new(k, jam);
            assert_eq!(observe(CdModel::Weak, false, &truth), Observation::State(want));
        }
    }

    #[test]
    fn no_cd_listener_two_valued() {
        assert_eq!(
            observe(CdModel::NoCd, false, &SlotTruth::new(0, false)),
            Observation::NoCd(NoCdState::NoSingle)
        );
        assert_eq!(
            observe(CdModel::NoCd, false, &SlotTruth::new(1, false)),
            Observation::NoCd(NoCdState::Single)
        );
        assert_eq!(
            observe(CdModel::NoCd, false, &SlotTruth::new(2, false)),
            Observation::NoCd(NoCdState::NoSingle)
        );
    }

    #[test]
    fn effective_state_mapping() {
        assert_eq!(Observation::State(ChannelState::Null).effective_state(), ChannelState::Null);
        assert_eq!(Observation::TxAssumedCollision.effective_state(), ChannelState::Collision);
        assert_eq!(
            Observation::NoCd(NoCdState::NoSingle).effective_state(),
            ChannelState::Collision
        );
        assert_eq!(Observation::NoCd(NoCdState::Single).effective_state(), ChannelState::Single);
    }

    #[test]
    fn heard_single() {
        assert!(Observation::State(ChannelState::Single).heard_single());
        assert!(Observation::NoCd(NoCdState::Single).heard_single());
        assert!(!Observation::TxAssumedCollision.heard_single());
        assert!(!Observation::State(ChannelState::Collision).heard_single());
        assert!(!Observation::State(ChannelState::Null).heard_single());
    }
}
