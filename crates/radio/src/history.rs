//! Bounded channel history — the adversary's knowledge base.
//!
//! The paper's adversary "knows the entire history of the channel and the
//! protocol executed by honest stations" and decides whether to jam a slot
//! *before* seeing the stations' actions in it. [`ChannelHistory`] records
//! everything slot by slot; to keep memory bounded for multi-million-slot
//! runs, per-slot records older than the retention window are dropped while
//! *cumulative counts* are kept exactly. All strategies shipped in
//! `jle-adversary` only consult recent slots and totals, so truncation is
//! observationally irrelevant to them.

use crate::slot::{ChannelState, SlotTruth};
use crate::trace::PackedSlot;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Exact cumulative statistics over the entire run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateCounts {
    /// Slots observed as Null.
    pub nulls: u64,
    /// Slots observed as Single (necessarily unjammed).
    pub singles: u64,
    /// Slots observed as Collision (true collisions and jammed slots).
    pub collisions: u64,
    /// Jammed slots (subset of `collisions`).
    pub jammed: u64,
}

impl StateCounts {
    /// Total number of recorded slots.
    #[inline]
    pub fn total(&self) -> u64 {
        self.nulls + self.singles + self.collisions
    }

    fn record(&mut self, truth: &SlotTruth) {
        match truth.observed() {
            ChannelState::Null => self.nulls += 1,
            ChannelState::Single => self.singles += 1,
            ChannelState::Collision => self.collisions += 1,
        }
        if truth.jammed {
            self.jammed += 1;
        }
    }
}

/// Read-only view of the channel history, as exposed to adversaries.
pub trait HistoryView {
    /// Index of the next slot to be played (= number of completed slots).
    fn now(&self) -> u64;
    /// Packed record of a past slot, if still retained.
    fn slot(&self, slot: u64) -> Option<PackedSlot>;
    /// Observed state of a past slot, if still retained.
    fn observed(&self, slot: u64) -> Option<ChannelState> {
        self.slot(slot).map(|p| p.state())
    }
    /// The most recent completed slot, if any is retained.
    fn last(&self) -> Option<PackedSlot> {
        self.now().checked_sub(1).and_then(|s| self.slot(s))
    }
    /// Exact cumulative counts over the whole run.
    fn counts(&self) -> StateCounts;
    /// Oldest retained slot index.
    fn retained_from(&self) -> u64;
}

/// Growable channel record with bounded per-slot retention.
#[derive(Debug, Clone)]
pub struct ChannelHistory {
    ring: VecDeque<PackedSlot>,
    retention: usize,
    first_retained: u64,
    counts: StateCounts,
}

impl ChannelHistory {
    /// Create a history retaining at least `retention` most-recent slots
    /// (minimum 1).
    pub fn new(retention: usize) -> Self {
        let retention = retention.max(1);
        ChannelHistory {
            ring: VecDeque::with_capacity(retention.min(1 << 20)),
            retention,
            first_retained: 0,
            counts: StateCounts::default(),
        }
    }

    /// Reset to an empty history with a (possibly new) retention window,
    /// keeping the ring allocation — the arena-reuse hook for repeated
    /// trials on one thread.
    pub fn reset(&mut self, retention: usize) {
        self.retention = retention.max(1);
        self.ring.clear();
        self.first_retained = 0;
        self.counts = StateCounts::default();
    }

    /// Record the outcome of the next slot.
    pub fn push(&mut self, truth: &SlotTruth) {
        self.counts.record(truth);
        self.ring.push_back(PackedSlot::new(truth));
        if self.ring.len() > self.retention {
            self.ring.pop_front();
            self.first_retained += 1;
        }
    }

    /// Iterate over the `k` most recent retained slots, oldest first.
    pub fn recent(&self, k: usize) -> impl Iterator<Item = PackedSlot> + '_ {
        let skip = self.ring.len().saturating_sub(k);
        self.ring.iter().skip(skip).copied()
    }

    /// Number of jammed slots among the last `k` retained slots.
    pub fn jammed_in_recent(&self, k: usize) -> u64 {
        self.recent(k).filter(|p| p.jammed()).count() as u64
    }
}

impl HistoryView for ChannelHistory {
    #[inline]
    fn now(&self) -> u64 {
        self.first_retained + self.ring.len() as u64
    }

    #[inline]
    fn slot(&self, slot: u64) -> Option<PackedSlot> {
        if slot < self.first_retained {
            return None;
        }
        self.ring.get((slot - self.first_retained) as usize).copied()
    }

    #[inline]
    fn counts(&self) -> StateCounts {
        self.counts
    }

    #[inline]
    fn retained_from(&self) -> u64 {
        self.first_retained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_exact_under_truncation() {
        let mut h = ChannelHistory::new(4);
        for i in 0..100u64 {
            let truth = match i % 4 {
                0 => SlotTruth::new(0, false),
                1 => SlotTruth::new(1, false),
                2 => SlotTruth::new(5, false),
                _ => SlotTruth::new(0, true),
            };
            h.push(&truth);
        }
        let c = h.counts();
        assert_eq!(c.total(), 100);
        assert_eq!(c.nulls, 25);
        assert_eq!(c.singles, 25);
        assert_eq!(c.collisions, 50);
        assert_eq!(c.jammed, 25);
    }

    #[test]
    fn retention_window_moves() {
        let mut h = ChannelHistory::new(3);
        for _ in 0..10 {
            h.push(&SlotTruth::new(0, false));
        }
        assert_eq!(h.now(), 10);
        assert_eq!(h.retained_from(), 7);
        assert!(h.slot(6).is_none());
        assert!(h.slot(7).is_some());
        assert!(h.slot(9).is_some());
        assert!(h.slot(10).is_none());
    }

    #[test]
    fn last_and_observed() {
        let mut h = ChannelHistory::new(8);
        assert!(h.last().is_none());
        h.push(&SlotTruth::new(1, false));
        assert_eq!(h.last().unwrap().state(), ChannelState::Single);
        assert_eq!(h.observed(0), Some(ChannelState::Single));
        h.push(&SlotTruth::new(0, true));
        assert_eq!(h.last().unwrap().state(), ChannelState::Collision);
        assert!(h.last().unwrap().jammed());
    }

    #[test]
    fn recent_iterates_oldest_first() {
        let mut h = ChannelHistory::new(16);
        h.push(&SlotTruth::new(0, false)); // Null
        h.push(&SlotTruth::new(1, false)); // Single
        h.push(&SlotTruth::new(3, false)); // Collision
        let states: Vec<ChannelState> = h.recent(2).map(|p| p.state()).collect();
        assert_eq!(states, vec![ChannelState::Single, ChannelState::Collision]);
        let all: Vec<ChannelState> = h.recent(99).map(|p| p.state()).collect();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0], ChannelState::Null);
    }

    #[test]
    fn jammed_in_recent_counts() {
        let mut h = ChannelHistory::new(8);
        for jam in [true, false, true, true] {
            h.push(&SlotTruth::new(0, jam));
        }
        // slots, oldest first: [jam, clear, jam, jam]
        assert_eq!(h.jammed_in_recent(1), 1);
        assert_eq!(h.jammed_in_recent(2), 2);
        assert_eq!(h.jammed_in_recent(3), 2);
        assert_eq!(h.jammed_in_recent(4), 3);
        assert_eq!(h.jammed_in_recent(100), 3);
    }
}
