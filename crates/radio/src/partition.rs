//! The C1/C2/C3 interval partition of the paper's Section 3.
//!
//! The `Notification` transformation (weak-CD leader election) splits the
//! global slot timeline into three interleaved families of exponentially
//! growing intervals:
//!
//! ```text
//! C^i_1 = {3·2^i − 3, …, 4·2^i − 4}
//! C^i_2 = {4·2^i − 3, …, 5·2^i − 4}
//! C^i_3 = {5·2^i − 3, …, 6·2^i − 4}
//! ```
//!
//! for `i ≥ 1`. Each interval has exactly `2^i` slots; consecutive
//! intervals tile the timeline from slot 3 onwards (slots 0..=2 belong to
//! no interval and are idle padding). For `i ≥ log₂ T` a
//! `(T, 1−ε)`-bounded adversary cannot jam an entire interval — the
//! property the notification handshake relies on.

use serde::{Deserialize, Serialize};

/// Which of the three interval families a slot belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SlotClass {
    /// Member of `C1` — the inner algorithm's first execution.
    C1,
    /// Member of `C2` — the inner algorithm's second execution.
    C2,
    /// Member of `C3` — the leader's notification channel.
    C3,
    /// Slots 0, 1, 2 — before the first interval; idle.
    Padding,
}

/// A fully resolved interval coordinate: family `j`, level `i`, and the
/// slot's offset within the interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Level `i ≥ 1`; the interval contains `2^i` slots.
    pub level: u32,
    /// Family: 1, 2 or 3.
    pub family: u8,
    /// Offset of the slot within the interval, in `0..2^level`.
    pub offset: u64,
}

impl Interval {
    /// Number of slots in this interval (`2^level`).
    #[inline]
    pub fn len(&self) -> u64 {
        1u64 << self.level
    }

    /// Intervals are never empty; provided for clippy-idiomatic pairing
    /// with [`Interval::len`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// First global slot of the interval: `(2 + family)·2^level − 3`.
    #[inline]
    pub fn start(&self) -> u64 {
        (2 + self.family as u64) * (1u64 << self.level) - 3
    }

    /// Last global slot of the interval: `(3 + family)·2^level − 4`.
    #[inline]
    pub fn end(&self) -> u64 {
        (3 + self.family as u64) * (1u64 << self.level) - 4
    }

    /// Whether this slot is the first of its interval — the point where
    /// `Notification` restarts the inner algorithm with fresh randomness.
    #[inline]
    pub fn is_interval_start(&self) -> bool {
        self.offset == 0
    }

    /// Whether this slot is the last of its interval.
    #[inline]
    pub fn is_interval_end(&self) -> bool {
        self.offset + 1 == self.len()
    }

    /// The [`SlotClass`] of this interval's family.
    #[inline]
    pub fn class(&self) -> SlotClass {
        match self.family {
            1 => SlotClass::C1,
            2 => SlotClass::C2,
            _ => SlotClass::C3,
        }
    }
}

/// Resolve a global slot index to its interval coordinate.
///
/// Returns `None` for the padding slots 0, 1 and 2.
///
/// # Examples
///
/// ```
/// use jle_radio::partition::{classify, SlotClass};
///
/// // C^1_1 = {3, 4}: the first C1 interval.
/// let iv = classify(3).unwrap();
/// assert_eq!((iv.level, iv.family, iv.offset), (1, 1, 0));
/// assert_eq!(iv.class(), SlotClass::C1);
/// assert!(classify(0).is_none()); // padding
/// ```
#[inline]
pub fn classify(slot: u64) -> Option<Interval> {
    if slot < 3 {
        return None;
    }
    // slot + 3 ∈ [3·2^i, 6·2^i) determines the level i.
    let x = slot + 3;
    let i = (x / 3).ilog2();
    let group_offset = x - 3 * (1u64 << i); // ∈ [0, 3·2^i)
    let family = (group_offset >> i) as u8 + 1; // 1, 2 or 3
    let offset = group_offset & ((1u64 << i) - 1);
    Some(Interval { level: i, family, offset })
}

/// The class (C1/C2/C3/Padding) of a global slot.
#[inline]
pub fn class_of(slot: u64) -> SlotClass {
    classify(slot).map_or(SlotClass::Padding, |iv| iv.class())
}

/// The first global slot of interval `C^level_family`.
///
/// # Panics
/// Panics if `family ∉ {1,2,3}` or `level == 0`.
pub fn interval_start(level: u32, family: u8) -> u64 {
    assert!((1..=3).contains(&family), "family must be 1, 2 or 3");
    assert!(level >= 1, "intervals start at level 1");
    (2 + family as u64) * (1u64 << level) - 3
}

/// Iterator over the global slot indices of interval `C^level_family`.
pub fn interval_slots(level: u32, family: u8) -> impl Iterator<Item = u64> {
    let start = interval_start(level, family);
    let len = 1u64 << level;
    start..start + len
}

/// Smallest level `i` such that an interval of size `2^i` cannot be fully
/// jammed by a `(T, 1−ε)`-bounded adversary, i.e. `2^i ≥ T` (`i ≥ log₂ T`).
#[inline]
pub fn safe_level(t_window: u64) -> u32 {
    if t_window <= 1 { 1 } else { (t_window - 1).ilog2() + 1 }.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples_level_one_and_two() {
        // i = 1: C1 = {3,4}, C2 = {5,6}, C3 = {7,8}
        for (slot, fam, off) in [(3, 1, 0), (4, 1, 1), (5, 2, 0), (6, 2, 1), (7, 3, 0), (8, 3, 1)] {
            let iv = classify(slot).unwrap();
            assert_eq!((iv.level, iv.family, iv.offset), (1, fam, off), "slot {slot}");
        }
        // i = 2: C1 = {9..12}, C2 = {13..16}, C3 = {17..20}
        assert_eq!(classify(9).unwrap(), Interval { level: 2, family: 1, offset: 0 });
        assert_eq!(classify(12).unwrap(), Interval { level: 2, family: 1, offset: 3 });
        assert_eq!(classify(13).unwrap(), Interval { level: 2, family: 2, offset: 0 });
        assert_eq!(classify(16).unwrap(), Interval { level: 2, family: 2, offset: 3 });
        assert_eq!(classify(17).unwrap(), Interval { level: 2, family: 3, offset: 0 });
        assert_eq!(classify(20).unwrap(), Interval { level: 2, family: 3, offset: 3 });
        // i = 3 starts right after: C1 = {21..28}
        assert_eq!(classify(21).unwrap(), Interval { level: 3, family: 1, offset: 0 });
    }

    #[test]
    fn padding_slots() {
        assert_eq!(classify(0), None);
        assert_eq!(classify(1), None);
        assert_eq!(classify(2), None);
        assert_eq!(class_of(0), SlotClass::Padding);
        assert!(classify(3).is_some());
    }

    #[test]
    fn tiling_is_contiguous_and_disjoint() {
        // Every slot from 3 up maps to exactly one interval; the interval
        // coordinates advance in the expected lexicographic order.
        let mut prev: Option<Interval> = None;
        for slot in 3u64..100_000 {
            let iv = classify(slot).expect("slot >= 3 must classify");
            assert!(iv.level >= 1);
            assert!((1..=3).contains(&iv.family));
            assert!(iv.offset < iv.len());
            assert_eq!(iv.start() + iv.offset, slot, "start/offset must reconstruct slot");
            if let Some(p) = prev {
                if p.is_interval_end() {
                    assert!(iv.is_interval_start());
                    // next family or next level
                    if p.family == 3 {
                        assert_eq!(iv.level, p.level + 1);
                        assert_eq!(iv.family, 1);
                    } else {
                        assert_eq!(iv.level, p.level);
                        assert_eq!(iv.family, p.family + 1);
                    }
                } else {
                    assert_eq!(iv.level, p.level);
                    assert_eq!(iv.family, p.family);
                    assert_eq!(iv.offset, p.offset + 1);
                }
            } else {
                assert!(iv.is_interval_start());
                assert_eq!(iv.level, 1);
                assert_eq!(iv.family, 1);
            }
            prev = Some(iv);
        }
    }

    #[test]
    fn interval_bounds_match_paper_formulas() {
        for i in 1u32..20 {
            for j in 1u8..=3 {
                let start = interval_start(i, j);
                let iv = classify(start).unwrap();
                assert_eq!(iv.level, i);
                assert_eq!(iv.family, j);
                assert_eq!(iv.offset, 0);
                assert_eq!(iv.end() - iv.start() + 1, 1 << i);
                let slots: Vec<u64> = interval_slots(i, j).collect();
                assert_eq!(slots.len(), 1 << i);
                assert_eq!(slots[0], iv.start());
                assert_eq!(*slots.last().unwrap(), iv.end());
            }
        }
    }

    #[test]
    fn safe_level_bounds() {
        assert_eq!(safe_level(1), 1);
        assert_eq!(safe_level(2), 1);
        assert_eq!(safe_level(3), 2);
        assert_eq!(safe_level(4), 2);
        assert_eq!(safe_level(5), 3);
        assert_eq!(safe_level(1024), 10);
        assert_eq!(safe_level(1025), 11);
        for t in 1u64..5000 {
            let i = safe_level(t);
            assert!(1u64 << i >= t, "2^{i} must be >= T={t}");
            if i > 1 {
                assert!((1u64 << (i - 1)) < t, "safe_level must be minimal for T={t}");
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// classify() and the interval formulas agree at arbitrary slots,
        /// including far beyond the exhaustive test range.
        #[test]
        fn classify_reconstructs_slot(slot in 3u64..(1u64 << 40)) {
            let iv = classify(slot).unwrap();
            prop_assert!(iv.level >= 1);
            prop_assert!((1..=3).contains(&iv.family));
            prop_assert!(iv.offset < iv.len());
            prop_assert_eq!(iv.start() + iv.offset, slot);
            prop_assert_eq!(iv.end(), iv.start() + iv.len() - 1);
            prop_assert_eq!(interval_start(iv.level, iv.family), iv.start());
        }

        /// Adjacent slots map to adjacent positions in the tiling.
        #[test]
        fn tiling_has_no_gaps(slot in 3u64..(1u64 << 40)) {
            let a = classify(slot).unwrap();
            let b = classify(slot + 1).unwrap();
            if a.is_interval_end() {
                prop_assert!(b.is_interval_start());
                if a.family == 3 {
                    prop_assert_eq!((b.level, b.family), (a.level + 1, 1));
                } else {
                    prop_assert_eq!((b.level, b.family), (a.level, a.family + 1));
                }
            } else {
                prop_assert_eq!((b.level, b.family, b.offset), (a.level, a.family, a.offset + 1));
            }
        }

        /// safe_level is the minimal level whose intervals a (T, 1-eps)
        /// adversary cannot fully jam.
        #[test]
        fn safe_level_is_minimal(t in 1u64..(1u64 << 50)) {
            let i = safe_level(t);
            prop_assert!(1u64 << i >= t);
            if i > 1 {
                prop_assert!((1u64 << (i - 1)) < t);
            }
        }
    }
}
