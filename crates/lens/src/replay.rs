//! Deterministic slot-level replay: spec + seed → annotated timeline,
//! bit-exact divergence checking against flight artifacts, and
//! backend-vs-backend diffing.
//!
//! The whole module leans on one engine invariant (pinned by the
//! golden-seed suite): observers are passive, so attaching the
//! [`ReplayObserver`] cannot change the simulation. The per-slot stream
//! it captures uses the *same* [`SlotEvent`] mapping the engine's
//! `TelemetryObserver` uses to fill flight-recorder rings — slot index,
//! transmitter and listener counts from the aggregate actions, jammed
//! flag from the ground truth — so comparing a replayed stream against a
//! recorded artifact is an event-for-event equality check, not a
//! heuristic.

use crate::spec::{LensSpec, SpecError};
use jle_engine::{RunReport, SlotActions, SlotObserver, StateProbe};
use jle_radio::SlotTruth;
use jle_telemetry::{FlightRecord, FlightRing, SlotEvent};

/// Hard cap on captured slot events per replay (memory guard; runs are
/// typically orders of magnitude shorter).
pub const MAX_CAPTURE: usize = 1 << 20;

/// Default cap on recorded state transitions per replay.
pub const MAX_TRANSITIONS: usize = 4096;

/// One station's protocol-state change, sampled at the end of the slot
/// where the new label first appeared.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// Slot after which the station reported the new state.
    pub slot: u64,
    /// Station id.
    pub station: u64,
    /// The new protocol-chosen state label.
    pub state: &'static str,
    /// The probe's scalar at the moment of the change, if any.
    pub value: Option<f64>,
}

/// Passive capture layer for replays: slot events (flight-ring mapping),
/// state transitions via [`StateProbe`]s, and adversary spend.
pub struct ReplayObserver {
    ring: FlightRing,
    want_probes: bool,
    last: Vec<Option<&'static str>>,
    transitions: Vec<Transition>,
    transitions_truncated: bool,
    jammed_total: u64,
}

impl ReplayObserver {
    /// An observer retaining the last `capture` slot events (clamped to
    /// [`MAX_CAPTURE`]); `want_probes` opts into per-station state
    /// probes (an O(n)-per-slot collection in the engine).
    pub fn new(capture: usize, want_probes: bool) -> Self {
        ReplayObserver {
            ring: FlightRing::new(capture.min(MAX_CAPTURE)),
            want_probes,
            last: Vec::new(),
            transitions: Vec::new(),
            transitions_truncated: false,
            jammed_total: 0,
        }
    }

    /// The captured ring (for freezing into a [`FlightRecord`]).
    pub fn ring(&self) -> &FlightRing {
        &self.ring
    }
}

impl SlotObserver for ReplayObserver {
    fn wants_probes(&self) -> bool {
        self.want_probes
    }

    fn on_probes(&mut self, slot: u64, probes: &[StateProbe]) {
        for p in probes {
            let idx = p.station as usize;
            if idx >= self.last.len() {
                self.last.resize(idx + 1, None);
            }
            if self.last[idx] != Some(p.state) {
                self.last[idx] = Some(p.state);
                if self.transitions.len() < MAX_TRANSITIONS {
                    self.transitions.push(Transition {
                        slot,
                        station: p.station,
                        state: p.state,
                        value: p.value,
                    });
                } else {
                    self.transitions_truncated = true;
                }
            }
        }
    }

    fn on_slot(
        &mut self,
        slot: u64,
        truth: &SlotTruth,
        actions: &SlotActions,
        _estimate: Option<f64>,
    ) {
        // Must stay field-for-field identical to the engine telemetry
        // observer's flight-ring mapping — divergence checks compare
        // these events against recorded artifacts for bit-equality.
        self.ring.push(SlotEvent {
            slot,
            transmitters: actions.transmitters,
            listeners: actions.listeners,
            jammed: truth.jammed,
        });
        if truth.jammed {
            self.jammed_total += 1;
        }
    }
}

/// Everything one replay produced.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The re-derived run report.
    pub report: RunReport,
    /// Captured slot events, oldest retained first (the last
    /// `capture` slots of the run).
    pub events: Vec<SlotEvent>,
    /// Total slots the run played (≥ `events.len()`).
    pub slots_seen: u64,
    /// Protocol state transitions, in slot order.
    pub transitions: Vec<Transition>,
    /// Whether the transition log hit [`MAX_TRANSITIONS`].
    pub transitions_truncated: bool,
    /// Total jammed (or noise-corrupted) slots the observer saw.
    pub jammed_total: u64,
}

/// Re-derive `spec` at `seed`, capturing the last `capture` slot events
/// and (optionally) protocol state transitions.
pub fn replay(
    spec: &LensSpec,
    seed: u64,
    capture: usize,
    want_probes: bool,
) -> Result<ReplayOutcome, SpecError> {
    let mut obs = ReplayObserver::new(capture, want_probes);
    let report = spec.run(seed, &mut obs)?;
    Ok(ReplayOutcome {
        slots_seen: obs.ring.total_pushed(),
        events: obs.ring.events(),
        report,
        transitions: obs.transitions,
        transitions_truncated: obs.transitions_truncated,
        jammed_total: obs.jammed_total,
    })
}

/// Re-derive `spec` at `seed` and freeze the result into a healthy
/// ([`jle_telemetry::AnomalyKind::Snapshot`]) flight record carrying its
/// own replay spec — the self-contained artifact `jle-lens record`
/// writes and CI replays.
pub fn record(
    spec: &LensSpec,
    seed: u64,
    tail: usize,
) -> Result<(FlightRecord, ReplayOutcome), SpecError> {
    let mut obs = ReplayObserver::new(tail, true);
    let report = spec.run(seed, &mut obs)?;
    let record = FlightRecord::new(jle_telemetry::AnomalyKind::Snapshot, seed, obs.ring())
        .with_replay_spec(spec.to_params())
        .with_detail("lens snapshot (healthy run, recorded for replay)")
        .with_context("engine", spec.engine.label())
        .with_context("proto", spec.proto.label());
    let outcome = ReplayOutcome {
        slots_seen: obs.ring.total_pushed(),
        events: obs.ring.events(),
        report,
        transitions: obs.transitions,
        transitions_truncated: obs.transitions_truncated,
        jammed_total: obs.jammed_total,
    };
    Ok((record, outcome))
}

/// The verdict of replaying a recorded trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Divergence {
    /// Every recorded slot event was reproduced bit-for-bit and the run
    /// lengths agree.
    None,
    /// A recorded slot replayed with different aggregate behaviour —
    /// the first such slot.
    SlotMismatch {
        /// The diverging slot's recorded event.
        recorded: SlotEvent,
        /// What the replay produced for the same slot index.
        replayed: SlotEvent,
    },
    /// A recorded slot index is absent from the replayed capture (the
    /// replay ended earlier, or its capture window no longer covers it).
    MissingSlot {
        /// The missing slot index.
        slot: u64,
    },
    /// All recorded events matched but the total run lengths differ.
    LengthMismatch {
        /// Slots the recorded run played.
        recorded_slots: u64,
        /// Slots the replay played.
        replayed_slots: u64,
    },
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Divergence::None => write!(f, "none"),
            Divergence::SlotMismatch { recorded, replayed } => write!(
                f,
                "slot {} — recorded tx={} rx={} jam={} vs replayed tx={} rx={} jam={}",
                recorded.slot,
                recorded.transmitters,
                recorded.listeners,
                recorded.jammed,
                replayed.transmitters,
                replayed.listeners,
                replayed.jammed,
            ),
            Divergence::MissingSlot { slot } => {
                write!(f, "slot {slot} absent from the replayed capture")
            }
            Divergence::LengthMismatch { recorded_slots, replayed_slots } => write!(
                f,
                "run length — recorded {recorded_slots} slots vs replayed {replayed_slots}"
            ),
        }
    }
}

/// Compare a recorded artifact against a replay of the same trial.
///
/// Bit-exactness is judged on the recorded window: every event the
/// artifact retained must reappear identically at the same slot index,
/// and the total slot counts must agree.
pub fn divergence(record: &FlightRecord, out: &ReplayOutcome) -> Divergence {
    let mut by_slot = std::collections::BTreeMap::new();
    for ev in &out.events {
        by_slot.insert(ev.slot, *ev);
    }
    for ev in &record.events {
        match by_slot.get(&ev.slot) {
            Some(r) if r == ev => {}
            Some(r) => return Divergence::SlotMismatch { recorded: *ev, replayed: *r },
            None => return Divergence::MissingSlot { slot: ev.slot },
        }
    }
    if record.slots_seen != out.slots_seen {
        return Divergence::LengthMismatch {
            recorded_slots: record.slots_seen,
            replayed_slots: out.slots_seen,
        };
    }
    Divergence::None
}

/// Result of replaying one trial on two backends.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Slots backend A played.
    pub slots_a: u64,
    /// Slots backend B played.
    pub slots_b: u64,
    /// Slot events compared (the common prefix length).
    pub compared: u64,
    /// First slot whose events differ, with both sides, if any.
    pub first_divergence: Option<(SlotEvent, SlotEvent)>,
}

impl DiffReport {
    /// Whether the backends produced identical slot streams end to end.
    pub fn agree(&self) -> bool {
        self.first_divergence.is_none() && self.slots_a == self.slots_b
    }
}

/// Replay the same trial on two specs (typically the same run
/// re-targeted via [`LensSpec::with_engine`]) and pinpoint the first
/// diverging slot.
pub fn diff(a: &LensSpec, b: &LensSpec, seed: u64) -> Result<DiffReport, SpecError> {
    let cap = a.max_slots.max(b.max_slots);
    if cap > MAX_CAPTURE as u64 {
        return Err(SpecError::Invalid(format!(
            "diff captures every slot; max_slots must be ≤ {MAX_CAPTURE}"
        )));
    }
    let out_a = replay(a, seed, cap as usize, false)?;
    let out_b = replay(b, seed, cap as usize, false)?;
    let compared = out_a.events.len().min(out_b.events.len());
    let mut first = None;
    for i in 0..compared {
        if out_a.events[i] != out_b.events[i] {
            first = Some((out_a.events[i], out_b.events[i]));
            break;
        }
    }
    Ok(DiffReport {
        slots_a: out_a.slots_seen,
        slots_b: out_b.slots_seen,
        compared: compared as u64,
        first_divergence: first,
    })
}
