//! jle-lens CLI: record, replay, diff, and trace-check deterministic runs.
//!
//! ```text
//! jle-lens record --params FILE (--seed S | --trial K) --out PATH [--tail N]
//! jle-lens replay --flight PATH [--params FILE] [--timeline N] [--no-probes]
//!                 [--diff ENGINE[:DISCIPLINE]]
//! jle-lens replay --fingerprint HEX --trial K --cache-dir DIR [...]
//! jle-lens replay --params FILE (--seed S | --trial K) [...]
//! jle-lens trace-check PATH [--min-categories K] [--tolerance-us T]
//! ```
//!
//! `record` re-derives a run and freezes a self-contained flight
//! artifact (spec embedded). `replay` re-derives a recorded trial and
//! checks it bit-exactly against the artifact (`divergence: none` on
//! success — CI greps for that literal), printing an annotated slot
//! timeline with per-station protocol state transitions; `--diff`
//! replays the same trial on a second backend and pinpoints the first
//! diverging slot. `trace-check` validates an exported Chrome trace
//! (one trace id, unique spans, children nested in parents).

use jle_engine::RngDiscipline;
use jle_lens::{
    check_chrome_trace, diff, divergence, record, replay, Divergence, EngineKind, LensSpec,
    ReplayOutcome,
};
use jle_orchestrator::{ResultStore, WorkSpec};
use jle_telemetry::FlightRecord;
use serde::{Deserialize, Value};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  jle-lens record --params FILE (--seed S | --trial K) --out PATH [--tail N]\n  \
         jle-lens replay --flight PATH [--params FILE] [--timeline N] [--no-probes] [--diff ENGINE[:DISC]]\n  \
         jle-lens replay --fingerprint HEX --trial K --cache-dir DIR [--timeline N] [--no-probes] [--diff ...]\n  \
         jle-lens replay --params FILE (--seed S | --trial K) [--timeline N] [--no-probes] [--diff ...]\n  \
         jle-lens trace-check PATH [--min-categories K] [--tolerance-us T]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return usage(),
    };
    let result = match cmd {
        "record" => cmd_record(rest),
        "replay" => cmd_replay(rest),
        "trace-check" => cmd_trace_check(rest),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("jle-lens {cmd}: {e}");
            ExitCode::from(2)
        }
    }
}

/// Minimal flag cursor over the argument slice.
struct Flags<'a> {
    args: &'a [String],
    i: usize,
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Self {
        Flags { args, i: 0 }
    }

    fn next(&mut self) -> Option<&'a str> {
        let v = self.args.get(self.i).map(String::as_str);
        self.i += 1;
        v
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, String> {
        self.next().ok_or_else(|| format!("{flag} needs a value"))
    }
}

fn read_json(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
}

/// Parse a params file: either a bare parameter tree (has `kind`) or a
/// result-store `spec.json` (a canonicalized `WorkSpec` with a nested
/// `params`). Returns the tree plus the spec's base seed when present.
fn load_params(path: &str) -> Result<(Value, Option<u64>), String> {
    let v = read_json(path)?;
    if v.get("kind").is_some() {
        return Ok((v, None));
    }
    if v.get("params").is_some() {
        let spec = WorkSpec::from_json_value(&v).map_err(|e| format!("{path}: {e}"))?;
        return Ok((spec.params, Some(spec.base_seed)));
    }
    Err(format!("{path}: neither a params tree (`kind`) nor a work spec (`params`)"))
}

fn parse_spec(params: &Value) -> Result<LensSpec, String> {
    LensSpec::from_params(params).map_err(|e| e.to_string())
}

fn cmd_record(args: &[String]) -> Result<ExitCode, String> {
    let mut params_path = None;
    let mut seed = None;
    let mut trial = None;
    let mut out = None;
    let mut tail = 64usize;
    let mut f = Flags::new(args);
    while let Some(flag) = f.next() {
        match flag {
            "--params" => params_path = Some(f.value(flag)?.to_string()),
            "--seed" => seed = Some(f.value(flag)?.parse::<u64>().map_err(|e| e.to_string())?),
            "--trial" => trial = Some(f.value(flag)?.parse::<u64>().map_err(|e| e.to_string())?),
            "--out" => out = Some(f.value(flag)?.to_string()),
            "--tail" => tail = f.value(flag)?.parse::<usize>().map_err(|e| e.to_string())?,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let params_path = params_path.ok_or("record needs --params")?;
    let out = out.ok_or("record needs --out")?;
    let (params, base_seed) = load_params(&params_path)?;
    let seed = resolve_seed(seed, trial, base_seed)?;
    let spec = parse_spec(&params)?;
    let (rec, outcome) = record(&spec, seed, tail).map_err(|e| e.to_string())?;
    let json = serde_json::to_string_pretty(&rec).map_err(|e| format!("serialize record: {e}"))?;
    std::fs::write(&out, json + "\n").map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "recorded {} slots (kept last {}) of engine={} proto={} seed={} -> {}",
        outcome.slots_seen,
        outcome.events.len(),
        spec.engine.label(),
        spec.proto.label(),
        seed,
        out
    );
    Ok(ExitCode::SUCCESS)
}

/// The workspace seeding convention: trial k of a spec runs at
/// `base_seed + k`.
fn resolve_seed(
    seed: Option<u64>,
    trial: Option<u64>,
    base_seed: Option<u64>,
) -> Result<u64, String> {
    match (seed, trial) {
        (Some(s), None) => Ok(s),
        (None, Some(k)) => {
            let base = base_seed.ok_or("--trial needs a work spec carrying `base_seed`")?;
            Ok(base + k)
        }
        (Some(_), Some(_)) => Err("--seed and --trial are mutually exclusive".into()),
        (None, None) => Err("need --seed S or --trial K".into()),
    }
}

fn parse_diff_target(s: &str) -> Result<(EngineKind, RngDiscipline), String> {
    let (engine_name, disc_name) = match s.split_once(':') {
        Some((e, d)) => (e, Some(d)),
        None => (s, None),
    };
    let engine = EngineKind::parse(engine_name)
        .ok_or_else(|| format!("--diff: unknown engine `{engine_name}`"))?;
    let discipline = match disc_name {
        None | Some("shared") => RngDiscipline::Shared,
        Some("counter") => RngDiscipline::Counter,
        Some(other) => return Err(format!("--diff: unknown discipline `{other}`")),
    };
    Ok((engine, discipline))
}

fn cmd_replay(args: &[String]) -> Result<ExitCode, String> {
    let mut flight_path = None;
    let mut params_path = None;
    let mut fingerprint = None;
    let mut cache_dir = None;
    let mut seed = None;
    let mut trial = None;
    let mut timeline = 16usize;
    let mut probes = true;
    let mut diff_target = None;
    let mut f = Flags::new(args);
    while let Some(flag) = f.next() {
        match flag {
            "--flight" => flight_path = Some(f.value(flag)?.to_string()),
            "--params" => params_path = Some(f.value(flag)?.to_string()),
            "--fingerprint" => fingerprint = Some(f.value(flag)?.to_string()),
            "--cache-dir" => cache_dir = Some(f.value(flag)?.to_string()),
            "--seed" => seed = Some(f.value(flag)?.parse::<u64>().map_err(|e| e.to_string())?),
            "--trial" => trial = Some(f.value(flag)?.parse::<u64>().map_err(|e| e.to_string())?),
            "--timeline" => {
                timeline = f.value(flag)?.parse::<usize>().map_err(|e| e.to_string())?
            }
            "--no-probes" => probes = false,
            "--diff" => diff_target = Some(parse_diff_target(f.value(flag)?)?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }

    // Resolve (spec, seed, recorded artifact) from one of the sources.
    let mut recorded: Option<FlightRecord> = None;
    let (params, seed) = if let Some(path) = &flight_path {
        let rec =
            FlightRecord::from_json_value(&read_json(path)?).map_err(|e| format!("{path}: {e}"))?;
        let params = match (&params_path, &rec.replay_spec) {
            (Some(p), _) => load_params(p)?.0,
            (None, Some(spec)) => spec.clone(),
            (None, None) => {
                return Err(format!(
                    "{path} embeds no replay spec; pass --params (or --fingerprint/--cache-dir)"
                ))
            }
        };
        let seed = rec.seed;
        recorded = Some(rec);
        (params, seed)
    } else if let Some(hex) = &fingerprint {
        let dir = cache_dir.ok_or("--fingerprint needs --cache-dir")?;
        let store = ResultStore::open(&dir).map_err(|e| format!("open {dir}: {e}"))?;
        let (full, spec_value) = store
            .load_spec_info(hex)
            .ok_or_else(|| format!("no spec.json under {dir} matches fingerprint {hex}"))?;
        let spec = WorkSpec::from_json_value(&spec_value)
            .map_err(|e| format!("spec.json for {full}: {e}"))?;
        println!("fingerprint {full}: {}/{}", spec.experiment, spec.point);
        (spec.params, resolve_seed(seed, trial, Some(spec.base_seed))?)
    } else if let Some(path) = &params_path {
        let (params, base_seed) = load_params(path)?;
        let seed = resolve_seed(seed, trial, base_seed)?;
        (params, seed)
    } else {
        return Err("need --flight, --fingerprint, or --params".into());
    };

    let spec = parse_spec(&params)?;
    // Capture the whole run when checking against an artifact (so every
    // recorded slot index is addressable), just a tail otherwise.
    let capture = if recorded.is_some() {
        spec.max_slots.min(jle_lens::MAX_CAPTURE as u64) as usize
    } else {
        timeline.max(64)
    };
    let out = replay(&spec, seed, capture, probes).map_err(|e| e.to_string())?;
    print_summary(&spec, seed, &out);
    print_timeline(&out, timeline);

    let mut failed = false;
    if let Some(rec) = &recorded {
        let d = divergence(rec, &out);
        println!("divergence: {d}");
        failed = d != Divergence::None;
    }
    if let Some((engine, discipline)) = diff_target {
        let other = spec.with_engine(engine, discipline).map_err(|e| e.to_string())?;
        let report = diff(&spec, &other, seed).map_err(|e| e.to_string())?;
        match report.first_divergence {
            None if report.agree() => println!(
                "diff({} vs {}): backends agree bit-for-bit over {} slots",
                spec.engine.label(),
                other.engine.label(),
                report.compared
            ),
            None => {
                println!(
                    "diff({} vs {}): common prefix of {} slots agrees, but run lengths differ ({} vs {})",
                    spec.engine.label(),
                    other.engine.label(),
                    report.compared,
                    report.slots_a,
                    report.slots_b
                );
                failed = true;
            }
            Some((a, b)) => {
                println!(
                    "diff({} vs {}): first divergence at slot {} — tx={} rx={} jam={} vs tx={} rx={} jam={}",
                    spec.engine.label(),
                    other.engine.label(),
                    a.slot,
                    a.transmitters,
                    a.listeners,
                    a.jammed,
                    b.transmitters,
                    b.listeners,
                    b.jammed
                );
                failed = true;
            }
        }
    }
    Ok(if failed { ExitCode::FAILURE } else { ExitCode::SUCCESS })
}

fn print_summary(spec: &LensSpec, seed: u64, out: &ReplayOutcome) {
    let r = &out.report;
    println!(
        "replay: engine={} proto={} n={} seed={} slots={} winner={} resolved_at={} timed_out={}",
        spec.engine.label(),
        spec.proto.label(),
        spec.n,
        seed,
        out.slots_seen,
        r.winner.map(|w| w.to_string()).unwrap_or_else(|| "-".into()),
        r.resolved_at.map(|s| s.to_string()).unwrap_or_else(|| "-".into()),
        r.timed_out,
    );
    println!(
        "adversary: jammed {}/{} observed slots, budget spent {:.3}",
        out.jammed_total, out.slots_seen, r.adv_budget_spent
    );
}

fn print_timeline(out: &ReplayOutcome, timeline: usize) {
    if timeline == 0 || out.events.is_empty() {
        return;
    }
    let start = out.events.len().saturating_sub(timeline);
    println!(
        "timeline (last {} of {} captured slots):",
        out.events.len() - start,
        out.events.len()
    );
    println!("  {:>8}  {:>4} {:>4} {:>3}  state transitions", "slot", "tx", "rx", "jam");
    for ev in &out.events[start..] {
        let notes: Vec<String> = out
            .transitions
            .iter()
            .filter(|t| t.slot == ev.slot)
            .map(|t| match t.value {
                Some(v) => format!("{}:{}({v:.3})", t.station, t.state),
                None => format!("{}:{}", t.station, t.state),
            })
            .collect();
        println!(
            "  {:>8}  {:>4} {:>4} {:>3}  {}",
            ev.slot,
            ev.transmitters,
            ev.listeners,
            if ev.jammed { "*" } else { "." },
            notes.join(" ")
        );
    }
    let shown_from = out.events[start].slot;
    let n_transitions = out.transitions.len();
    let earlier = out.transitions.iter().filter(|t| t.slot < shown_from).count();
    if n_transitions > 0 {
        println!(
            "state transitions: {} recorded{}{}",
            n_transitions,
            if earlier > 0 {
                format!(" ({earlier} before the shown window)")
            } else {
                String::new()
            },
            if out.transitions_truncated { " [truncated]" } else { "" },
        );
    }
}

fn cmd_trace_check(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut min_categories = 0usize;
    let mut tolerance_us = 2_000u64;
    let mut f = Flags::new(args);
    while let Some(flag) = f.next() {
        match flag {
            "--min-categories" => {
                min_categories = f.value(flag)?.parse::<usize>().map_err(|e| e.to_string())?
            }
            "--tolerance-us" => {
                tolerance_us = f.value(flag)?.parse::<u64>().map_err(|e| e.to_string())?
            }
            other if path.is_none() && !other.starts_with("--") => path = Some(other.to_string()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let path = path.ok_or("trace-check needs a trace file path")?;
    let doc = read_json(&path)?;
    let report = check_chrome_trace(&doc, tolerance_us).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "trace-check {path}: {} spans, {} categories [{}], {} trace id(s), {} root(s), {} external parent link(s)",
        report.events,
        report.categories.len(),
        report.categories.join(", "),
        report.trace_ids.len(),
        report.roots,
        report.external_parents,
    );
    let mut failed = false;
    for v in &report.violations {
        eprintln!("violation: {v}");
        failed = true;
    }
    if report.events == 0 {
        eprintln!("violation: no complete spans in the document");
        failed = true;
    }
    if report.categories.len() < min_categories {
        eprintln!(
            "violation: {} span categories present, need at least {min_categories}",
            report.categories.len()
        );
        failed = true;
    }
    if failed {
        Ok(ExitCode::FAILURE)
    } else {
        println!("trace-check: ok");
        Ok(ExitCode::SUCCESS)
    }
}
