//! Structural validation of exported Chrome traces.
//!
//! The workspace's span recorder exports `chrome://tracing` documents
//! whose `args` carry the causal metadata the viewer ignores: a span id,
//! a parent span id (0 = root), and — on distributed paths — a 16-hex
//! trace id stamped from the submit-side [`jle_telemetry::TraceContext`].
//! This module checks the properties the tracing tentpole promises:
//!
//! * one trace id per document (the client's context survived admission,
//!   queueing, orchestration, and engine execution);
//! * span ids are unique and every `parent` reference either resolves in
//!   the document or is explicitly counted as external;
//! * resolved children nest inside their parents' time ranges, within a
//!   tolerance that absorbs the clock rebasing done when server spans
//!   are spliced into a client recorder.

use serde::Value;

/// Structural summary of one Chrome-trace document.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Complete (`ph == "X"`) events examined.
    pub events: usize,
    /// Distinct span categories, sorted.
    pub categories: Vec<String>,
    /// Distinct trace ids found in `args.trace`, sorted.
    pub trace_ids: Vec<String>,
    /// Spans with `parent == 0`.
    pub roots: usize,
    /// Spans whose parent id does not resolve in the document (legal
    /// for cross-process splices where only one side was exported).
    pub external_parents: usize,
    /// Structural violations found (empty ⇔ the document is sound).
    pub violations: Vec<String>,
}

impl TraceReport {
    /// Whether the document passed every structural check.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

struct Span {
    name: String,
    cat: String,
    ts: u64,
    dur: u64,
    id: u64,
    parent: u64,
    external: bool,
}

/// Validate a parsed Chrome-trace document (the JSON object form with a
/// `traceEvents` array). `tolerance_us` is the slack allowed on child
/// containment.
///
/// `Err` means the document is not a Chrome trace at all; a returned
/// [`TraceReport`] may still carry violations.
pub fn check_chrome_trace(doc: &Value, tolerance_us: u64) -> Result<TraceReport, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_seq)
        .ok_or_else(|| "document has no `traceEvents` array".to_string())?;
    let mut report = TraceReport::default();
    let mut spans: Vec<Span> = Vec::with_capacity(events.len());
    for (i, ev) in events.iter().enumerate() {
        let ph = ev.get("ph").and_then(Value::as_str).unwrap_or("");
        if ph != "X" {
            continue;
        }
        let field_u64 = |k: &str| ev.get(k).and_then(Value::as_u64);
        let args = ev.get("args");
        let span = Span {
            name: ev.get("name").and_then(Value::as_str).unwrap_or("").to_string(),
            cat: ev.get("cat").and_then(Value::as_str).unwrap_or("").to_string(),
            ts: field_u64("ts").unwrap_or(0),
            dur: field_u64("dur").unwrap_or(0),
            id: args.and_then(|a| a.get("span")).and_then(Value::as_u64).unwrap_or(0),
            parent: args.and_then(|a| a.get("parent")).and_then(Value::as_u64).unwrap_or(0),
            external: args.and_then(|a| a.get("xparent")).and_then(Value::as_bool).unwrap_or(false),
        };
        if span.name.is_empty() {
            report.violations.push(format!("event {i}: missing or empty `name`"));
        }
        if span.id == 0 {
            report.violations.push(format!("event {i} ({}): missing `args.span` id", span.name));
        }
        if let Some(trace) = args.and_then(|a| a.get("trace")).and_then(Value::as_str) {
            if !report.trace_ids.iter().any(|t| t == trace) {
                report.trace_ids.push(trace.to_string());
            }
        }
        if !span.cat.is_empty() && !report.categories.iter().any(|c| c == &span.cat) {
            report.categories.push(span.cat.clone());
        }
        spans.push(span);
    }
    report.events = spans.len();
    report.categories.sort();
    report.trace_ids.sort();
    if report.trace_ids.len() > 1 {
        report.violations.push(format!(
            "{} distinct trace ids in one document: {}",
            report.trace_ids.len(),
            report.trace_ids.join(", ")
        ));
    }

    let mut by_id = std::collections::BTreeMap::new();
    for s in &spans {
        if s.id != 0 && by_id.insert(s.id, (s.ts, s.dur)).is_some() {
            report.violations.push(format!("duplicate span id {} ({})", s.id, s.name));
        }
    }
    let tol = tolerance_us;
    for s in &spans {
        if s.parent == 0 {
            report.roots += 1;
            continue;
        }
        if s.external {
            // The parent id lives in another recorder's id space (an
            // un-spliced server export); a numeric match in this document
            // would be coincidence, so skip containment.
            report.external_parents += 1;
            continue;
        }
        if s.parent == s.id {
            report.violations.push(format!("span {} ({}) is its own parent", s.id, s.name));
            continue;
        }
        match by_id.get(&s.parent) {
            None => report.external_parents += 1,
            Some(&(pts, pdur)) => {
                let starts_ok = s.ts + tol >= pts;
                let ends_ok = s.ts + s.dur <= pts + pdur + tol;
                if !starts_ok || !ends_ok {
                    report.violations.push(format!(
                        "span {} ({}) [{}..{}] escapes parent {} [{}..{}] (tolerance {tol}µs)",
                        s.id,
                        s.name,
                        s.ts,
                        s.ts + s.dur,
                        s.parent,
                        pts,
                        pts + pdur,
                    ));
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jle_telemetry::{SpanRecorder, TraceContext};

    #[test]
    fn recorder_export_passes_the_checker() {
        let rec = SpanRecorder::with_trace(TraceContext::mint());
        {
            let outer = rec.span("client", "submit");
            let _inner = rec.child_span("engine", "run", outer.id());
        }
        let doc: Value = serde_json::from_str(&rec.to_chrome_trace()).unwrap();
        let report = check_chrome_trace(&doc, 0).unwrap();
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert_eq!(report.events, 2);
        assert_eq!(report.trace_ids.len(), 1);
        assert_eq!(report.roots, 1);
        assert_eq!(report.categories, vec!["client".to_string(), "engine".to_string()]);
    }

    #[test]
    fn spliced_cross_process_export_keeps_one_trace_and_nests() {
        // Server side records under the client's context, as sweepd does.
        let ctx = TraceContext::mint();
        let client = SpanRecorder::with_trace(ctx);
        let submit = client.span("client", "submit");
        let server = SpanRecorder::with_trace(ctx.with_parent(submit.id()));
        {
            let exec = server.span("sweepd", "execute");
            let _run = server.child_span("engine", "run", exec.id());
        }
        client.import_events(&server.export_events(), client.now_us());
        drop(submit);
        let doc: Value = serde_json::from_str(&client.to_chrome_trace()).unwrap();
        let report = check_chrome_trace(&doc, 2_000).unwrap();
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert_eq!(report.trace_ids.len(), 1, "one trace id end to end");
        assert_eq!(report.events, 3);
    }

    #[test]
    fn two_trace_ids_is_a_violation() {
        let a = SpanRecorder::with_trace(TraceContext::mint());
        drop(a.span("client", "one"));
        let b = SpanRecorder::with_trace(TraceContext::mint());
        drop(b.span("client", "two"));
        a.import_events(&b.export_events(), a.now_us());
        let doc: Value = serde_json::from_str(&a.to_chrome_trace()).unwrap();
        let report = check_chrome_trace(&doc, 0).unwrap();
        assert!(!report.ok());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(check_chrome_trace(&Value::Null, 0).is_err());
        assert!(check_chrome_trace(&Value::Map(vec![]), 0).is_err());
    }
}
