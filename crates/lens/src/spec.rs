//! Replayable run specifications: parameter tree → deterministic run.
//!
//! A [`LensSpec`] is the lens's contract with the rest of the workspace:
//! it names *exactly one* deterministic simulation — engine backend,
//! protocol, adversary, plans — such that `spec + seed` re-derives a
//! recorded trial bit-for-bit. Two tree shapes parse:
//!
//! * `kind == "cohort_election"` / `kind == "exact_election"` — the
//!   exact trees `jle-sweepd` caches under content fingerprints (see
//!   `jle_sweepd::work`). Parsing here is key-for-key identical to the
//!   server's, so any spec recovered from a result-store `spec.json`
//!   replays on the same engine path the server used. `exact_election`
//!   trees replay on the fast-exact path regardless of whether the
//!   server computed them per-trial or through the batched backend —
//!   the two are bit-identical per trial, which is exactly why the
//!   server caches them under one fingerprint.
//! * `kind == "election_run"` — the lens's superset: explicit engine
//!   selection (`cohort`/`exact`/`fast-exact`/`batch`/`multihop`), stop
//!   rules, noise, fault/churn plans, topologies, and RNG disciplines.
//!
//! Parsing is strict in the same way the server's is: an unrecognized key
//! anywhere in the tree is an error, never ignored — a replay that
//! silently dropped a knob would "reproduce" a different run than the one
//! recorded.

use jle_adversary::AdversarySpec;
use jle_engine::{
    ChurnPlan, CohortStations, ExactStations, FastExactStations, FastFaultyStations, FaultPlan,
    FaultyStations, MeshProtocol, MultihopStations, PerStation, Protocol, RngDiscipline, RunReport,
    SimConfig, SimCore, SlotObserver, StdMesh, StopRule,
};
use jle_protocols::{
    BackoffProtocol, ClusterElection, LeskProtocol, LesuProtocol, WillardProtocol,
};
use jle_radio::{CdModel, Topology};
use serde::{Deserialize, Serialize, Value};

/// Why a parameter tree could not be turned into a replayable run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// Well-formed but names something this lens cannot faithfully
    /// re-derive (unknown kind/engine/protocol, or an unrecognized key
    /// that may change behaviour).
    Unsupported(String),
    /// Malformed (missing or ill-typed required fields, impossible
    /// combinations like a fault plan on the cohort engine).
    Invalid(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Unsupported(msg) => write!(f, "unsupported spec: {msg}"),
            SpecError::Invalid(msg) => write!(f, "invalid spec: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Which simulation backend re-derives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Uniform-cohort engine (`run_cohort` path — what `jle-sweepd`
    /// executes for `cohort_election` trees).
    Cohort,
    /// Per-station exact engine ([`ExactStations`]; [`FaultyStations`]
    /// when a fault or churn plan is attached).
    Exact,
    /// Bitset fast path ([`FastExactStations`] / [`FastFaultyStations`]).
    FastExact,
    /// Batched lockstep backend (`BatchExactStations`). The batch engine
    /// is bit-identical per trial to the fast-exact path by contract
    /// (DESIGN.md §17), and it cannot host a per-slot observer — so a
    /// replay under this engine *dispatches onto the fast-exact
    /// stations*. A trial produced by the batched backend replays
    /// bit-exactly here; that is the contract, not a coincidence.
    Batch,
    /// Topology-aware multi-hop engine ([`MultihopStations`]).
    Multihop,
}

impl EngineKind {
    /// Parse the spec-tree name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "cohort" => Some(EngineKind::Cohort),
            "exact" => Some(EngineKind::Exact),
            "fast-exact" => Some(EngineKind::FastExact),
            "batch" => Some(EngineKind::Batch),
            "multihop" => Some(EngineKind::Multihop),
            _ => None,
        }
    }

    /// The spec-tree name (inverse of [`EngineKind::parse`]).
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Cohort => "cohort",
            EngineKind::Exact => "exact",
            EngineKind::FastExact => "fast-exact",
            EngineKind::Batch => "batch",
            EngineKind::Multihop => "multihop",
        }
    }
}

/// Which protocol every station runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProtoSpec {
    /// [`LeskProtocol`] with jamming tolerance `eps`.
    Lesk {
        /// The protocol's ε parameter.
        eps: f64,
    },
    /// [`LesuProtocol`].
    Lesu,
    /// [`BackoffProtocol`].
    Backoff,
    /// [`WillardProtocol`].
    Willard,
    /// [`ClusterElection`] (multi-hop engine only; runs one election per
    /// topology cluster).
    Cluster {
        /// The per-cluster LESK ε parameter.
        eps: f64,
    },
}

impl ProtoSpec {
    /// Human-readable protocol name for timeline headers.
    pub fn label(&self) -> &'static str {
        match self {
            ProtoSpec::Lesk { .. } => "lesk",
            ProtoSpec::Lesu => "lesu",
            ProtoSpec::Backoff => "backoff",
            ProtoSpec::Willard => "willard",
            ProtoSpec::Cluster { .. } => "cluster",
        }
    }
}

/// One fully-specified deterministic run (see the module docs).
#[derive(Debug, Clone)]
pub struct LensSpec {
    /// Backend that re-derives the run.
    pub engine: EngineKind,
    /// Station count.
    pub n: u64,
    /// Collision-detection model.
    pub cd: CdModel,
    /// Adversary specification.
    pub adv: AdversarySpec,
    /// Slot cap.
    pub max_slots: u64,
    /// Stop rule.
    pub stop: StopRule,
    /// Environmental noise probability.
    pub noise: f64,
    /// Protocol.
    pub proto: ProtoSpec,
    /// Fault plan (exact/fast-exact engines only).
    pub faults: Option<FaultPlan>,
    /// Churn plan, lowered onto the faulty backends via
    /// [`ChurnPlan::overlay`] (exact/fast-exact engines only).
    pub churn: Option<ChurnPlan>,
    /// Topology descriptor in CLI form (`complete`, `dense-linear:K,M`,
    /// `core-tail:C,T`, `unit-disk:N,R,SEED`; multihop engine only).
    pub topology: Option<String>,
    /// Multi-hop RNG discipline.
    pub discipline: RngDiscipline,
}

fn keys_of(v: &Value) -> Vec<&str> {
    v.as_map().map(|m| m.iter().map(|(k, _)| k.as_str()).collect()).unwrap_or_default()
}

fn check_keys(v: &Value, what: &str, allowed: &[&str]) -> Result<(), SpecError> {
    for k in keys_of(v) {
        if !allowed.contains(&k) {
            return Err(SpecError::Unsupported(format!(
                "{what}: unrecognized key `{k}` (the lens cannot guarantee a faithful replay)"
            )));
        }
    }
    Ok(())
}

fn req_u64(v: &Value, k: &str, what: &str) -> Result<u64, SpecError> {
    v.get(k)
        .and_then(Value::as_u64)
        .ok_or_else(|| SpecError::Invalid(format!("{what}: missing u64 `{k}`")))
}

fn req_f64(v: &Value, k: &str, what: &str) -> Result<f64, SpecError> {
    v.get(k)
        .and_then(Value::as_f64)
        .ok_or_else(|| SpecError::Invalid(format!("{what}: missing f64 `{k}`")))
}

fn parse_proto(proto: &Value, cluster_ok: bool) -> Result<ProtoSpec, SpecError> {
    let name = proto
        .get("proto")
        .and_then(Value::as_str)
        .ok_or_else(|| SpecError::Invalid("proto: missing string `proto`".into()))?;
    match name {
        "lesk" => {
            check_keys(proto, "proto:lesk", &["proto", "eps"])?;
            Ok(ProtoSpec::Lesk { eps: req_f64(proto, "eps", "proto:lesk")? })
        }
        "lesu" => {
            check_keys(proto, "proto:lesu", &["proto"])?;
            Ok(ProtoSpec::Lesu)
        }
        "backoff" => {
            check_keys(proto, "proto:backoff", &["proto"])?;
            Ok(ProtoSpec::Backoff)
        }
        "willard" => {
            check_keys(proto, "proto:willard", &["proto"])?;
            Ok(ProtoSpec::Willard)
        }
        "cluster" if cluster_ok => {
            check_keys(proto, "proto:cluster", &["proto", "eps"])?;
            Ok(ProtoSpec::Cluster { eps: req_f64(proto, "eps", "proto:cluster")? })
        }
        other => Err(SpecError::Unsupported(format!("unknown protocol `{other}`"))),
    }
}

fn parse_stop(s: &str) -> Result<StopRule, SpecError> {
    match s {
        "first-clean-single" => Ok(StopRule::FirstCleanSingle),
        "all-terminated" => Ok(StopRule::AllTerminated),
        "horizon" => Ok(StopRule::Horizon),
        other => Err(SpecError::Invalid(format!("unknown stop rule `{other}`"))),
    }
}

fn stop_label(stop: StopRule) -> &'static str {
    match stop {
        StopRule::FirstCleanSingle => "first-clean-single",
        StopRule::AllTerminated => "all-terminated",
        StopRule::Horizon => "horizon",
    }
}

/// Parse a CLI-form topology descriptor into a [`Topology`] plus the
/// natural cluster assignment, when the generator defines one.
///
/// `complete` yields [`Topology::Complete`] and no assignment.
pub fn parse_topology(spec: &str) -> Result<(Topology, Option<Vec<u32>>), SpecError> {
    if spec == "complete" {
        return Ok((Topology::Complete, None));
    }
    let (kind, rest) = spec
        .split_once(':')
        .ok_or_else(|| SpecError::Invalid(format!("topology: expected KIND:ARGS, got `{spec}`")))?;
    let nums: Vec<&str> = rest.split(',').collect();
    let int = |s: &str, what: &str| -> Result<u64, SpecError> {
        s.trim()
            .parse::<u64>()
            .map_err(|e| SpecError::Invalid(format!("topology {kind}: {what}: {e}")))
    };
    match kind {
        "dense-linear" => {
            if nums.len() != 2 {
                return Err(SpecError::Invalid(
                    "topology dense-linear:K,M takes two integers".into(),
                ));
            }
            let (k, m) = (int(nums[0], "K")?, int(nums[1], "M")?);
            if k == 0 || m == 0 || k > 4_096 || m > 4_096 {
                return Err(SpecError::Invalid(
                    "topology dense-linear: K and M must be in 1..=4096".into(),
                ));
            }
            let (topo, clusters) = Topology::dense_linear(k as u32, m as u32);
            Ok((topo, Some(clusters)))
        }
        "core-tail" => {
            if nums.len() != 2 {
                return Err(SpecError::Invalid("topology core-tail:C,T takes two integers".into()));
            }
            let (c, t) = (int(nums[0], "C")?, int(nums[1], "T")?);
            if c == 0 || c > 4_096 || t > 4_096 {
                return Err(SpecError::Invalid(
                    "topology core-tail: C must be in 1..=4096, T in 0..=4096".into(),
                ));
            }
            let (topo, clusters) = Topology::core_tail(c as u32, t as u32);
            Ok((topo, Some(clusters)))
        }
        "unit-disk" => {
            if nums.len() != 3 {
                return Err(SpecError::Invalid(
                    "topology unit-disk:N,R,SEED takes three values".into(),
                ));
            }
            let n = int(nums[0], "N")?;
            let r: f64 = nums[1]
                .trim()
                .parse()
                .map_err(|e| SpecError::Invalid(format!("topology unit-disk: R: {e}")))?;
            let seed = int(nums[2], "SEED")?;
            if n == 0 || n > 16_384 {
                return Err(SpecError::Invalid(
                    "topology unit-disk: N must be in 1..=16384".into(),
                ));
            }
            let topo = Topology::unit_disk(n, r, seed)
                .map_err(|e| SpecError::Invalid(format!("topology unit-disk: {e}")))?;
            Ok((topo, None))
        }
        other => Err(SpecError::Unsupported(format!("unknown topology kind `{other}`"))),
    }
}

impl LensSpec {
    /// Parse a parameter tree (either supported `kind`; module docs).
    pub fn from_params(params: &Value) -> Result<Self, SpecError> {
        let kind = params
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| SpecError::Invalid("params: missing string `kind`".into()))?;
        match kind {
            "cohort_election" => Self::from_cohort_params(params),
            "exact_election" => Self::from_exact_params(params),
            "election_run" => Self::from_run_params(params),
            other => Err(SpecError::Unsupported(format!("unknown work kind `{other}`"))),
        }
    }

    /// Parse the `jle-sweepd` `exact_election` cache tree (strictly,
    /// like the server). These trees are cached under the fast-exact
    /// engine salt whether the server executed them per-trial or
    /// through the batched backend, so the replay engine is
    /// [`EngineKind::FastExact`] — the path both producers are
    /// bit-identical to.
    fn from_exact_params(params: &Value) -> Result<Self, SpecError> {
        check_keys(params, "exact_election", &["kind", "n", "cd", "adv", "max_slots", "proto"])?;
        let n = req_u64(params, "n", "exact_election")?;
        let max_slots = req_u64(params, "max_slots", "exact_election")?;
        let cd_value = params
            .get("cd")
            .ok_or_else(|| SpecError::Invalid("exact_election: missing `cd`".into()))?;
        let cd = CdModel::from_json_value(cd_value)
            .map_err(|e| SpecError::Invalid(format!("exact_election: bad `cd`: {e}")))?;
        let adv_value = params
            .get("adv")
            .ok_or_else(|| SpecError::Invalid("exact_election: missing `adv`".into()))?;
        let adv = AdversarySpec::from_json_value(adv_value)
            .map_err(|e| SpecError::Invalid(format!("exact_election: bad `adv`: {e}")))?;
        let proto = params
            .get("proto")
            .ok_or_else(|| SpecError::Invalid("exact_election: missing `proto`".into()))?;
        Ok(LensSpec {
            engine: EngineKind::FastExact,
            n,
            cd,
            adv,
            max_slots,
            stop: StopRule::FirstCleanSingle,
            noise: 0.0,
            proto: parse_proto(proto, false)?,
            faults: None,
            churn: None,
            topology: None,
            discipline: RngDiscipline::Shared,
        })
    }

    /// Parse the `jle-sweepd` cache tree shape (strictly, like the server).
    fn from_cohort_params(params: &Value) -> Result<Self, SpecError> {
        check_keys(params, "cohort_election", &["kind", "n", "cd", "adv", "max_slots", "proto"])?;
        let n = req_u64(params, "n", "cohort_election")?;
        let max_slots = req_u64(params, "max_slots", "cohort_election")?;
        let cd_value = params
            .get("cd")
            .ok_or_else(|| SpecError::Invalid("cohort_election: missing `cd`".into()))?;
        let cd = CdModel::from_json_value(cd_value)
            .map_err(|e| SpecError::Invalid(format!("cohort_election: bad `cd`: {e}")))?;
        let adv_value = params
            .get("adv")
            .ok_or_else(|| SpecError::Invalid("cohort_election: missing `adv`".into()))?;
        let adv = AdversarySpec::from_json_value(adv_value)
            .map_err(|e| SpecError::Invalid(format!("cohort_election: bad `adv`: {e}")))?;
        let proto = params
            .get("proto")
            .ok_or_else(|| SpecError::Invalid("cohort_election: missing `proto`".into()))?;
        Ok(LensSpec {
            engine: EngineKind::Cohort,
            n,
            cd,
            adv,
            max_slots,
            stop: StopRule::FirstCleanSingle,
            noise: 0.0,
            proto: parse_proto(proto, false)?,
            faults: None,
            churn: None,
            topology: None,
            discipline: RngDiscipline::Shared,
        })
    }

    /// Parse the lens's extended tree shape.
    fn from_run_params(params: &Value) -> Result<Self, SpecError> {
        check_keys(
            params,
            "election_run",
            &[
                "kind",
                "engine",
                "n",
                "cd",
                "adv",
                "max_slots",
                "proto",
                "stop",
                "noise",
                "faults",
                "churn",
                "topology",
                "discipline",
            ],
        )?;
        let engine_name = params
            .get("engine")
            .and_then(Value::as_str)
            .ok_or_else(|| SpecError::Invalid("election_run: missing string `engine`".into()))?;
        let engine = EngineKind::parse(engine_name)
            .ok_or_else(|| SpecError::Unsupported(format!("unknown engine `{engine_name}`")))?;
        let n = req_u64(params, "n", "election_run")?;
        let max_slots = req_u64(params, "max_slots", "election_run")?;
        let cd_value = params
            .get("cd")
            .ok_or_else(|| SpecError::Invalid("election_run: missing `cd`".into()))?;
        let cd = CdModel::from_json_value(cd_value)
            .map_err(|e| SpecError::Invalid(format!("election_run: bad `cd`: {e}")))?;
        let adv_value = params
            .get("adv")
            .ok_or_else(|| SpecError::Invalid("election_run: missing `adv`".into()))?;
        let adv = AdversarySpec::from_json_value(adv_value)
            .map_err(|e| SpecError::Invalid(format!("election_run: bad `adv`: {e}")))?;
        let stop = match params.get("stop") {
            Some(v) => parse_stop(v.as_str().ok_or_else(|| {
                SpecError::Invalid("election_run: `stop` must be a string".into())
            })?)?,
            None => StopRule::FirstCleanSingle,
        };
        let noise = match params.get("noise") {
            Some(v) => v
                .as_f64()
                .ok_or_else(|| SpecError::Invalid("election_run: `noise` must be an f64".into()))?,
            None => 0.0,
        };
        if !(0.0..=1.0).contains(&noise) {
            return Err(SpecError::Invalid("election_run: `noise` must be in [0, 1]".into()));
        }
        let faults = match params.get("faults") {
            Some(v) => Some(
                FaultPlan::from_json_value(v)
                    .map_err(|e| SpecError::Invalid(format!("election_run: bad `faults`: {e}")))?,
            ),
            None => None,
        };
        let churn = match params.get("churn") {
            Some(v) => Some(
                ChurnPlan::from_json_value(v)
                    .map_err(|e| SpecError::Invalid(format!("election_run: bad `churn`: {e}")))?,
            ),
            None => None,
        };
        let topology = match params.get("topology") {
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| {
                        SpecError::Invalid("election_run: `topology` must be a string".into())
                    })?
                    .to_string(),
            ),
            None => None,
        };
        let discipline = match params.get("discipline") {
            Some(v) => match v.as_str() {
                Some("shared") => RngDiscipline::Shared,
                Some("counter") => RngDiscipline::Counter,
                _ => {
                    return Err(SpecError::Invalid(
                        "election_run: `discipline` must be \"shared\" or \"counter\"".into(),
                    ))
                }
            },
            None => RngDiscipline::Shared,
        };
        let cluster_ok = engine == EngineKind::Multihop;
        let proto = parse_proto(
            params
                .get("proto")
                .ok_or_else(|| SpecError::Invalid("election_run: missing `proto`".into()))?,
            cluster_ok,
        )?;
        let spec = LensSpec {
            engine,
            n,
            cd,
            adv,
            max_slots,
            stop,
            noise,
            proto,
            faults,
            churn,
            topology,
            discipline,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Cross-field consistency (impossible engine/knob combinations).
    fn validate(&self) -> Result<(), SpecError> {
        let has_plans = self.faults.is_some() || self.churn.is_some();
        match self.engine {
            EngineKind::Cohort => {
                if has_plans || self.topology.is_some() {
                    return Err(SpecError::Invalid(
                        "cohort engine takes no fault/churn plans or topology".into(),
                    ));
                }
            }
            EngineKind::Exact | EngineKind::FastExact | EngineKind::Batch => {
                if self.topology.is_some() {
                    return Err(SpecError::Invalid(format!(
                        "{} engine takes no topology (use engine=multihop)",
                        self.engine.label()
                    )));
                }
            }
            EngineKind::Multihop => {
                if has_plans {
                    return Err(SpecError::Invalid(
                        "multihop engine takes no fault/churn plans".into(),
                    ));
                }
                let desc = self.topology.as_deref().unwrap_or("complete");
                let (topo, _) = parse_topology(desc)?;
                topo.validate_for(self.n).map_err(|e| {
                    SpecError::Invalid(format!("topology does not fit n={}: {e}", self.n))
                })?;
            }
        }
        if matches!(self.proto, ProtoSpec::Cluster { .. }) && self.engine != EngineKind::Multihop {
            return Err(SpecError::Invalid("proto `cluster` requires engine=multihop".into()));
        }
        Ok(())
    }

    /// Serialize back to a parameter tree. Cohort-engine specs with all
    /// lens-only knobs at their defaults round-trip to the exact
    /// `cohort_election` shape `jle-sweepd` fingerprints, so a spec
    /// recovered from the result store re-emits its own cache key.
    pub fn to_params(&self) -> Value {
        let proto = match self.proto {
            ProtoSpec::Lesk { eps } => Value::Map(vec![
                ("proto".into(), Value::Str("lesk".into())),
                ("eps".into(), Value::F64(eps)),
            ]),
            ProtoSpec::Lesu => Value::Map(vec![("proto".into(), Value::Str("lesu".into()))]),
            ProtoSpec::Backoff => Value::Map(vec![("proto".into(), Value::Str("backoff".into()))]),
            ProtoSpec::Willard => Value::Map(vec![("proto".into(), Value::Str("willard".into()))]),
            ProtoSpec::Cluster { eps } => Value::Map(vec![
                ("proto".into(), Value::Str("cluster".into())),
                ("eps".into(), Value::F64(eps)),
            ]),
        };
        let cohort_shape = self.engine == EngineKind::Cohort
            && self.stop == StopRule::FirstCleanSingle
            && self.noise == 0.0;
        if cohort_shape {
            return Value::Map(vec![
                ("kind".into(), Value::Str("cohort_election".into())),
                ("n".into(), Value::U64(self.n)),
                ("cd".into(), self.cd.to_json_value()),
                ("adv".into(), self.adv.to_json_value()),
                ("max_slots".into(), Value::U64(self.max_slots)),
                ("proto".into(), proto),
            ]);
        }
        let mut map = vec![
            ("kind".into(), Value::Str("election_run".into())),
            ("engine".into(), Value::Str(self.engine.label().into())),
            ("n".into(), Value::U64(self.n)),
            ("cd".into(), self.cd.to_json_value()),
            ("adv".into(), self.adv.to_json_value()),
            ("max_slots".into(), Value::U64(self.max_slots)),
            ("stop".into(), Value::Str(stop_label(self.stop).into())),
            ("proto".into(), proto),
        ];
        if self.noise != 0.0 {
            map.push(("noise".into(), Value::F64(self.noise)));
        }
        if let Some(f) = &self.faults {
            map.push(("faults".into(), f.to_json_value()));
        }
        if let Some(c) = &self.churn {
            map.push(("churn".into(), c.to_json_value()));
        }
        if let Some(t) = &self.topology {
            map.push(("topology".into(), Value::Str(t.clone())));
        }
        if self.discipline == RngDiscipline::Counter {
            map.push(("discipline".into(), Value::Str("counter".into())));
        }
        Value::Map(map)
    }

    /// The same run re-targeted at a different backend (for `--diff`);
    /// re-validated, so e.g. moving a fault-plan run onto `multihop`
    /// fails loudly instead of replaying something else.
    pub fn with_engine(
        &self,
        engine: EngineKind,
        discipline: RngDiscipline,
    ) -> Result<Self, SpecError> {
        let mut spec = self.clone();
        spec.engine = engine;
        spec.discipline = discipline;
        if engine != EngineKind::Multihop {
            spec.topology = None;
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Build the per-station protocol factory for the single-channel
    /// engines.
    fn protocol_factory(&self) -> impl Fn(u64) -> Box<dyn Protocol> + Send + Sync + 'static {
        let proto = self.proto;
        move |_i| match proto {
            ProtoSpec::Lesk { eps } => Box::new(PerStation::new(LeskProtocol::new(eps))),
            ProtoSpec::Lesu => Box::new(PerStation::new(LesuProtocol::new())),
            ProtoSpec::Backoff => Box::new(PerStation::new(BackoffProtocol::new())),
            ProtoSpec::Willard => Box::new(PerStation::new(WillardProtocol::new())),
            ProtoSpec::Cluster { .. } => unreachable!("validated: cluster implies multihop"),
        }
    }

    /// The [`SimConfig`] for `seed` (the workspace convention is
    /// `seed = base_seed + trial_index`; the caller resolves that).
    pub fn config(&self, seed: u64) -> SimConfig {
        let mut config = SimConfig::new(self.n, self.cd)
            .with_seed(seed)
            .with_max_slots(self.max_slots)
            .with_stop(self.stop);
        if self.noise > 0.0 {
            config = config.with_noise(self.noise);
        }
        config
    }

    /// Re-derive the run for `seed` with `obs` attached.
    ///
    /// This constructs the same station sets the workspace's `run_*`
    /// entry points construct — same factories, same plan lowering
    /// ([`ChurnPlan::overlay`] onto a [`FaultPlan`]), same disciplines —
    /// so the report and the per-slot stream are bit-identical to the
    /// original unobserved run (observers are passive by the engine's
    /// golden-seed contract).
    pub fn run(&self, seed: u64, obs: &mut dyn SlotObserver) -> Result<RunReport, SpecError> {
        let config = self.config(seed);
        let report = match self.engine {
            EngineKind::Cohort => {
                let core = SimCore::new(&config, &self.adv);
                match self.proto {
                    ProtoSpec::Lesk { eps } => {
                        core.observe(obs).run(&mut CohortStations::new(LeskProtocol::new(eps)))
                    }
                    ProtoSpec::Lesu => {
                        core.observe(obs).run(&mut CohortStations::new(LesuProtocol::new()))
                    }
                    ProtoSpec::Backoff => {
                        core.observe(obs).run(&mut CohortStations::new(BackoffProtocol::new()))
                    }
                    ProtoSpec::Willard => {
                        core.observe(obs).run(&mut CohortStations::new(WillardProtocol::new()))
                    }
                    ProtoSpec::Cluster { .. } => {
                        unreachable!("validated: cluster implies multihop")
                    }
                }
            }
            // `Batch` dispatches onto the fast-exact stations: the batched
            // backend is bit-identical per trial by contract (DESIGN.md
            // §17) and cannot host an observer, so the fast path IS its
            // replay path.
            EngineKind::Exact | EngineKind::FastExact | EngineKind::Batch => {
                let plan = match (&self.faults, &self.churn) {
                    (None, None) => None,
                    (Some(f), None) => Some(f.clone()),
                    (f, Some(c)) => Some(c.overlay(f.as_ref().unwrap_or(&FaultPlan::empty()))),
                };
                match (self.engine, plan) {
                    (EngineKind::Exact, None) => {
                        let mut stations = ExactStations::new(&config, self.protocol_factory());
                        SimCore::new(&config, &self.adv).observe(obs).run(&mut stations)
                    }
                    (EngineKind::Exact, Some(plan)) => {
                        let mut stations =
                            FaultyStations::new(&config, &plan, self.protocol_factory());
                        SimCore::new(&config, &self.adv).observe(obs).run(&mut stations)
                    }
                    (EngineKind::FastExact | EngineKind::Batch, None) => {
                        let mut stations = FastExactStations::new(&config, self.protocol_factory());
                        SimCore::new(&config, &self.adv).observe(obs).run(&mut stations)
                    }
                    (EngineKind::FastExact | EngineKind::Batch, Some(plan)) => {
                        let mut stations =
                            FastFaultyStations::new(&config, &plan, self.protocol_factory());
                        SimCore::new(&config, &self.adv).observe(obs).run(&mut stations)
                    }
                    _ => unreachable!("match is over Exact | FastExact | Batch"),
                }
            }
            EngineKind::Multihop => {
                let desc = self.topology.as_deref().unwrap_or("complete");
                let (topo, natural_clusters) = parse_topology(desc)?;
                topo.validate_for(self.n).map_err(|e| {
                    SpecError::Invalid(format!("topology does not fit n={}: {e}", self.n))
                })?;
                match self.proto {
                    ProtoSpec::Cluster { eps } => {
                        let assign =
                            natural_clusters.unwrap_or_else(|| vec![0u32; self.n as usize]);
                        let factory = |i: u64| -> Box<dyn MeshProtocol> {
                            Box::new(ClusterElection::for_assignment(i, &assign, eps))
                        };
                        let mut stations = MultihopStations::new(&config, &topo, factory)
                            .with_discipline(self.discipline)
                            .with_clusters(&assign);
                        SimCore::new(&config, &self.adv).observe(obs).run(&mut stations)
                    }
                    _ => {
                        let single = self.protocol_factory();
                        let factory =
                            |i: u64| -> Box<dyn MeshProtocol> { Box::new(StdMesh::new(single(i))) };
                        let mut stations = MultihopStations::new(&config, &topo, factory)
                            .with_discipline(self.discipline);
                        SimCore::new(&config, &self.adv).observe(obs).run(&mut stations)
                    }
                }
            }
        };
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn cohort_params() -> Value {
        json!({
            "kind": "cohort_election",
            "n": 32u64,
            "cd": CdModel::Strong.to_json_value(),
            "adv": AdversarySpec::passive().to_json_value(),
            "max_slots": 100_000u64,
            "proto": {"proto": "lesk", "eps": 0.5f64},
        })
    }

    #[test]
    fn cohort_tree_parses_and_round_trips() {
        let spec = LensSpec::from_params(&cohort_params()).unwrap();
        assert_eq!(spec.engine, EngineKind::Cohort);
        assert_eq!(spec.n, 32);
        // Round-trip preserves the cache-compatible shape bit-for-bit
        // (canonicalized, since map order is not semantic).
        let back = jle_orchestrator::canonicalize(&spec.to_params());
        assert_eq!(back, jle_orchestrator::canonicalize(&cohort_params()));
    }

    #[test]
    fn unknown_keys_are_rejected_not_ignored() {
        let mut v = cohort_params();
        if let Value::Map(m) = &mut v {
            m.push(("warm_start".into(), Value::U64(1)));
        }
        assert!(matches!(LensSpec::from_params(&v), Err(SpecError::Unsupported(_))));
    }

    #[test]
    fn run_tree_round_trips_through_to_params() {
        let v = json!({
            "kind": "election_run",
            "engine": "multihop",
            "n": 6u64,
            "cd": CdModel::Strong.to_json_value(),
            "adv": AdversarySpec::passive().to_json_value(),
            "max_slots": 50_000u64,
            "stop": "all-terminated",
            "proto": {"proto": "cluster", "eps": 0.5f64},
            "topology": "dense-linear:3,2",
            "discipline": "counter",
        });
        let spec = LensSpec::from_params(&v).unwrap();
        let reparsed = LensSpec::from_params(&spec.to_params()).unwrap();
        assert_eq!(reparsed.engine, EngineKind::Multihop);
        assert_eq!(reparsed.discipline, RngDiscipline::Counter);
        assert_eq!(
            jle_orchestrator::canonicalize(&reparsed.to_params()),
            jle_orchestrator::canonicalize(&spec.to_params())
        );
    }

    #[test]
    fn impossible_combinations_fail_validation() {
        // Cluster protocol outside multihop.
        let v = json!({
            "kind": "election_run",
            "engine": "exact",
            "n": 8u64,
            "cd": CdModel::Strong.to_json_value(),
            "adv": AdversarySpec::passive().to_json_value(),
            "max_slots": 1000u64,
            "proto": {"proto": "cluster", "eps": 0.5f64},
        });
        assert!(LensSpec::from_params(&v).is_err());
        // Topology on the exact engine.
        let v = json!({
            "kind": "election_run",
            "engine": "exact",
            "n": 8u64,
            "cd": CdModel::Strong.to_json_value(),
            "adv": AdversarySpec::passive().to_json_value(),
            "max_slots": 1000u64,
            "proto": {"proto": "lesu"},
            "topology": "dense-linear:2,4",
        });
        assert!(LensSpec::from_params(&v).is_err());
        // Topology that does not fit n.
        let v = json!({
            "kind": "election_run",
            "engine": "multihop",
            "n": 5u64,
            "cd": CdModel::Strong.to_json_value(),
            "adv": AdversarySpec::passive().to_json_value(),
            "max_slots": 1000u64,
            "proto": {"proto": "lesu"},
            "topology": "dense-linear:3,2",
        });
        assert!(LensSpec::from_params(&v).is_err());
    }

    #[test]
    fn topology_parser_accepts_all_cli_forms() {
        assert!(matches!(parse_topology("complete").unwrap().0, Topology::Complete));
        let (_, clusters) = parse_topology("dense-linear:3,4").unwrap();
        assert_eq!(clusters.unwrap().len(), 12);
        let (_, clusters) = parse_topology("core-tail:4,3").unwrap();
        assert_eq!(clusters.unwrap().len(), 7);
        assert!(parse_topology("unit-disk:16,0.5,7").is_ok());
        assert!(parse_topology("moebius:4").is_err());
    }
}
