//! jle-lens: deterministic slot-level replay and trace validation.
//!
//! The debugging half of the workspace's observability story (the other
//! half — distributed span recording — lives in `jle-telemetry` and is
//! threaded through `jle-sweepd`). Everything here exploits one fact:
//! trials are pure functions of `(spec, seed)`, and the convention
//! `seed = base_seed + trial_index` is workspace-wide. So a flight
//! artifact, or a `(fingerprint, trial)` pair resolved against a result
//! store, is enough to re-derive any recorded run *bit-exactly* — with
//! arbitrarily heavier instrumentation attached than the original run
//! paid for.
//!
//! * [`spec`] — the replayable run description ([`LensSpec`]): parses
//!   both the `jle-sweepd` cache tree (`cohort_election`) and the lens's
//!   extended `election_run` shape, and dispatches onto the exact,
//!   fast-exact, faulty/churn, cohort, and multi-hop backends.
//! * [`replay`] — the capture layer ([`ReplayObserver`]), bit-exact
//!   [`divergence`] checking against [`jle_telemetry::FlightRecord`]
//!   artifacts, and backend-vs-backend [`diff`]ing that pinpoints the
//!   first diverging slot.
//! * [`tracecheck`] — structural validation of exported Chrome traces
//!   (one trace id end-to-end, unique span ids, children nested in
//!   parents).
//!
//! The `jle-lens` binary fronts all three: `record`, `replay`
//! (`--diff`), and `trace-check`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod replay;
pub mod spec;
pub mod tracecheck;

pub use replay::{
    diff, divergence, record, replay, DiffReport, Divergence, ReplayObserver, ReplayOutcome,
    Transition, MAX_CAPTURE, MAX_TRANSITIONS,
};
pub use spec::{parse_topology, EngineKind, LensSpec, ProtoSpec, SpecError};
pub use tracecheck::{check_chrome_trace, TraceReport};
