//! Flight-record → replay round-trips across every backend, plus
//! backend-vs-backend diff identities and the committed fixture guard.
//!
//! These pin the replay half of the observability contract: freezing a
//! run into a flight artifact and re-deriving it from `(spec, seed)`
//! reproduces the recorded slot events bit-for-bit — on the cohort,
//! exact, fast-exact, faulty (fault *and* churn plans), and multi-hop
//! engines — and `diff` reproduces the engines' known bit-identity
//! pairs.

use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
use jle_engine::{ChurnPlan, FaultPlan, RngDiscipline, StationFaults};
use jle_lens::{diff, divergence, record, replay, Divergence, EngineKind, LensSpec};
use jle_radio::CdModel;
use jle_telemetry::FlightRecord;
use serde::{Deserialize, Serialize, Value};
use serde_json::json;

fn sat_adv() -> Value {
    AdversarySpec::new(Rate::from_f64(0.5), 64, JamStrategyKind::Saturating).to_json_value()
}

fn run_params(engine: &str) -> Value {
    json!({
        "kind": "election_run",
        "engine": engine,
        "n": 8u64,
        "cd": CdModel::Strong.to_json_value(),
        "adv": sat_adv(),
        "max_slots": 20_000u64,
        "proto": {"proto": "lesk", "eps": 0.5f64},
    })
}

/// Record, serialize the artifact through JSON (as the CLI does), parse
/// it back, replay from the embedded spec, and demand bit-exactness.
fn assert_roundtrip(params: &Value, seed: u64) {
    let spec = LensSpec::from_params(params).expect("spec parses");
    let (rec, outcome) = record(&spec, seed, 64).expect("record runs");
    assert!(outcome.slots_seen > 0, "run played no slots");
    let text = serde_json::to_string_pretty(&rec).expect("artifact serializes");
    let rec = FlightRecord::from_json_value(
        &serde_json::from_str::<Value>(&text).expect("artifact re-parses"),
    )
    .expect("artifact deserializes");
    let respec =
        LensSpec::from_params(rec.replay_spec.as_ref().expect("spec embedded")).expect("re-parses");
    let capture = respec.max_slots.min(jle_lens::MAX_CAPTURE as u64) as usize;
    let out = replay(&respec, rec.seed, capture, true).expect("replay runs");
    assert_eq!(
        divergence(&rec, &out),
        Divergence::None,
        "replay must reproduce the recorded events bit-exactly"
    );
}

#[test]
fn cohort_roundtrip() {
    let params = json!({
        "kind": "cohort_election",
        "n": 32u64,
        "cd": CdModel::Strong.to_json_value(),
        "adv": sat_adv(),
        "max_slots": 100_000u64,
        "proto": {"proto": "lesk", "eps": 0.5f64},
    });
    assert_roundtrip(&params, 7);
}

#[test]
fn exact_roundtrip() {
    assert_roundtrip(&run_params("exact"), 7);
}

#[test]
fn fast_exact_roundtrip() {
    assert_roundtrip(&run_params("fast-exact"), 11);
}

#[test]
fn faulty_roundtrip() {
    // A crash-with-recovery plan routes the run onto FaultyStations.
    let plan = FaultPlan::new(3)
        .with_station(0, StationFaults::none().crash_with_recovery(40, 400))
        .with_station(3, StationFaults::none().crash(25));
    let mut params = run_params("exact");
    if let Value::Map(m) = &mut params {
        m.push(("faults".into(), plan.to_json_value()));
        m.push(("stop".into(), Value::Str("all-terminated".into())));
    }
    assert_roundtrip(&params, 13);
}

#[test]
fn churn_roundtrip_on_fast_faulty() {
    // A churn plan lowers onto FastFaultyStations via overlay().
    let churn = ChurnPlan::new(5).with_staggered_joins(8, 0.5, 200);
    let mut params = run_params("fast-exact");
    if let Value::Map(m) = &mut params {
        m.push(("churn".into(), churn.to_json_value()));
    }
    assert_roundtrip(&params, 17);
}

#[test]
fn multihop_cluster_roundtrip() {
    let params = json!({
        "kind": "election_run",
        "engine": "multihop",
        "n": 6u64,
        "cd": CdModel::Strong.to_json_value(),
        "adv": sat_adv(),
        "max_slots": 50_000u64,
        "stop": "all-terminated",
        "proto": {"proto": "cluster", "eps": 0.5f64},
        "topology": "dense-linear:3,2",
        "discipline": "counter",
    });
    assert_roundtrip(&params, 23);
}

#[test]
fn tampered_artifact_is_flagged_at_the_exact_slot() {
    let spec = LensSpec::from_params(&run_params("exact")).unwrap();
    let (mut rec, _) = record(&spec, 7, 64).unwrap();
    let mid = rec.events.len() / 2;
    rec.events[mid].transmitters += 1;
    let out = replay(&spec, 7, spec.max_slots as usize, false).unwrap();
    match divergence(&rec, &out) {
        Divergence::SlotMismatch { recorded, replayed } => {
            assert_eq!(recorded.slot, replayed.slot);
            assert_eq!(recorded.slot, rec.events[mid].slot);
        }
        other => panic!("expected SlotMismatch, got {other:?}"),
    }
}

#[test]
fn diff_reproduces_the_engine_identity_pairs() {
    // exact ≡ multihop(Complete, Shared); fast-exact ≡ multihop(Complete,
    // Counter) — the identities the multihop engine's own suite pins,
    // here rediscovered externally through the diff path.
    let exact = LensSpec::from_params(&run_params("exact")).unwrap();
    let mh_shared = exact.with_engine(EngineKind::Multihop, RngDiscipline::Shared).unwrap();
    let report = diff(&exact, &mh_shared, 7).unwrap();
    assert!(report.agree(), "exact vs multihop/shared diverged: {report:?}");
    assert!(report.compared > 0);

    let fast = LensSpec::from_params(&run_params("fast-exact")).unwrap();
    let mh_counter = fast.with_engine(EngineKind::Multihop, RngDiscipline::Counter).unwrap();
    let report = diff(&fast, &mh_counter, 7).unwrap();
    assert!(report.agree(), "fast-exact vs multihop/counter diverged: {report:?}");
}

#[test]
fn diff_localizes_genuine_backend_divergence() {
    // exact and fast-exact draw randomness in different disciplines, so
    // under a saturating jammer they part ways at some concrete slot;
    // diff must report a well-formed first divergence, never a panic.
    let exact = LensSpec::from_params(&run_params("exact")).unwrap();
    let fast = exact.with_engine(EngineKind::FastExact, RngDiscipline::Shared).unwrap();
    let report = diff(&exact, &fast, 7).unwrap();
    if let Some((a, b)) = report.first_divergence {
        assert_eq!(a.slot, b.slot);
        assert!(a != b);
    }
}

#[test]
fn batch_engine_roundtrip() {
    // The `batch` engine label parses, records, re-embeds itself in the
    // artifact, and replays bit-exactly (on the fast-exact stations).
    assert_roundtrip(&run_params("batch"), 19);
}

#[test]
fn batch_produced_trials_replay_bit_exactly_via_fast_exact() {
    // The cache round-trip the aliased engine salt promises: trials the
    // batched backend computed (and sweepd would cache under the
    // fast-exact fingerprint) re-derive bit-identically through the
    // lens's replay path — full RunReport equality, traces included.
    use jle_engine::{run_batch_exact, PerStation, Protocol, SimConfig};
    use jle_protocols::LeskProtocol;

    let params = run_params("batch");
    let spec = LensSpec::from_params(&params).expect("batch spec parses");
    assert_eq!(spec.engine, EngineKind::Batch);

    let adv = AdversarySpec::from_json_value(&sat_adv()).unwrap();
    let config = SimConfig::new(8, CdModel::Strong).with_max_slots(20_000);
    let seeds: Vec<u64> = (0..70).map(|t| 1000 + t).collect(); // K % 64 != 0
    let factory =
        |_i: u64| -> Box<dyn Protocol> { Box::new(PerStation::new(LeskProtocol::new(0.5))) };
    let batched = run_batch_exact(&config, &adv, &seeds, factory);
    assert_eq!(batched.len(), seeds.len());

    for (seed, report) in seeds.iter().zip(&batched) {
        let out = replay(&spec, *seed, 16, false).expect("replay runs");
        assert_eq!(
            &out.report, report,
            "batch-produced trial at seed {seed} must replay bit-exactly via fast-exact"
        );
    }
}

#[test]
fn sweepd_exact_election_tree_parses_onto_fast_exact() {
    // The cache trees sweepd fingerprints for `exact_election` work —
    // whether it executed them per-trial or batched — replay on the
    // fast-exact path, and unknown keys are refused, never ignored.
    let params = json!({
        "kind": "exact_election",
        "n": 12u64,
        "cd": CdModel::Strong.to_json_value(),
        "adv": sat_adv(),
        "max_slots": 4_000u64,
        "proto": {"proto": "willard"},
    });
    let spec = LensSpec::from_params(&params).expect("exact_election parses");
    assert_eq!(spec.engine, EngineKind::FastExact);
    assert_roundtrip(&params, 29);

    let mut poisoned = params.clone();
    if let Value::Map(m) = &mut poisoned {
        m.push(("batch_width".into(), Value::U64(64)));
    }
    assert!(
        LensSpec::from_params(&poisoned).is_err(),
        "unknown exact_election keys must be refused"
    );
}

#[test]
fn batch_engine_refuses_topology() {
    // Descriptive refusal, not a panic: batch is a single-channel alias.
    let mut params = run_params("batch");
    if let Value::Map(m) = &mut params {
        m.push(("topology".into(), Value::Str("dense-linear:4,2".into())));
    }
    let err = LensSpec::from_params(&params).expect_err("topology on batch must fail");
    assert!(err.to_string().contains("topology"), "unexpected error: {err}");
}

#[test]
fn committed_fixture_still_replays_bit_exactly() {
    // The fixture was recorded once and committed; any engine change
    // that shifts RNG consumption or slot accounting will break this.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/flight-snapshot-exact-seed7.json");
    let text = std::fs::read_to_string(path).expect("fixture present");
    let rec = FlightRecord::from_json_value(&serde_json::from_str::<Value>(&text).unwrap())
        .expect("fixture parses");
    let spec = LensSpec::from_params(rec.replay_spec.as_ref().expect("fixture embeds its spec"))
        .expect("fixture spec parses");
    let out = replay(&spec, rec.seed, spec.max_slots as usize, true).expect("replay runs");
    assert_eq!(divergence(&rec, &out), Divergence::None);
}
