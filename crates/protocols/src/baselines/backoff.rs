//! Oblivious cyclic-sweep election (classical baseline).
//!
//! Cycle `R = 1, 2, 3, …`; within cycle `R` spend one slot at each
//! probability `2^{-1}, 2^{-2}, …, 2^{-R}`. Some slot of a cycle with
//! `R ≥ log₂ n` has transmission probability ≈ `1/n` and yields a
//! `Single` with constant probability, so the protocol elects in
//! `O(log² n)` expected slots on a clean channel. It ignores the channel
//! history entirely — which makes it trivially *uniform* and trivially
//! *attackable*: an adversary that knows the schedule jams exactly the
//! useful slots (experiment E7).

use jle_engine::UniformProtocol;
use jle_radio::ChannelState;

/// Live sweep state.
#[derive(Debug, Clone)]
pub struct BackoffProtocol {
    cycle: u32,
    step: u32,
}

impl BackoffProtocol {
    /// Start at cycle 1.
    pub fn new() -> Self {
        BackoffProtocol { cycle: 1, step: 1 }
    }

    /// Current `(cycle, step)` — the slot transmits with `2^{-step}`.
    pub fn position(&self) -> (u32, u32) {
        (self.cycle, self.step)
    }
}

impl Default for BackoffProtocol {
    fn default() -> Self {
        Self::new()
    }
}

impl UniformProtocol for BackoffProtocol {
    fn tx_prob(&mut self, _slot: u64) -> f64 {
        crate::broadcast::tx_probability(self.step as f64)
    }

    fn on_state(&mut self, _slot: u64, _state: ChannelState) {
        // Oblivious: only the slot counter advances.
        if self.step >= self.cycle {
            self.cycle += 1;
            self.step = 1;
        } else {
            self.step += 1;
        }
    }

    fn estimate(&self) -> Option<f64> {
        Some(self.step as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jle_adversary::AdversarySpec;
    use jle_engine::{run_cohort, MonteCarlo, SimConfig};
    use jle_radio::CdModel;

    #[test]
    fn sweep_schedule() {
        let mut p = BackoffProtocol::new();
        let mut seq = Vec::new();
        for s in 0..10 {
            seq.push(p.position().1);
            p.on_state(s, ChannelState::Collision);
        }
        // cycles: [1], [1,2], [1,2,3], [1,2,3,4]
        assert_eq!(seq, vec![1, 1, 2, 1, 2, 3, 1, 2, 3, 4]);
    }

    #[test]
    fn elects_on_clean_channel() {
        let mc = MonteCarlo::new(30, 10);
        let ok = mc.success_rate(|seed| {
            let config =
                SimConfig::new(512, CdModel::Strong).with_seed(seed).with_max_slots(100_000);
            run_cohort(&config, &AdversarySpec::passive(), BackoffProtocol::new).leader_elected()
        });
        assert!(ok >= 0.95, "rate {ok}");
    }

    #[test]
    fn probability_ignores_channel() {
        let mut a = BackoffProtocol::new();
        let mut b = BackoffProtocol::new();
        for s in 0..20 {
            assert_eq!(a.tx_prob(s), b.tx_prob(s));
            a.on_state(s, ChannelState::Null);
            b.on_state(s, ChannelState::Collision);
        }
    }
}
