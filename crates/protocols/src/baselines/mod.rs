//! Baseline protocols the reproduction compares against.
//!
//! * [`ArssMacProtocol`] — a reimplementation of the jamming-robust MAC
//!   dynamics of Awerbuch, Richa, Scheideler, Schmid and Zhang (ACM TALG
//!   2014), the prior state of the art the paper improves on
//!   (`O(log⁴ n)` vs. LESK's `O(log n)` for constant ε).
//! * [`BackoffProtocol`] — a classical oblivious sweep election (à la
//!   Nakano–Olariu uniform protocols), fast without jamming, defenceless
//!   with it.
//! * [`WillardProtocol`] — Willard-style `O(log log n)` selection
//!   resolution via doubling + binary search on the estimate; the fastest
//!   clean-channel baseline and the most jamming-fragile one (every jam
//!   reads as a `Collision` and pushes its search astray).

pub mod arss_mac;
pub mod backoff;
pub mod willard;

pub use arss_mac::ArssMacProtocol;
pub use backoff::BackoffProtocol;
pub use willard::WillardProtocol;
