//! ARSS-style robust MAC (Awerbuch–Richa–Scheideler–Schmid–Zhang, TALG'14).
//!
//! The prior state of the art the paper measures itself against
//! (Section 1.3). The ARSS protocol ignores `Collision`s entirely —
//! "stations in their algorithm ignore all Collisions and the decisions
//! are made based only on Nulls and Singles" — and steers a per-station
//! access probability `p` with a multiplicative-weights rule plus an
//! adaptive time window `T_v`:
//!
//! * on `Null`: `p ← min((1+γ)·p, p_max)` and the idle timer resets;
//! * if no `Null` has been sensed for `T_v` consecutive slots:
//!   `p ← p/(1+γ)`, `T_v ← T_v + 2` (suspected jamming — back off);
//! * `γ = O(1/(log T + log log n))` is a *global* parameter the stations
//!   must know — precisely the knowledge the paper's LESU removes.
//!
//! This reimplementation follows the published dynamics with the authors'
//! `p_max = 1/24`; absolute constants were never reported, so experiment
//! E7 compares *shapes* (ARSS's proven `O(log⁴ n)` vs LESK's
//! `O(log n)`), not absolute slot counts. Selection ends at the first
//! clean `Single` like every other protocol here.

use jle_engine::UniformProtocol;
use jle_radio::ChannelState;

/// The authors' access-probability ceiling.
pub const P_MAX: f64 = 1.0 / 24.0;

/// Live ARSS MAC state.
#[derive(Debug, Clone)]
pub struct ArssMacProtocol {
    gamma: f64,
    p: f64,
    t_v: u64,
    slots_since_null: u64,
}

impl ArssMacProtocol {
    /// Create with explicit `γ`.
    ///
    /// # Panics
    /// Panics unless `0 < gamma <= 1`.
    pub fn new(gamma: f64) -> Self {
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0,1]");
        ArssMacProtocol { gamma, p: P_MAX, t_v: 1, slots_since_null: 0 }
    }

    /// The γ the original analysis prescribes for given `n` and `T`:
    /// `Θ(1/(log log n + log T))` (we use constant 1).
    pub fn recommended_gamma(n: u64, t_window: u64) -> f64 {
        let ll = (n.max(4) as f64).log2().log2();
        let lt = (t_window.max(2) as f64).log2();
        1.0 / (ll + lt)
    }

    /// Current access probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Current adaptive window `T_v`.
    pub fn t_v(&self) -> u64 {
        self.t_v
    }
}

impl UniformProtocol for ArssMacProtocol {
    fn tx_prob(&mut self, _slot: u64) -> f64 {
        self.p
    }

    fn on_state(&mut self, _slot: u64, state: ChannelState) {
        match state {
            ChannelState::Null => {
                self.p = (self.p * (1.0 + self.gamma)).min(P_MAX);
                self.slots_since_null = 0;
                self.t_v = self.t_v.saturating_sub(1).max(1);
            }
            ChannelState::Collision => {
                // Collisions are ignored except through the idle timer.
                self.slots_since_null += 1;
                if self.slots_since_null >= self.t_v {
                    self.p /= 1.0 + self.gamma;
                    self.t_v += 2;
                    self.slots_since_null = 0;
                }
            }
            ChannelState::Single => {}
        }
    }

    fn estimate(&self) -> Option<f64> {
        // Report -log2(p) so traces are comparable with LESK's u.
        Some(-self.p.log2())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
    use jle_engine::{run_cohort, MonteCarlo, SimConfig};
    use jle_radio::CdModel;

    #[test]
    fn null_raises_p_collision_run_lowers_it() {
        let mut m = ArssMacProtocol::new(0.5);
        let p0 = m.p();
        m.on_state(0, ChannelState::Null);
        assert_eq!(m.p(), P_MAX, "p is capped at p_max");
        // Force the idle-timer backoff: T_v = 1 after the Null reset.
        m.on_state(1, ChannelState::Collision);
        assert!(m.p() < p0, "idle timeout must lower p");
        assert_eq!(m.t_v(), 3);
        let p1 = m.p();
        // Next backoff needs 3 consecutive non-Null slots.
        m.on_state(2, ChannelState::Collision);
        m.on_state(3, ChannelState::Collision);
        assert_eq!(m.p(), p1);
        m.on_state(4, ChannelState::Collision);
        assert!(m.p() < p1);
    }

    #[test]
    fn recommended_gamma_shrinks_with_scale() {
        assert!(
            ArssMacProtocol::recommended_gamma(1 << 20, 1024)
                < ArssMacProtocol::recommended_gamma(16, 2)
        );
    }

    #[test]
    fn elects_on_clean_channel() {
        let n = 512u64;
        let mc = MonteCarlo::new(20, 60);
        let ok = mc.success_rate(|seed| {
            let config =
                SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(1_000_000);
            run_cohort(&config, &AdversarySpec::passive(), || {
                ArssMacProtocol::new(ArssMacProtocol::recommended_gamma(n, 1))
            })
            .leader_elected()
        });
        assert_eq!(ok, 1.0);
    }

    #[test]
    fn survives_saturating_jammer_eventually() {
        // ARSS is provably robust too — just slower than LESK.
        let n = 128u64;
        let t = 16u64;
        let spec = AdversarySpec::new(Rate::from_f64(0.5), t, JamStrategyKind::Saturating);
        let mc = MonteCarlo::new(10, 77);
        let ok = mc.success_rate(|seed| {
            let config =
                SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(5_000_000);
            run_cohort(&config, &spec, || {
                ArssMacProtocol::new(ArssMacProtocol::recommended_gamma(n, t))
            })
            .leader_elected()
        });
        assert!(ok >= 0.9, "rate {ok}");
    }

    #[test]
    #[should_panic(expected = "gamma must be in (0,1]")]
    fn rejects_bad_gamma() {
        let _ = ArssMacProtocol::new(0.0);
    }
}
