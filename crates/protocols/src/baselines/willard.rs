//! Willard-style log-logarithmic selection resolution.
//!
//! Willard (SIAM J. Comput. 1986) resolves selection in expected
//! `O(log log n)` slots with collision detection on a *clean* channel:
//! double the estimate until the channel falls silent, binary-search the
//! `Collision → Null` boundary, then dwell at the found estimate. Our
//! implementation is the natural uniform-protocol rendition:
//!
//! * **Doubling**: probe `u = 1, 2, 4, 8, …` (tx prob `2^{-u}`);
//!   `Collision` ⇒ estimate too low, double; `Null` ⇒ bracket found.
//! * **Binary search** on `[lo, hi]` until `hi − lo ≤ 1`.
//! * **Dwell** at the boundary estimate until a `Single` ends the run
//!   (with a slow *drift*: `Null` nudges the estimate down, `Collision`
//!   up, by 1 — without this the dwell phase could sit one off the
//!   optimum forever).
//!
//! Jamming breaks the search: every jammed probe reads `Collision` and
//! drives the estimate upward, so the protocol stalls at astronomically
//! small transmission probabilities (experiment E7 quantifies this).

use crate::broadcast::tx_probability;
use jle_engine::UniformProtocol;
use jle_radio::ChannelState;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WPhase {
    /// Doubling probes at `u = 2^k`.
    Doubling { k: u32 },
    /// Binary search of the Collision→Null boundary.
    Binary { lo: u64, hi: u64 },
    /// Dwell at the located estimate.
    Dwell { u: u64 },
}

/// Live Willard-style state.
#[derive(Debug, Clone)]
pub struct WillardProtocol {
    phase: WPhase,
}

/// Cap on the doubling exponent (tx prob `2^{-2^40}` is already 0).
const MAX_K: u32 = 40;

impl WillardProtocol {
    /// Start with the first probe at `u = 1`.
    pub fn new() -> Self {
        WillardProtocol { phase: WPhase::Doubling { k: 0 } }
    }

    fn current_u(&self) -> u64 {
        match self.phase {
            WPhase::Doubling { k } => 1u64 << k.min(MAX_K),
            WPhase::Binary { lo, hi } => (lo + hi) / 2,
            WPhase::Dwell { u } => u,
        }
    }

    /// Which phase the search is in: `"doubling"`, `"binary"`, `"dwell"`.
    pub fn phase_name(&self) -> &'static str {
        match self.phase {
            WPhase::Doubling { .. } => "doubling",
            WPhase::Binary { .. } => "binary",
            WPhase::Dwell { .. } => "dwell",
        }
    }
}

impl Default for WillardProtocol {
    fn default() -> Self {
        Self::new()
    }
}

impl UniformProtocol for WillardProtocol {
    fn tx_prob(&mut self, _slot: u64) -> f64 {
        tx_probability(self.current_u() as f64)
    }

    fn on_state(&mut self, _slot: u64, state: ChannelState) {
        let too_low = match state {
            ChannelState::Collision => true,
            ChannelState::Null => false,
            ChannelState::Single => return,
        };
        self.phase = match self.phase {
            WPhase::Doubling { k } => {
                if too_low {
                    WPhase::Doubling { k: (k + 1).min(MAX_K) }
                } else if k == 0 {
                    WPhase::Dwell { u: 1 }
                } else {
                    WPhase::Binary { lo: 1 << (k - 1), hi: 1 << k }
                }
            }
            WPhase::Binary { lo, hi } => {
                let mid = (lo + hi) / 2;
                let (lo, hi) = if too_low { (mid, hi) } else { (lo, mid) };
                if hi - lo <= 1 {
                    WPhase::Dwell { u: hi }
                } else {
                    WPhase::Binary { lo, hi }
                }
            }
            WPhase::Dwell { u } => {
                if too_low {
                    WPhase::Dwell { u: u + 1 }
                } else {
                    WPhase::Dwell { u: u.saturating_sub(1).max(1) }
                }
            }
        };
    }

    fn estimate(&self) -> Option<f64> {
        Some(self.current_u() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
    use jle_engine::{run_cohort, MonteCarlo, SimConfig};
    use jle_radio::CdModel;

    #[test]
    fn doubling_then_binary_then_dwell() {
        let mut p = WillardProtocol::new();
        assert_eq!(p.phase_name(), "doubling");
        assert_eq!(p.current_u(), 1);
        p.on_state(0, ChannelState::Collision);
        assert_eq!(p.current_u(), 2);
        p.on_state(1, ChannelState::Collision);
        assert_eq!(p.current_u(), 4);
        p.on_state(2, ChannelState::Null); // bracket [2, 4]
        assert_eq!(p.phase_name(), "binary");
        assert_eq!(p.current_u(), 3);
        p.on_state(3, ChannelState::Collision); // [3, 4] → done, hi = 4
        assert_eq!(p.phase_name(), "dwell");
        assert_eq!(p.current_u(), 4);
    }

    #[test]
    fn dwell_drift() {
        let mut p = WillardProtocol { phase: WPhase::Dwell { u: 5 } };
        p.on_state(0, ChannelState::Null);
        assert_eq!(p.current_u(), 4);
        p.on_state(1, ChannelState::Collision);
        assert_eq!(p.current_u(), 5);
        let mut q = WillardProtocol { phase: WPhase::Dwell { u: 1 } };
        q.on_state(0, ChannelState::Null);
        assert_eq!(q.current_u(), 1, "estimate floor is 1");
    }

    #[test]
    fn fast_on_clean_channel() {
        let mc = MonteCarlo::new(30, 90);
        let slots = mc.collect_f64(|seed| {
            let config =
                SimConfig::new(4096, CdModel::Strong).with_seed(seed).with_max_slots(100_000);
            let r = run_cohort(&config, &AdversarySpec::passive(), WillardProtocol::new);
            assert!(r.leader_elected());
            r.slots as f64
        });
        let mean = slots.iter().sum::<f64>() / slots.len() as f64;
        // log log n regime: tens of slots, not hundreds.
        assert!(mean < 120.0, "mean {mean}");
    }

    #[test]
    fn jamming_wrecks_the_search() {
        // At eps = 0.5 Willard's symmetric ±1 dwell drift happens to
        // balance a 50% jammer, but at eps = 0.2 the adversary owns 80%
        // of the slots: jams (read as Collisions) outnumber Nulls and the
        // estimate diverges upward. LESK's asymmetric −1/+ε/8 rule is
        // built for exactly this regime.
        let eps = 0.2;
        let spec = AdversarySpec::new(Rate::from_f64(eps), 16, JamStrategyKind::Saturating);
        let mc = MonteCarlo::new(15, 40);
        let willard_ok = mc.success_rate(|seed| {
            let config =
                SimConfig::new(256, CdModel::Strong).with_seed(seed).with_max_slots(100_000);
            run_cohort(&config, &spec, WillardProtocol::new).leader_elected()
        });
        let lesk_ok = mc.success_rate(|seed| {
            let config =
                SimConfig::new(256, CdModel::Strong).with_seed(seed).with_max_slots(100_000);
            run_cohort(&config, &spec, || crate::lesk::LeskProtocol::new(eps)).leader_elected()
        });
        assert!(lesk_ok >= 0.9, "LESK rate {lesk_ok}");
        assert!(
            lesk_ok > willard_ok,
            "LESK ({lesk_ok}) must beat Willard ({willard_ok}) under jamming"
        );
    }
}
