//! LESK — Leader Election in Strong-CD with Known ε (Algorithm 1).
//!
//! The paper's core protocol. Each station maintains a shared estimate
//! `u` of `log₂ n` and transmits with probability `2^{-u}` every slot:
//!
//! ```text
//! a ← 8/ε;  u ← 0
//! repeat
//!     state ← Broadcast(u)
//!     if state = Null      then u ← max(u − 1, 0)
//!     else if state = Collision then u ← u + 1/a
//! until state = Single
//! ```
//!
//! The asymmetry (−1 on `Null`, +ε/8 on `Collision`) is the jamming
//! defence: the adversary can only *add* collisions (worth `ε/8` each),
//! never fake a `Null` (worth −1), so each genuine silence neutralizes
//! ≈ 8/ε jammed slots. Theorem 2.6: a leader is elected in
//! `O(max{T, log n / (ε³ log(1/ε))})` slots w.h.p. against any adaptive
//! `(T, 1−ε)`-bounded adversary.
//!
//! LESK is *uniform*, so it runs on both engines; it implements
//! [`UniformProtocol`].

use crate::broadcast::tx_probability;
use jle_engine::UniformProtocol;
use jle_radio::ChannelState;

/// Live LESK state (shared by all stations of a cohort).
#[derive(Debug, Clone)]
pub struct LeskProtocol {
    eps: f64,
    /// `1/a = ε/8`: the per-`Collision` increment.
    increment: f64,
    /// The estimate `u` of `log₂ n`.
    u: f64,
    /// The construction-time `u`, restored by `reset()` so arena-recycled
    /// stations start exactly where a factory-fresh one would.
    initial_u: f64,
}

impl LeskProtocol {
    /// Create LESK with known ε ∈ (0, 1).
    ///
    /// # Panics
    /// Panics unless `0 < eps < 1`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1), got {eps}");
        LeskProtocol { eps, increment: eps / 8.0, u: 0.0, initial_u: 0.0 }
    }

    /// Create LESK starting from a non-default estimate (used by tests and
    /// the slot-taxonomy experiment to enter specific regimes quickly).
    pub fn with_initial_estimate(eps: f64, u: f64) -> Self {
        LeskProtocol::new(eps).starting_at(u)
    }

    /// Create LESK with a non-paper increment `ε/divisor` instead of the
    /// paper's `ε/8` (`a = 8/ε`). For the E20 ablation: the stability
    /// argument only needs the drift condition
    /// `(1−ε)·(ε/divisor) < ε·1`, i.e. `divisor > 1−ε`, but the
    /// counting lemmas' constants assume `a ≥ 8`.
    ///
    /// # Panics
    /// Panics unless `0 < eps < 1` and `divisor > 0`.
    pub fn with_increment_divisor(eps: f64, divisor: f64) -> Self {
        assert!(divisor > 0.0, "divisor must be positive");
        let mut p = LeskProtocol::new(eps);
        p.increment = eps / divisor;
        p
    }

    /// Builder: start the walk at estimate `u` (clamped at 0). Composes
    /// with the other constructors.
    pub fn starting_at(mut self, u: f64) -> Self {
        self.u = u.max(0.0);
        self.initial_u = self.u;
        self
    }

    /// The ε this instance was built with.
    #[inline]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The paper's `a = 8/ε`.
    #[inline]
    pub fn a(&self) -> f64 {
        8.0 / self.eps
    }

    /// Current estimate `u`.
    #[inline]
    pub fn u(&self) -> f64 {
        self.u
    }

    /// Apply one LESK update for an observed state. `Single` ends the
    /// protocol and carries no update.
    #[inline]
    pub fn update(&mut self, state: ChannelState) {
        match state {
            ChannelState::Null => self.u = (self.u - 1.0).max(0.0),
            ChannelState::Collision => self.u += self.increment,
            ChannelState::Single => {}
        }
    }
}

impl UniformProtocol for LeskProtocol {
    fn tx_prob(&mut self, _slot: u64) -> f64 {
        tx_probability(self.u)
    }

    fn on_state(&mut self, _slot: u64, state: ChannelState) {
        self.update(state);
    }

    fn estimate(&self) -> Option<f64> {
        Some(self.u)
    }

    fn state_probe(&self) -> Option<(&'static str, Option<f64>)> {
        Some(("electing", Some(self.u)))
    }

    fn reset(&mut self) -> bool {
        self.u = self.initial_u;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
    use jle_engine::{run_cohort, MonteCarlo, SimConfig};
    use jle_radio::CdModel;

    #[test]
    fn update_rule_matches_algorithm_1() {
        let mut p = LeskProtocol::new(0.5);
        assert_eq!(p.u(), 0.0);
        p.update(ChannelState::Null);
        assert_eq!(p.u(), 0.0, "u is clamped at 0");
        p.update(ChannelState::Collision);
        assert!((p.u() - 0.0625).abs() < 1e-12, "increment is eps/8 = 1/16");
        for _ in 0..16 {
            p.update(ChannelState::Collision);
        }
        assert!((p.u() - 17.0 * 0.0625).abs() < 1e-12);
        p.update(ChannelState::Null);
        assert!((p.u() - (17.0 * 0.0625 - 1.0)).abs() < 1e-12);
        let before = p.u();
        p.update(ChannelState::Single);
        assert_eq!(p.u(), before, "Single carries no update");
    }

    #[test]
    fn null_worth_eight_over_eps_collisions() {
        // The design intuition: one Null neutralizes a = 8/eps collisions.
        let mut p = LeskProtocol::new(0.25);
        for _ in 0..32 {
            p.update(ChannelState::Collision);
        }
        assert!((p.u() - 1.0).abs() < 1e-12, "32 collisions at eps=1/4 raise u by 1");
        p.update(ChannelState::Null);
        assert!(p.u().abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "eps must be in (0,1)")]
    fn rejects_eps_one() {
        let _ = LeskProtocol::new(1.0);
    }

    #[test]
    fn elects_quickly_without_adversary() {
        // n = 256: Theorem 2.6 predicts O(log n) slots for constant eps.
        let mc = MonteCarlo::new(50, 1000);
        let slots = mc.collect_f64(|seed| {
            let config =
                SimConfig::new(256, CdModel::Strong).with_seed(seed).with_max_slots(100_000);
            let r = run_cohort(&config, &AdversarySpec::passive(), || LeskProtocol::new(0.5));
            assert!(r.leader_elected(), "must elect, seed {seed}");
            r.slots as f64
        });
        let mean = slots.iter().sum::<f64>() / slots.len() as f64;
        // u must climb from 0 to ~8 in eps/8 = 1/16 steps: >= 128 slots,
        // and w.h.p. the election lands within a few hundred.
        assert!(mean >= 100.0, "mean {mean} too fast to be plausible");
        assert!(mean <= 2_000.0, "mean {mean} way above the O(log n) regime");
    }

    #[test]
    fn elects_under_saturating_jammer() {
        let eps = 0.5;
        let spec = AdversarySpec::new(Rate::from_f64(eps), 32, JamStrategyKind::Saturating);
        let mc = MonteCarlo::new(30, 77);
        let ok = mc.success_rate(|seed| {
            let config =
                SimConfig::new(128, CdModel::Strong).with_seed(seed).with_max_slots(1_000_000);
            run_cohort(&config, &spec, || LeskProtocol::new(eps)).leader_elected()
        });
        assert_eq!(ok, 1.0, "LESK must survive the saturating jammer");
    }

    #[test]
    fn estimate_tracks_log_n_eventually() {
        // After enough slots, u should hover near log2(n) (Section 2.2's
        // biased-random-walk argument). Run with a jammer that cannot
        // stop the drift and inspect the trace.
        let n = 1024u64;
        let config = SimConfig::new(n, CdModel::Strong)
            .with_seed(5)
            .with_max_slots(100_000)
            .with_trace(true);
        let r = run_cohort(&config, &AdversarySpec::passive(), || LeskProtocol::new(0.5));
        let trace = r.trace.unwrap();
        let last_u = *trace.estimates.last().unwrap();
        // At election time u is inside the paper's regular band
        // [u0 - log2(2 ln a), u0 + log2(sqrt a) + 1] (a = 16).
        let u0 = (n as f64).log2();
        let a = 16.0f64;
        assert!(
            last_u >= u0 - (2.0 * a.ln()).log2() - 1.0 && last_u <= u0 + 0.5 * a.log2() + 2.0,
            "final u = {last_u}, u0 = {u0}"
        );
    }

    #[test]
    fn with_initial_estimate_clamps() {
        let p = LeskProtocol::with_initial_estimate(0.5, -3.0);
        assert_eq!(p.u(), 0.0);
        let p = LeskProtocol::with_initial_estimate(0.5, 12.5);
        assert_eq!(p.u(), 12.5);
    }

    #[test]
    fn reset_restores_the_constructed_estimate() {
        let mut p = LeskProtocol::new(0.5).starting_at(6.0);
        for _ in 0..40 {
            p.update(ChannelState::Collision);
        }
        assert!(p.u() > 6.0);
        assert!(UniformProtocol::reset(&mut p));
        assert_eq!(p.u(), 6.0, "reset must return to the starting_at estimate");
        let mut q = LeskProtocol::new(0.5);
        q.update(ChannelState::Collision);
        assert!(UniformProtocol::reset(&mut q));
        assert_eq!(q.u(), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_state() -> impl Strategy<Value = ChannelState> {
        prop_oneof![
            Just(ChannelState::Null),
            Just(ChannelState::Collision),
            Just(ChannelState::Single),
        ]
    }

    proptest! {
        /// The estimate never goes negative and moves exactly per the
        /// Algorithm 1 rule under arbitrary channel sequences.
        #[test]
        fn update_rule_invariants(
            eps_pct in 1u32..100,
            states in proptest::collection::vec(arb_state(), 0..500),
        ) {
            let eps = eps_pct as f64 / 100.0;
            let mut p = LeskProtocol::new(eps);
            let mut model = 0.0f64;
            for &s in &states {
                p.update(s);
                match s {
                    ChannelState::Null => model = (model - 1.0).max(0.0),
                    ChannelState::Collision => model += eps / 8.0,
                    ChannelState::Single => {}
                }
                prop_assert!(p.u() >= 0.0);
                prop_assert!((p.u() - model).abs() < 1e-9);
            }
        }

        /// tx probability is 2^-u, monotone decreasing in u.
        #[test]
        fn tx_prob_tracks_estimate(collisions in 0usize..500) {
            let mut p = LeskProtocol::new(0.5);
            let mut last = p.tx_prob(0);
            prop_assert_eq!(last, 1.0);
            for i in 0..collisions {
                p.on_state(i as u64, ChannelState::Collision);
                let now = p.tx_prob(i as u64 + 1);
                prop_assert!(now <= last);
                prop_assert!((now - (-p.u()).exp2()).abs() < 1e-12);
                last = now;
            }
        }
    }
}
