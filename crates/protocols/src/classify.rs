//! The slot taxonomy of the LESK analysis (Section 2.2).
//!
//! The proof of Theorem 2.6 partitions the slots of a run by the estimate
//! `u` at the slot's start and the channel outcome:
//!
//! | class | condition |
//! |---|---|
//! | `E`  | jammed by the adversary |
//! | `IS` (irregular silence)   | `u ≤ u₀ − log₂(2 ln a)` and `Null` |
//! | `IC` (irregular collision) | `u ≥ u₀ + ½·log₂ a` and unjammed `Collision` |
//! | `CS` (correcting silence)  | `u ≥ u₀ + ½·log₂ a + 1` and `Null` |
//! | `CC` (correcting collision)| `u ≤ u₀ − log₂(2 ln a)` and unjammed `Collision` |
//! | `R`  (regular)             | everything else |
//!
//! with `u₀ = log₂ n`, `a = 8/ε`. Lemma 2.3 relates the counters
//! (`CS ≤ (IC+E)/a`, `CC ≤ a·IS + a·u₀`), Lemma 2.5 bounds `IS` and `IC`
//! w.h.p., and Lemma 2.4 gives each regular slot a `Single` probability
//! of at least `ln(a)/a²`. Experiment E11 recomputes all of this from
//! recorded traces.

use jle_engine::{SlotActions, SlotObserver};
use jle_radio::{ChannelState, SlotTruth, Trace};
use serde::{Deserialize, Serialize};

/// Per-class slot counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotTaxonomy {
    /// Irregular silences.
    pub is_count: u64,
    /// Irregular collisions.
    pub ic_count: u64,
    /// Correcting silences.
    pub cs_count: u64,
    /// Correcting collisions.
    pub cc_count: u64,
    /// Adversary-jammed slots.
    pub e_count: u64,
    /// Regular slots.
    pub r_count: u64,
    /// The terminating `Single` (and any stray singles), kept separate.
    pub single_count: u64,
}

impl jle_engine::SlotCost for SlotTaxonomy {
    fn simulated_slots(&self) -> u64 {
        self.total()
    }
}

/// The `u`-thresholds of the Section 2.2 classification for a given
/// `(n, ε)`: `(low, high_ic, high_cs)`.
fn thresholds(n: u64, eps: f64) -> (f64, f64, f64) {
    let u0 = (n.max(2) as f64).log2();
    let a = 8.0 / eps;
    let low = u0 - (2.0 * a.ln()).log2();
    let high_ic = u0 + 0.5 * a.log2();
    (low, high_ic, high_ic + 1.0)
}

impl SlotTaxonomy {
    /// Total classified slots.
    pub fn total(&self) -> u64 {
        self.is_count
            + self.ic_count
            + self.cs_count
            + self.cc_count
            + self.e_count
            + self.r_count
            + self.single_count
    }

    /// Classify one slot given the estimate `u` at its start.
    fn record(
        &mut self,
        state: ChannelState,
        jammed: bool,
        u: f64,
        low: f64,
        hi_ic: f64,
        hi_cs: f64,
    ) {
        if jammed {
            self.e_count += 1;
            return;
        }
        match state {
            ChannelState::Single => self.single_count += 1,
            ChannelState::Null if u <= low => self.is_count += 1,
            ChannelState::Null if u >= hi_cs => self.cs_count += 1,
            ChannelState::Collision if u >= hi_ic => self.ic_count += 1,
            ChannelState::Collision if u <= low => self.cc_count += 1,
            _ => self.r_count += 1,
        }
    }

    /// Classify every slot of a recorded LESK trace.
    ///
    /// The trace must carry the per-slot estimates (`record_trace` with a
    /// protocol exposing `estimate()`), which hold the value of `u` *at
    /// the start* of each slot.
    ///
    /// # Panics
    /// Panics if the trace has no estimate series.
    pub fn from_trace(trace: &Trace, n: u64, eps: f64) -> Self {
        assert_eq!(trace.estimates.len(), trace.len(), "trace must carry one estimate per slot");
        let (low, high_ic, high_cs) = thresholds(n, eps);
        let mut tax = SlotTaxonomy::default();
        for (slot, u) in trace.iter().zip(trace.estimates.iter().copied()) {
            tax.record(slot.state(), slot.jammed(), u, low, high_ic, high_cs);
        }
        tax
    }

    /// Lemma 2.5's w.h.p. ceiling for `IS`: `2t/a²` (with slack factor 1).
    pub fn is_bound(t: u64, eps: f64) -> f64 {
        let a = 8.0 / eps;
        2.0 * t as f64 / (a * a)
    }

    /// Lemma 2.5's w.h.p. ceiling for `IC`: `2t/a`.
    pub fn ic_bound(t: u64, eps: f64) -> f64 {
        let a = 8.0 / eps;
        2.0 * t as f64 / a
    }

    /// Lemma 2.3 point 4: `CS ≤ (IC + E)/a`.
    pub fn cs_bound(&self, eps: f64) -> f64 {
        let a = 8.0 / eps;
        (self.ic_count + self.e_count) as f64 / a
    }

    /// Lemma 2.3 point 5: `CC ≤ a·IS + a·u₀`.
    pub fn cc_bound(&self, n: u64, eps: f64) -> f64 {
        let a = 8.0 / eps;
        a * self.is_count as f64 + a * (n.max(2) as f64).log2()
    }
}

/// Live taxonomy classification as a [`SlotObserver`] layer.
///
/// Classifies each slot as the engine plays it — same partition as
/// [`SlotTaxonomy::from_trace`], proven equal by test — so a
/// multi-million-slot run gets its taxonomy without recording (and
/// holding) a trace. Attach with `SimCore::observe`; the observer asks
/// for the per-slot estimate ([`SlotObserver::wants_estimate`]), which is
/// the LESK `u` at the *start* of the slot. Slots where the protocol
/// exposes no estimate fall into the regular class `R` (no threshold can
/// fire without a `u`).
#[derive(Debug)]
pub struct TaxonomyObserver {
    low: f64,
    high_ic: f64,
    high_cs: f64,
    tax: SlotTaxonomy,
}

impl TaxonomyObserver {
    /// A live classifier for a run of `n` stations against an `ε`-bounded
    /// adversary.
    pub fn new(n: u64, eps: f64) -> Self {
        let (low, high_ic, high_cs) = thresholds(n, eps);
        TaxonomyObserver { low, high_ic, high_cs, tax: SlotTaxonomy::default() }
    }

    /// The counters accumulated so far.
    pub fn taxonomy(&self) -> SlotTaxonomy {
        self.tax
    }
}

impl SlotObserver for TaxonomyObserver {
    fn wants_estimate(&self) -> bool {
        true
    }

    fn on_slot(&mut self, _: u64, truth: &SlotTruth, _: &SlotActions, estimate: Option<f64>) {
        let u = estimate.unwrap_or(f64::NAN); // NaN compares false: class R
        self.tax.record(truth.observed(), truth.jammed, u, self.low, self.high_ic, self.high_cs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jle_radio::SlotTruth;

    fn mk_trace(entries: &[(u64, bool, f64)]) -> Trace {
        // (transmitters, jammed, u)
        let mut t = Trace::default();
        for &(k, jam, u) in entries {
            t.push_with_estimate(&SlotTruth::new(k, jam), u);
        }
        t
    }

    #[test]
    fn classification_by_definition() {
        // n = 256 → u0 = 8, eps = 0.5 → a = 16:
        // low = 8 − log2(2 ln 16) ≈ 8 − 2.471 = 5.529
        // high_ic = 8 + 2 = 10, high_cs = 11.
        let n = 256;
        let eps = 0.5;
        let trace = mk_trace(&[
            (0, false, 3.0),  // Null at low u → IS
            (0, false, 12.0), // Null at very high u → CS
            (0, false, 8.0),  // Null in band → R
            (5, false, 12.0), // Collision at high u → IC
            (5, false, 10.5), // Collision at u in [10, 11) → IC (>= high_ic)
            (5, false, 3.0),  // Collision at low u → CC
            (5, false, 8.0),  // Collision in band → R
            (0, true, 8.0),   // jammed → E regardless
            (1, true, 12.0),  // jammed single → E
            (1, false, 8.0),  // clean Single
        ]);
        let tax = SlotTaxonomy::from_trace(&trace, n, eps);
        assert_eq!(tax.is_count, 1);
        assert_eq!(tax.cs_count, 1);
        assert_eq!(tax.ic_count, 2);
        assert_eq!(tax.cc_count, 1);
        assert_eq!(tax.e_count, 2);
        assert_eq!(tax.r_count, 2);
        assert_eq!(tax.single_count, 1);
        assert_eq!(tax.total(), 10);
    }

    #[test]
    fn every_slot_classified_exactly_once() {
        // Lemma 2.3 point 1: the classes partition the slots.
        let entries: Vec<(u64, bool, f64)> =
            (0..1000).map(|i| ((i % 7) as u64, i % 11 == 0, (i % 17) as f64)).collect();
        let trace = mk_trace(&entries);
        let tax = SlotTaxonomy::from_trace(&trace, 256, 0.5);
        assert_eq!(tax.total(), 1000);
    }

    #[test]
    fn bounds_are_positive_and_scale() {
        assert!(SlotTaxonomy::is_bound(1000, 0.5) > 0.0);
        assert!(SlotTaxonomy::ic_bound(1000, 0.5) > SlotTaxonomy::is_bound(1000, 0.5));
        let tax = SlotTaxonomy { ic_count: 16, e_count: 16, is_count: 2, ..Default::default() };
        assert!((tax.cs_bound(0.5) - 2.0).abs() < 1e-12);
        assert!(tax.cc_bound(256, 0.5) >= 16.0 * 2.0);
    }

    #[test]
    fn live_observer_matches_trace_classification() {
        // The same run, classified both ways: live (observer layer) and
        // post-hoc (recorded trace) must agree exactly.
        use crate::lesk::LeskProtocol;
        use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
        use jle_engine::{CohortStations, SimConfig, SimCore};
        use jle_radio::CdModel;

        let eps = 0.5;
        let n = 256u64;
        let spec = AdversarySpec::new(Rate::from_f64(eps), 16, JamStrategyKind::Saturating);
        let config = SimConfig::new(n, CdModel::Strong)
            .with_seed(1312)
            .with_max_slots(50_000)
            .with_trace(true);
        let mut live = TaxonomyObserver::new(n, eps);
        let mut stations = CohortStations::new(LeskProtocol::new(eps));
        let report = SimCore::new(&config, &spec).observe(&mut live).run(&mut stations);
        let from_trace = SlotTaxonomy::from_trace(&report.trace.expect("trace requested"), n, eps);
        assert_eq!(live.taxonomy(), from_trace);
        assert_eq!(live.taxonomy().total(), report.slots);
        assert!(live.taxonomy().e_count > 0, "the jammer must show up in class E");
    }

    #[test]
    fn observer_without_estimates_classifies_regular() {
        let mut obs = TaxonomyObserver::new(256, 0.5);
        let actions = jle_engine::SlotActions::default();
        obs.on_slot(0, &SlotTruth::new(0, false), &actions, None);
        obs.on_slot(1, &SlotTruth::new(3, false), &actions, None);
        obs.on_slot(2, &SlotTruth::new(0, true), &actions, None);
        let tax = obs.taxonomy();
        assert_eq!(tax.r_count, 2, "no estimate: thresholds cannot fire");
        assert_eq!(tax.e_count, 1, "jamming needs no estimate");
    }

    #[test]
    #[should_panic(expected = "one estimate per slot")]
    fn rejects_trace_without_estimates() {
        let mut t = Trace::default();
        t.push(&SlotTruth::new(0, false));
        let _ = SlotTaxonomy::from_trace(&t, 16, 0.5);
    }
}
