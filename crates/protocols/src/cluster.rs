//! Cluster elections over multi-hop topologies: LESK per cluster plus an
//! inter-cluster notification/merge layer.
//!
//! The paper elects one leader on one shared channel. On a multi-hop
//! [`Topology`](jle_radio::Topology) partitioned into clusters, the same
//! machinery runs *per cluster*, concurrently, over each node's local
//! channel, and a second layer floods the claimed leaders' identities so
//! the whole network converges on a single network-wide leader — the
//! minimum station id among all cluster leaders.
//!
//! # The state machine
//!
//! Every station runs [`ClusterElection`], a [`MeshProtocol`] with three
//! phases:
//!
//! * **Elect** — the paper's LESK walk ([`LeskProtocol`]), transmitting a
//!   *candidate* message with probability `2^{-u}`. Foreign-cluster
//!   singles and inter-cluster spread traffic count as `Collision` for
//!   the walk: to this cluster's election, neighbors in other clusters
//!   are just one more source of interference, exactly like jamming —
//!   which is why the LESK drift argument still applies. Leadership is
//!   claimed on the paper's evidence (strong CD: seeing one's *own*
//!   `Single`), or on two weaker confirmations that work without
//!   transmitter-side CD: hearing a message that **echoes** this
//!   station's id (a neighbor names the last candidate it heard), or
//!   hearing an announce that already names this station as its
//!   cluster's leader (a neighbor adopted it first).
//! * **Spread** — once the station knows its cluster's leader (claimed
//!   it, or adopted a heard one), it transmits *announce* messages with
//!   a constant probability, carrying `(cluster, leader, best)` where
//!   `best` is the smallest cluster-leader id it has heard of. Announces
//!   merge by minimum: concurrent claims within one cluster (possible on
//!   multi-hop interference graphs, where two members can perceive
//!   different clean singles) resolve to the smaller id, and the loser
//!   abdicates. `best` floods across cluster borders through gateway
//!   nodes, so every station's believed network leader converges to the
//!   global minimum claimant, who is minimal in its own cluster and
//!   therefore never abdicates.
//! * **Done** — after [`quiet_target`](ClusterElection::with_quiet_target)
//!   consecutive slots in which nothing improved, the station powers
//!   down. Terminal status is [`Status::Leader`] iff the station's
//!   believed network leader is itself.
//!
//! # Collision-detection models
//!
//! Strong CD claims directly; weak CD relies on echo/adoption (its
//! transmitters only see [`Observation::TxAssumedCollision`]). Under
//! no-CD, listeners cannot tell `Null` from `Collision`, which would
//! break LESK's asymmetric walk (every quiet slot would push `u` up
//! forever); the first [`Observation::NoCd`] observation therefore
//! switches the elect phase to a fixed transmission probability, which
//! elects small clusters reliably but has no jamming-resistance
//! guarantee — consistent with the paper, whose no-CD results need
//! different machinery (LESU / `Notification`). A station alone in its
//! cluster ([`ClusterElection::alone`]) is its cluster's leader by
//! definition and starts in **Spread** — with no same-cluster peer there
//! is nobody to elect against, and under weak/no CD nobody to confirm a
//! claim.
//!
//! Message payloads pack the fields into the engine's 64-bit payload
//! word (21 bits per field), so station ids and cluster indices must be
//! below [`FIELD_NONE`] (~2M); the per-station multi-hop backend is
//! O(degree) per slot, so that bound is not the binding constraint.

use crate::broadcast::tx_probability;
use crate::lesk::LeskProtocol;
use jle_engine::{Action, MeshMessage, MeshProtocol, MeshStatus, Status};
use jle_radio::{ChannelState, Observation};
use rand::{Rng, RngCore};

/// Field width of the packed message fields (station id, cluster index,
/// best-leader id): 3 fields + 1 tag bit = 64.
pub const FIELD_BITS: u32 = 21;
/// Sentinel for "no value" in a packed field; also the exclusive upper
/// bound on station ids and cluster indices in cluster elections.
pub const FIELD_NONE: u64 = (1 << FIELD_BITS) - 1;
const FIELD_MASK: u64 = FIELD_NONE;
const TAG_ANNOUNCE: u64 = 1 << 63;

/// A decoded cluster-election message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterMessage {
    /// Elect-phase transmission: "`I` am a candidate of `cluster`; the
    /// last candidate I heard (any cluster) was `echo`."
    Candidate {
        /// Sender's cluster index.
        cluster: u32,
        /// Station id of the last candidate the sender heard, if any.
        echo: Option<u64>,
    },
    /// Spread-phase transmission: "`leader` leads `cluster`; the smallest
    /// cluster-leader id I know of is `best`."
    Announce {
        /// Sender's cluster index.
        cluster: u32,
        /// The sender's believed leader of its own cluster.
        leader: u64,
        /// The sender's believed network leader (minimum claimant id).
        best: u64,
    },
}

impl ClusterMessage {
    /// Pack into the engine's 64-bit payload word.
    pub fn encode(self) -> u64 {
        let field = |v: u64| {
            debug_assert!(v <= FIELD_NONE);
            v & FIELD_MASK
        };
        match self {
            ClusterMessage::Candidate { cluster, echo } => {
                (field(cluster as u64) << (2 * FIELD_BITS))
                    | (field(echo.unwrap_or(FIELD_NONE)) << FIELD_BITS)
                    | FIELD_NONE
            }
            ClusterMessage::Announce { cluster, leader, best } => {
                TAG_ANNOUNCE
                    | (field(cluster as u64) << (2 * FIELD_BITS))
                    | (field(leader) << FIELD_BITS)
                    | field(best)
            }
        }
    }

    /// Inverse of [`ClusterMessage::encode`].
    pub fn decode(payload: u64) -> Self {
        let f1 = (payload >> (2 * FIELD_BITS)) & FIELD_MASK;
        let f2 = (payload >> FIELD_BITS) & FIELD_MASK;
        let f3 = payload & FIELD_MASK;
        let opt = |v: u64| if v == FIELD_NONE { None } else { Some(v) };
        if payload & TAG_ANNOUNCE == 0 {
            ClusterMessage::Candidate { cluster: f1 as u32, echo: opt(f2) }
        } else {
            ClusterMessage::Announce { cluster: f1 as u32, leader: f2, best: f3 }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Elect,
    Spread,
    Done,
}

/// Per-station cluster-election protocol (see the module docs for the
/// three-phase state machine).
#[derive(Debug, Clone)]
pub struct ClusterElection {
    id: u64,
    cluster: u32,
    lesk: LeskProtocol,
    phase: Phase,
    /// Last heard candidate's station id (the echo field of our next
    /// candidate message).
    echo: Option<u64>,
    /// Believed leader of our own cluster (min-merged).
    cluster_leader: Option<u64>,
    /// Whether *we* claim our cluster's leadership.
    claimed: bool,
    /// Believed network leader: smallest cluster-leader id heard of.
    best: Option<u64>,
    /// Consecutive Spread slots without improvement.
    quiet: u64,
    quiet_target: u64,
    spread_p: f64,
    /// Elect-phase transmission probability once a no-CD observation
    /// reveals that LESK's walk cannot be driven (see module docs).
    nocd_p: f64,
    nocd: bool,
}

impl ClusterElection {
    /// Default quiet horizon before a Spread station powers down.
    pub const DEFAULT_QUIET_TARGET: u64 = 256;
    /// Default Spread-phase transmission probability.
    pub const DEFAULT_SPREAD_P: f64 = 0.25;
    /// Default fixed elect probability in no-CD mode.
    pub const DEFAULT_NOCD_P: f64 = 0.25;

    /// Station `id` of cluster `cluster`, electing with LESK(ε).
    ///
    /// # Panics
    /// Panics if `id` or `cluster` does not fit the packed message fields
    /// (≥ [`FIELD_NONE`]), or if `eps ∉ (0, 1)` ([`LeskProtocol::new`]).
    pub fn new(id: u64, cluster: u32, eps: f64) -> Self {
        assert!(id < FIELD_NONE, "station id {id} does not fit the {FIELD_BITS}-bit message field");
        assert!(
            (cluster as u64) < FIELD_NONE,
            "cluster index {cluster} does not fit the {FIELD_BITS}-bit message field"
        );
        ClusterElection {
            id,
            cluster,
            lesk: LeskProtocol::new(eps),
            phase: Phase::Elect,
            echo: None,
            cluster_leader: None,
            claimed: false,
            best: None,
            quiet: 0,
            quiet_target: Self::DEFAULT_QUIET_TARGET,
            spread_p: Self::DEFAULT_SPREAD_P,
            nocd_p: Self::DEFAULT_NOCD_P,
            nocd: false,
        }
    }

    /// Build every station of a run from a cluster assignment (station id
    /// → cluster index), marking singleton clusters [`alone`](Self::alone).
    /// This is the factory the experiments use.
    pub fn for_assignment(id: u64, assign: &[u32], eps: f64) -> Self {
        let cluster = assign[id as usize];
        let size = assign.iter().filter(|&&c| c == cluster).count();
        let p = ClusterElection::new(id, cluster, eps);
        if size == 1 {
            p.alone()
        } else {
            p
        }
    }

    /// Mark this station as its cluster's only member: it is the cluster
    /// leader by definition and starts in the Spread phase.
    pub fn alone(mut self) -> Self {
        self.claim();
        self
    }

    /// Override the quiet horizon (default
    /// [`ClusterElection::DEFAULT_QUIET_TARGET`]).
    ///
    /// The horizon must exceed the network's announce flood time (roughly
    /// diameter × per-hop single delay), or a remote claimant can power
    /// down before the global minimum reaches it and the network never
    /// agrees. The default suits small-diameter scenarios; wide-chain
    /// sweeps (E26's 64-cluster arms) raise it.
    pub fn with_quiet_target(mut self, slots: u64) -> Self {
        self.quiet_target = slots.max(1);
        self
    }

    /// Override the Spread transmission probability (default
    /// [`ClusterElection::DEFAULT_SPREAD_P`]).
    ///
    /// # Panics
    /// Panics unless `0 < p <= 1`.
    pub fn with_spread_probability(mut self, p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "spread probability must be in (0,1], got {p}");
        self.spread_p = p;
        self
    }

    /// Current LESK estimate (the elect phase's `u`).
    pub fn u(&self) -> f64 {
        self.lesk.u()
    }

    /// Fold a claimed leader id into the believed network leader.
    fn fold_best(&mut self, leader: u64) -> bool {
        match self.best {
            Some(b) if b <= leader => false,
            _ => {
                self.best = Some(leader);
                true
            }
        }
    }

    /// Claim our own cluster's leadership (paper evidence or echo /
    /// adoption confirmation) and enter Spread.
    fn claim(&mut self) {
        self.cluster_leader = Some(self.id);
        self.claimed = true;
        self.fold_best(self.id);
        self.phase = Phase::Spread;
        self.quiet = 0;
    }

    /// Min-merge a learned leader of our own cluster. Returns whether
    /// anything improved (for the quiet counter).
    fn merge_leader(&mut self, leader: u64) -> bool {
        let improved_best = self.fold_best(leader);
        let adopted = match self.cluster_leader {
            Some(l) if l <= leader => false,
            _ => {
                self.cluster_leader = Some(leader);
                // Concurrent-claim repair: the larger claimant abdicates.
                if self.claimed && leader != self.id {
                    self.claimed = false;
                }
                true
            }
        };
        // A neighbor adopted us before we could confirm ourselves.
        let confirmed = leader == self.id && self.cluster_leader == Some(self.id) && !self.claimed;
        if confirmed {
            self.claimed = true;
        }
        if (adopted || confirmed) && self.phase == Phase::Elect {
            self.phase = Phase::Spread;
            self.quiet = 0;
        }
        adopted || confirmed || improved_best
    }

    /// Handle one received message; returns whether beliefs improved.
    fn on_message(&mut self, msg: &MeshMessage) -> bool {
        match ClusterMessage::decode(msg.payload) {
            ClusterMessage::Candidate { cluster, echo } => {
                self.echo = Some(msg.from);
                if self.phase != Phase::Elect {
                    return false;
                }
                if echo == Some(self.id) {
                    // A neighbor heard our candidate alone: our own
                    // transmission was a clean local Single.
                    self.claim();
                    true
                } else if cluster == self.cluster {
                    // The paper's terminal event, cluster-locally: a
                    // same-cluster member transmitted alone.
                    self.merge_leader(msg.from)
                } else {
                    // Foreign election traffic is interference to ours.
                    self.lesk.update(ChannelState::Collision);
                    false
                }
            }
            ClusterMessage::Announce { cluster, leader, best } => {
                let mut improved = false;
                if best != FIELD_NONE {
                    improved |= self.fold_best(best);
                }
                if leader != FIELD_NONE {
                    if cluster == self.cluster {
                        improved |= self.merge_leader(leader);
                    } else {
                        improved |= self.fold_best(leader);
                    }
                }
                if self.phase == Phase::Elect {
                    // Still electing and this announce was not about our
                    // cluster: spread traffic is interference.
                    self.lesk.update(ChannelState::Collision);
                }
                improved
            }
        }
    }

    /// Drive the LESK walk from a message-free observation.
    fn on_silent_observation(&mut self, transmitted: bool, obs: Observation) {
        match obs {
            Observation::State(ChannelState::Single) => {
                if transmitted {
                    // Strong CD: we saw our own clean local Single — the
                    // paper's Algorithm 1 terminal event.
                    self.claim();
                }
                // A listener's Single always arrives with a message, so
                // this arm is transmitter-only in practice.
            }
            Observation::State(state) => self.lesk.update(state),
            Observation::TxAssumedCollision => {
                if !self.nocd {
                    self.lesk.update(ChannelState::Collision);
                }
            }
            Observation::NoCd(_) => {
                // Null and Collision are indistinguishable: feeding either
                // into the walk breaks its asymmetry, so switch to the
                // fixed-probability elect mode and stop driving `u`.
                self.nocd = true;
            }
        }
    }
}

impl MeshProtocol for ClusterElection {
    fn act(&mut self, _slot: u64, rng: &mut dyn RngCore) -> Action {
        let p = match self.phase {
            Phase::Done => return Action::Sleep,
            Phase::Spread => self.spread_p,
            Phase::Elect if self.nocd => self.nocd_p,
            Phase::Elect => tx_probability(self.lesk.u()),
        };
        if p > 0.0 && rng.gen_bool(p.clamp(0.0, 1.0)) {
            Action::Transmit
        } else {
            Action::Listen
        }
    }

    fn payload(&self) -> u64 {
        match self.phase {
            Phase::Elect => {
                ClusterMessage::Candidate { cluster: self.cluster, echo: self.echo }.encode()
            }
            Phase::Spread | Phase::Done => ClusterMessage::Announce {
                cluster: self.cluster,
                leader: self.cluster_leader.unwrap_or(FIELD_NONE),
                best: self.best.unwrap_or(FIELD_NONE),
            }
            .encode(),
        }
    }

    fn feedback(
        &mut self,
        _slot: u64,
        transmitted: bool,
        obs: Observation,
        heard: Option<&MeshMessage>,
    ) {
        if self.phase == Phase::Done {
            return;
        }
        if matches!(obs, Observation::NoCd(_)) {
            self.nocd = true;
        }
        let improved = match heard {
            Some(msg) => self.on_message(msg),
            None => {
                // The own-Single claim and the LESK walk only concern the
                // elect phase; a Spread announce landing as a clean local
                // Single is ordinary flooding, not new leadership evidence.
                if self.phase == Phase::Elect {
                    self.on_silent_observation(transmitted, obs);
                }
                false
            }
        };
        if self.phase == Phase::Spread {
            if improved {
                self.quiet = 0;
            } else {
                self.quiet += 1;
                if self.quiet >= self.quiet_target {
                    self.phase = Phase::Done;
                }
            }
        }
    }

    fn status(&self) -> Status {
        match self.phase {
            Phase::Done => {
                if self.best == Some(self.id) {
                    Status::Leader
                } else {
                    Status::NonLeader
                }
            }
            _ => Status::Running,
        }
    }

    fn estimate(&self) -> Option<f64> {
        match self.phase {
            Phase::Elect => Some(self.lesk.u()),
            _ => None,
        }
    }

    fn state_probe(&self) -> Option<(&'static str, Option<f64>)> {
        match self.phase {
            Phase::Elect => Some(("electing", Some(self.lesk.u()))),
            Phase::Spread => Some(("spreading", Some(self.quiet as f64))),
            Phase::Done => {
                if self.best == Some(self.id) {
                    Some(("leader", None))
                } else {
                    Some(("non_leader", None))
                }
            }
        }
    }

    fn mesh_status(&self) -> MeshStatus {
        MeshStatus {
            cluster_leader: self.cluster_leader,
            network_leader: self.best,
            is_cluster_leader: self.claimed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
    use jle_engine::{run_multihop, MeshProtocol, SimConfig, StopRule};
    use jle_radio::{CdModel, Topology};

    fn jammer(eps: f64) -> AdversarySpec {
        AdversarySpec::new(Rate::from_f64(1.0 - eps), 64, JamStrategyKind::Saturating)
    }

    fn run_scenario(
        topo: &Topology,
        clusters: &[u32],
        cd: CdModel,
        adversary: &AdversarySpec,
        seed: u64,
        max_slots: u64,
        eps: f64,
    ) -> jle_engine::RunReport {
        let config = SimConfig::new(clusters.len() as u64, cd)
            .with_seed(seed)
            .with_max_slots(max_slots)
            .with_stop(StopRule::AllTerminated);
        run_multihop(&config, adversary, topo, Some(clusters), |i| {
            Box::new(ClusterElection::for_assignment(i, clusters, eps))
        })
    }

    /// Every test's endgame: one network leader, every cluster resolved,
    /// and the leader is the minimum claimant.
    fn assert_converged(report: &jle_engine::RunReport, label: &str) {
        let mh = report.multihop.as_ref().expect("clustered runs carry the multihop block");
        assert!(
            mh.all_clusters_resolved(),
            "{label}: unresolved clusters: {:?}",
            mh.clusters.iter().filter(|c| c.resolved_at.is_none()).collect::<Vec<_>>()
        );
        let network = mh.network_leader.unwrap_or_else(|| panic!("{label}: no network leader"));
        assert!(mh.converged_at.is_some(), "{label}: never converged");
        let min_leader =
            mh.clusters.iter().filter_map(|c| c.leader).min().expect("clusters have leaders");
        assert_eq!(network, min_leader, "{label}: network leader must be the minimum claimant");
        assert_eq!(
            report.leaders,
            vec![network],
            "{label}: exactly the network leader terminates as Leader"
        );
    }

    #[test]
    fn payload_roundtrip() {
        for msg in [
            ClusterMessage::Candidate { cluster: 0, echo: None },
            ClusterMessage::Candidate { cluster: 17, echo: Some(123_456) },
            ClusterMessage::Announce { cluster: 2_000_000, leader: 5, best: 0 },
            ClusterMessage::Announce { cluster: 0, leader: FIELD_NONE, best: FIELD_NONE },
        ] {
            assert_eq!(ClusterMessage::decode(msg.encode()), msg);
        }
    }

    #[test]
    #[should_panic(expected = "station id")]
    fn oversized_id_is_rejected() {
        let _ = ClusterElection::new(FIELD_NONE, 0, 0.5);
    }

    #[test]
    fn alone_station_claims_immediately() {
        let p = ClusterElection::new(7, 3, 0.5).alone();
        let ms = p.mesh_status();
        assert_eq!(ms.cluster_leader, Some(7));
        assert_eq!(ms.network_leader, Some(7));
        assert!(ms.is_cluster_leader);
    }

    #[test]
    fn concurrent_claims_merge_to_the_minimum() {
        let mut p = ClusterElection::new(9, 0, 0.5).alone();
        assert!(p.mesh_status().is_cluster_leader);
        // An announce naming a smaller same-cluster claimant: abdicate.
        let msg = MeshMessage {
            from: 4,
            payload: ClusterMessage::Announce { cluster: 0, leader: 4, best: 4 }.encode(),
        };
        p.feedback(0, false, Observation::State(ChannelState::Single), Some(&msg));
        let ms = p.mesh_status();
        assert_eq!(ms.cluster_leader, Some(4));
        assert_eq!(ms.network_leader, Some(4));
        assert!(!ms.is_cluster_leader, "the larger claimant abdicates");
        // A larger claimant later: ignored.
        let msg = MeshMessage {
            from: 11,
            payload: ClusterMessage::Announce { cluster: 0, leader: 11, best: 11 }.encode(),
        };
        p.feedback(1, false, Observation::State(ChannelState::Single), Some(&msg));
        assert_eq!(p.mesh_status().cluster_leader, Some(4));
    }

    #[test]
    fn echo_confirms_a_weak_cd_claim() {
        // Station 2 transmitted; a neighbor echoes it: claim despite never
        // seeing its own Single (weak CD).
        let mut p = ClusterElection::new(2, 1, 0.5);
        let msg = MeshMessage {
            from: 8,
            payload: ClusterMessage::Candidate { cluster: 5, echo: Some(2) }.encode(),
        };
        p.feedback(3, false, Observation::State(ChannelState::Single), Some(&msg));
        let ms = p.mesh_status();
        assert_eq!(ms.cluster_leader, Some(2));
        assert!(ms.is_cluster_leader, "echo of our id confirms the claim");
    }

    #[test]
    fn dense_linear_converges_under_jamming() {
        let eps = 0.4;
        for (cd, seed) in [
            (CdModel::Strong, 11u64),
            (CdModel::Weak, 12),
            (CdModel::Strong, 13),
            (CdModel::Weak, 14),
        ] {
            let (topo, clusters) = Topology::dense_linear(4, 4);
            let report = run_scenario(&topo, &clusters, cd, &jammer(eps), seed, 400_000, eps);
            assert_converged(&report, &format!("dense-linear {cd:?} seed {seed}"));
        }
    }

    #[test]
    fn core_tail_converges_under_jamming() {
        let eps = 0.4;
        for (cd, seed) in [(CdModel::Strong, 21u64), (CdModel::Weak, 22)] {
            let (topo, clusters) = Topology::core_tail(5, 4);
            let report = run_scenario(&topo, &clusters, cd, &jammer(eps), seed, 400_000, eps);
            assert_converged(&report, &format!("core-tail {cd:?} seed {seed}"));
        }
    }

    #[test]
    fn no_cd_elects_small_clusters_unjammed() {
        let (topo, clusters) = Topology::dense_linear(3, 3);
        let report = run_scenario(
            &topo,
            &clusters,
            CdModel::NoCd,
            &AdversarySpec::passive(),
            31,
            400_000,
            0.4,
        );
        assert_converged(&report, "dense-linear no-CD");
    }

    #[test]
    fn single_cluster_complete_matches_the_paper_shape() {
        // One cluster on a complete graph is just LESK plus the spread
        // epilogue: exactly one station ends as Leader.
        let clusters = vec![0u32; 32];
        let topo = Topology::complete();
        let report = run_scenario(
            &topo,
            &clusters,
            CdModel::Strong,
            &AdversarySpec::passive(),
            41,
            200_000,
            0.5,
        );
        assert_converged(&report, "single-cluster complete");
        let mh = report.multihop.as_ref().unwrap();
        assert_eq!(mh.clusters.len(), 1);
        assert_eq!(mh.clusters[0].leader, mh.network_leader);
    }
}
