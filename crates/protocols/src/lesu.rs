//! LESU — Leader Election in Strong-CD with Unknown ε (Algorithm 2).
//!
//! When neither `ε` nor `T` is known, LESU first calibrates a time unit
//! with `Estimation(2)` and then sweeps time-boxed LESK runs over a
//! doubling schedule of candidate ε values:
//!
//! ```text
//! ε_i ← 2^(−i/3)
//! t₀  ← c · 2^(1 + Estimation(2))
//! t_i ← t₀ / (ε_i³ · log₂(1/ε_i))          // = 3 · 2^i · t₀ / i
//! for i ← 1, 2, … :
//!     for j ← 1, 2, …, i :
//!         run LESK(ε_j) for ⌈t_i · i / j⌉ slots   // = ⌈3 · 2^i · t₀ / j⌉
//! ```
//!
//! Each inner run resets LESK's estimate (fresh variables, fresh
//! randomness). Theorem 2.9: for `n ≥ 115` LESU elects a leader w.h.p. in
//! `O(ε⁻³ log log(1/ε) · log n)` slots when `T ≤ log n/(ε³ log(1/ε))`,
//! and `O(max{log log(T/(ε log n)), log(1/ε) log log(1/ε)}·T)` otherwise.
//!
//! The paper fixes the schedule constant only existentially ("let c be
//! such a constant …"); we default to `c = 4` and expose it for the E4
//! ablation.

use crate::estimation::EstimationProtocol;
use crate::lesk::LeskProtocol;
use jle_engine::UniformProtocol;
use jle_radio::ChannelState;

/// Default schedule constant `c` (see module docs).
pub const DEFAULT_SCHEDULE_CONSTANT: f64 = 4.0;

/// The candidate ε of sweep index `j`: `ε_j = 2^{−j/3}`.
#[inline]
pub fn candidate_eps(j: u32) -> f64 {
    (-(j as f64) / 3.0).exp2()
}

/// The time box of inner run `(i, j)` given `t₀`: `⌈3 · 2^i · t₀ / j⌉`.
#[inline]
pub fn inner_budget(t0: f64, i: u32, j: u32) -> u64 {
    let b = 3.0 * (i as f64).exp2() * t0 / j as f64;
    if b >= u64::MAX as f64 {
        u64::MAX
    } else {
        b.ceil().max(1.0) as u64
    }
}

#[derive(Debug, Clone)]
enum Phase {
    Estimating(EstimationProtocol),
    Electing { i: u32, j: u32, budget_left: u64, lesk: LeskProtocol },
}

/// Live LESU state.
#[derive(Debug, Clone)]
pub struct LesuProtocol {
    c: f64,
    t0: Option<f64>,
    phase: Phase,
}

impl LesuProtocol {
    /// LESU with the default schedule constant.
    pub fn new() -> Self {
        Self::with_constant(DEFAULT_SCHEDULE_CONSTANT)
    }

    /// LESU with an explicit schedule constant `c > 0`.
    ///
    /// # Panics
    /// Panics unless `c > 0`.
    pub fn with_constant(c: f64) -> Self {
        assert!(c > 0.0, "schedule constant must be positive");
        LesuProtocol { c, t0: None, phase: Phase::Estimating(EstimationProtocol::paper()) }
    }

    /// The calibrated `t₀`, available once `Estimation` finished.
    pub fn t0(&self) -> Option<f64> {
        self.t0
    }

    /// The current inner run `(i, j, ε_j)`, if in the election phase.
    pub fn current_run(&self) -> Option<(u32, u32, f64)> {
        match &self.phase {
            Phase::Electing { i, j, .. } => Some((*i, *j, candidate_eps(*j))),
            Phase::Estimating(_) => None,
        }
    }

    fn start_run(&mut self, i: u32, j: u32) {
        let t0 = self.t0.expect("t0 set before electing");
        self.phase = Phase::Electing {
            i,
            j,
            budget_left: inner_budget(t0, i, j),
            lesk: LeskProtocol::new(candidate_eps(j)),
        };
    }

    fn advance_schedule(&mut self) {
        let (i, j) = match &self.phase {
            Phase::Electing { i, j, .. } => (*i, *j),
            Phase::Estimating(_) => unreachable!("schedule advances only while electing"),
        };
        if j < i {
            self.start_run(i, j + 1);
        } else {
            self.start_run(i + 1, 1);
        }
    }
}

impl Default for LesuProtocol {
    fn default() -> Self {
        Self::new()
    }
}

impl UniformProtocol for LesuProtocol {
    fn tx_prob(&mut self, slot: u64) -> f64 {
        match &mut self.phase {
            Phase::Estimating(e) => e.tx_prob(slot),
            Phase::Electing { lesk, .. } => lesk.tx_prob(slot),
        }
    }

    fn on_state(&mut self, slot: u64, state: ChannelState) {
        match &mut self.phase {
            Phase::Estimating(e) => {
                e.on_state(slot, state);
                if let Some(round) = e.result() {
                    // t0 = c · 2^(1 + round)
                    self.t0 = Some(self.c * ((round + 1) as f64).exp2());
                    self.start_run(1, 1);
                }
            }
            Phase::Electing { lesk, budget_left, .. } => {
                lesk.on_state(slot, state);
                *budget_left -= 1;
                if *budget_left == 0 {
                    self.advance_schedule();
                }
            }
        }
    }

    fn estimate(&self) -> Option<f64> {
        match &self.phase {
            Phase::Estimating(_) => None,
            Phase::Electing { lesk, .. } => Some(lesk.u()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
    use jle_engine::{run_cohort, run_cohort_with, MonteCarlo, SimConfig};
    use jle_radio::CdModel;

    #[test]
    fn candidate_eps_schedule() {
        assert!((candidate_eps(3) - 0.5).abs() < 1e-12);
        assert!((candidate_eps(6) - 0.25).abs() < 1e-12);
        assert!(candidate_eps(1) < 1.0 && candidate_eps(1) > 0.75);
        // ε_j is decreasing in j.
        for j in 1..30 {
            assert!(candidate_eps(j + 1) < candidate_eps(j));
        }
    }

    #[test]
    fn inner_budget_formula() {
        // t_i · i / j = 3 · 2^i · t0 / j
        assert_eq!(inner_budget(10.0, 1, 1), 60);
        assert_eq!(inner_budget(10.0, 2, 1), 120);
        assert_eq!(inner_budget(10.0, 2, 2), 60);
        assert_eq!(inner_budget(10.0, 3, 2), 120);
        assert!(inner_budget(1e30, 62, 1) == u64::MAX, "saturates instead of overflowing");
    }

    #[test]
    fn schedule_walks_i_then_j() {
        let mut p = LesuProtocol::new();
        p.t0 = Some(1.0 / 3.0); // budgets: ceil(2^i / j)
        p.start_run(1, 1);
        assert_eq!(p.current_run().map(|(i, j, _)| (i, j)), Some((1, 1)));
        // Exhaust (1,1): budget = ceil(3 * 2 * (1/3) / 1) = 2 slots.
        p.on_state(0, ChannelState::Collision);
        p.on_state(1, ChannelState::Collision);
        assert_eq!(p.current_run().map(|(i, j, _)| (i, j)), Some((2, 1)));
        // (2,1): budget = ceil(3 * 4 / 3 / 1) = 4.
        for s in 0..4 {
            p.on_state(s, ChannelState::Collision);
        }
        assert_eq!(p.current_run().map(|(i, j, _)| (i, j)), Some((2, 2)));
        // (2,2): budget = 2.
        p.on_state(0, ChannelState::Collision);
        p.on_state(1, ChannelState::Collision);
        assert_eq!(p.current_run().map(|(i, j, _)| (i, j)), Some((3, 1)));
    }

    #[test]
    fn lesk_resets_between_runs() {
        let mut p = LesuProtocol::new();
        p.t0 = Some(1.0 / 3.0);
        p.start_run(1, 1);
        p.on_state(0, ChannelState::Collision);
        assert!(p.estimate().unwrap() > 0.0, "collision bumped u");
        p.on_state(1, ChannelState::Collision); // run (1,1) ends
        assert_eq!(p.estimate(), Some(0.0), "fresh LESK starts at u = 0");
    }

    #[test]
    fn estimation_result_seeds_t0() {
        // Drive the estimation phase by hand: two Nulls in round 1.
        let mut p = LesuProtocol::with_constant(2.0);
        assert!(p.t0().is_none());
        assert!(p.estimate().is_none());
        p.on_state(0, ChannelState::Null);
        p.on_state(1, ChannelState::Null);
        // round = 1 → t0 = 2 · 2^2 = 8.
        assert_eq!(p.t0(), Some(8.0));
        assert_eq!(p.current_run().map(|(i, j, _)| (i, j)), Some((1, 1)));
    }

    #[test]
    fn elects_without_adversary() {
        let mc = MonteCarlo::new(30, 50);
        let ok = mc.success_rate(|seed| {
            let config =
                SimConfig::new(200, CdModel::Strong).with_seed(seed).with_max_slots(2_000_000);
            run_cohort(&config, &AdversarySpec::passive(), LesuProtocol::new).leader_elected()
        });
        assert_eq!(ok, 1.0);
    }

    #[test]
    fn elects_with_unknown_eps_under_jamming() {
        // The whole point of LESU: the protocol does not know eps = 0.3.
        let spec = AdversarySpec::new(Rate::from_f64(0.3), 16, JamStrategyKind::Saturating);
        let mc = MonteCarlo::new(20, 4000);
        let ok = mc.success_rate(|seed| {
            let config =
                SimConfig::new(115, CdModel::Strong).with_seed(seed).with_max_slots(5_000_000);
            run_cohort(&config, &spec, LesuProtocol::new).leader_elected()
        });
        assert_eq!(ok, 1.0);
    }

    #[test]
    fn schedule_reaches_small_eps_before_election_under_heavy_jamming() {
        let spec = AdversarySpec::new(Rate::from_ratio(1, 8), 8, JamStrategyKind::Saturating);
        let config = SimConfig::new(115, CdModel::Strong).with_seed(11).with_max_slots(5_000_000);
        let (report, proto) = run_cohort_with(&config, &spec, LesuProtocol::new);
        assert!(report.leader_elected());
        // By election time the sweep should have pushed past eps_1.
        if let Some((i, _, _)) = proto.current_run() {
            assert!(i >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "schedule constant must be positive")]
    fn rejects_non_positive_c() {
        let _ = LesuProtocol::with_constant(0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The inner time boxes follow 3·2^i·t0/j exactly and double
        /// along the diagonal.
        #[test]
        fn budgets_scale(t0 in 1.0f64..10_000.0, i in 1u32..30) {
            for j in 1..=i {
                let b = inner_budget(t0, i, j);
                prop_assert!(b >= 1);
                // b doubles when i increments (same j).
                let b2 = inner_budget(t0, i + 1, j);
                prop_assert!(b2 >= 2 * b - 2, "b={b}, b2={b2}");
                // and shrinks as j grows.
                if j > 1 {
                    prop_assert!(inner_budget(t0, i, j) <= inner_budget(t0, i, j - 1));
                }
            }
        }

        /// Driving LESU through arbitrary non-Single states never panics
        /// and always keeps a well-formed phase.
        #[test]
        fn schedule_never_wedges(
            states in proptest::collection::vec(
                prop_oneof![Just(ChannelState::Null), Just(ChannelState::Collision)], 1..2000),
        ) {
            let mut p = LesuProtocol::new();
            for (slot, &s) in states.iter().enumerate() {
                let _ = p.tx_prob(slot as u64);
                p.on_state(slot as u64, s);
                if let Some((i, j, eps_j)) = p.current_run() {
                    prop_assert!(j >= 1 && j <= i);
                    prop_assert!(eps_j > 0.0 && eps_j < 1.0);
                    prop_assert!(p.t0().is_some());
                }
            }
        }
    }
}
