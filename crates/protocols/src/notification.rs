//! `Notification` — weak-CD leader election from any selection-resolution
//! algorithm (Section 3, Function 4, Lemma 3.1).
//!
//! Under weak-CD the station that transmits the first `Single` does not
//! hear it, so it never learns it won. `Notification` turns any algorithm
//! `A` that *obtains* a first `Single` in `t(n)` slots w.h.p. into a full
//! leader election with only constant-factor overhead, robust against the
//! same `(T, 1−ε)` adversary. It interleaves three exponentially growing
//! interval families C1/C2/C3 (see [`jle_radio::partition`]) and runs a
//! four-stage handshake:
//!
//! 1. everyone runs `A` in C1 (restarting with fresh state and
//!    randomness at each interval boundary) until a `Single` in C1; its
//!    transmitter `l` is the leader-to-be but does not know it — all
//!    *other* stations set `leader ← false` and move on, while `l` keeps
//!    running `A` alone in C1;
//! 2. the others run `A` in C2 until a `Single` in C2; `l`, listening in
//!    C2, hears it and learns `leader = true`;
//! 3. now `l` transmits in every C3 slot while the informed non-leaders
//!    saturate C1 (preventing a premature `Null` there); the adversary
//!    cannot jam an entire interval `C³ᵢ` with `2^i ≥ T`, so a `Single`
//!    eventually appears in C3 and every non-leader terminates;
//! 4. with everyone else gone, C1 falls silent; the first unjammed
//!    `Null` in C1 tells `l` it may terminate as leader.
//!
//! Lemma 3.1 requires `n ≥ 3` (with `n = 2` there is nobody left to keep
//! C1 busy and the C2 winner can strand). Total time is at most `8·t(n)`
//! with probability `≥ 1 − 1/n`.

use jle_engine::{Action, Protocol, Status, UniformProtocol};
use jle_radio::partition::{classify, SlotClass};
use jle_radio::{ChannelState, Observation};
use rand::{Rng, RngCore};

use crate::lesk::LeskProtocol;
use crate::lesu::LesuProtocol;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Running `A` in C1; `leader` still undefined.
    RunA1,
    /// Heard the C1 `Single` (⇒ `leader = false`); running `A` in C2.
    RunA2,
    /// Heard the C2 `Single` with `leader = false`: transmit in every C1
    /// slot until a `Single` in C3, then terminate as non-leader.
    JamC1,
    /// Heard the C2 `Single` with `leader` undefined (⇒ this is `l`,
    /// `leader = true`): transmit in every C3 slot until a `Null` in C1,
    /// then terminate as leader.
    NotifyC3,
}

/// Per-station `Notification` wrapper around a restartable inner
/// selection-resolution algorithm.
pub struct Notification<U, F> {
    factory: F,
    inner: Option<U>,
    /// Steps of the *current* inner execution (resets at every restart).
    local_step: u64,
    phase: Phase,
    status: Status,
}

impl<U, F> Notification<U, F>
where
    U: UniformProtocol,
    F: Fn() -> U,
{
    /// Wrap the inner algorithm built by `factory`. The factory is called
    /// afresh at every interval boundary ("revert all variables … and
    /// perform new random choices").
    pub fn new(factory: F) -> Self {
        Notification {
            factory,
            inner: None,
            local_step: 0,
            phase: Phase::RunA1,
            status: Status::Running,
        }
    }

    fn restart_inner(&mut self) {
        self.inner = Some((self.factory)());
        self.local_step = 0;
    }

    fn inner_update(&mut self, state: ChannelState) {
        if state != ChannelState::Single {
            if let Some(inner) = self.inner.as_mut() {
                inner.on_state(self.local_step, state);
            }
        }
        self.local_step += 1;
    }
}

/// LEWK: `Notification` over LESK(ε) — weak-CD election with known ε
/// (Theorem 3.2).
pub fn lewk(eps: f64) -> Notification<LeskProtocol, impl Fn() -> LeskProtocol> {
    Notification::new(move || LeskProtocol::new(eps))
}

/// LEWU: `Notification` over LESU — weak-CD election with no global
/// knowledge at all (Theorem 3.3).
pub fn lewu() -> Notification<LesuProtocol, impl Fn() -> LesuProtocol> {
    Notification::new(LesuProtocol::new)
}

impl<U, F> Protocol for Notification<U, F>
where
    U: UniformProtocol + Send,
    F: Fn() -> U + Send,
{
    fn act(&mut self, slot: u64, rng: &mut dyn RngCore) -> Action {
        if self.status.terminal() {
            return Action::Listen;
        }
        let Some(interval) = classify(slot) else {
            return Action::Listen; // padding slots 0..=2
        };
        match (self.phase, interval.class()) {
            (Phase::RunA1, SlotClass::C1) | (Phase::RunA2, SlotClass::C2) => {
                if interval.is_interval_start() || self.inner.is_none() {
                    self.restart_inner();
                }
                let p = self
                    .inner
                    .as_mut()
                    .expect("inner restarted above")
                    .tx_prob(self.local_step)
                    .clamp(0.0, 1.0);
                if p > 0.0 && rng.gen_bool(p) {
                    Action::Transmit
                } else {
                    Action::Listen
                }
            }
            (Phase::JamC1, SlotClass::C1) => Action::Transmit,
            (Phase::NotifyC3, SlotClass::C3) => Action::Transmit,
            _ => Action::Listen,
        }
    }

    fn feedback(&mut self, slot: u64, transmitted: bool, obs: Observation) {
        if self.status.terminal() {
            return;
        }
        let Some(interval) = classify(slot) else {
            return;
        };
        let heard_single = obs.heard_single() && !transmitted;
        match (self.phase, interval.class()) {
            (Phase::RunA1, SlotClass::C1) => {
                if heard_single {
                    // Someone else's Single in C1: leader ← false, stop A
                    // in C1 and prepare to run A in C2.
                    self.phase = Phase::RunA2;
                    self.inner = None;
                } else {
                    self.inner_update(obs.effective_state());
                }
            }
            (Phase::RunA1, SlotClass::C2) if heard_single => {
                // A Single in C2 while our leader flag is still
                // undefined: we are `l`, the C1 winner.
                self.phase = Phase::NotifyC3;
                self.inner = None;
            }
            (Phase::RunA2, SlotClass::C2) => {
                if heard_single {
                    // leader = false and the C2 Single arrived: keep C1
                    // busy until the leader's C3 notification lands.
                    self.phase = Phase::JamC1;
                    self.inner = None;
                } else {
                    self.inner_update(obs.effective_state());
                }
            }
            (Phase::RunA2, SlotClass::C3) | (Phase::JamC1, SlotClass::C3) if heard_single => {
                // The leader's C3 Single: we know the election is
                // over and may terminate. (RunA2 can reach this when
                // it was itself the C2 transmitter and missed the C2
                // Single.)
                self.status = Status::NonLeader;
            }
            (Phase::NotifyC3, SlotClass::C1)
                if !transmitted && obs.effective_state() == ChannelState::Null =>
            {
                // C1 fell silent: everyone else has terminated.
                self.status = Status::Leader;
            }
            _ => {}
        }
    }

    fn status(&self) -> Status {
        self.status
    }

    fn estimate(&self) -> Option<f64> {
        self.inner.as_ref().and_then(|i| i.estimate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
    use jle_engine::{run_exact, MonteCarlo, SimConfig, StopRule};
    use jle_radio::CdModel;

    fn weak_config(n: u64, seed: u64, max_slots: u64) -> SimConfig {
        SimConfig::new(n, CdModel::Weak)
            .with_seed(seed)
            .with_max_slots(max_slots)
            .with_stop(StopRule::AllTerminated)
    }

    #[test]
    fn elects_exactly_one_leader_without_adversary() {
        let mc = MonteCarlo::new(25, 10);
        let ok = mc.success_rate(|seed| {
            let config = weak_config(16, seed, 1_000_000);
            let r = run_exact(&config, &AdversarySpec::passive(), |_| Box::new(lewk(0.5)));
            r.all_terminated && r.leaders.len() == 1
        });
        assert_eq!(ok, 1.0);
    }

    #[test]
    fn leader_is_the_first_c1_single_transmitter() {
        let config = weak_config(8, 42, 1_000_000);
        let r = run_exact(&config, &AdversarySpec::passive(), |_| Box::new(lewk(0.5)));
        assert!(r.all_terminated);
        // The winner recorded by the engine is the first clean Single's
        // transmitter, which must be in C1 and must be the final leader.
        assert_eq!(r.leaders, vec![r.winner.unwrap()]);
    }

    #[test]
    fn survives_saturating_jammer() {
        let eps = 0.5;
        let spec = AdversarySpec::new(Rate::from_f64(eps), 16, JamStrategyKind::Saturating);
        let mc = MonteCarlo::new(15, 70);
        let ok = mc.success_rate(|seed| {
            let config = weak_config(12, seed, 2_000_000);
            let r = run_exact(&config, &spec, |_| Box::new(lewk(eps)));
            r.all_terminated && r.leaders.len() == 1
        });
        assert_eq!(ok, 1.0);
    }

    #[test]
    fn survives_reactive_jammer() {
        let spec = AdversarySpec::new(Rate::from_f64(0.5), 32, JamStrategyKind::ReactiveNull);
        let mc = MonteCarlo::new(10, 300);
        let ok = mc.success_rate(|seed| {
            let config = weak_config(12, seed, 2_000_000);
            let r = run_exact(&config, &spec, |_| Box::new(lewk(0.5)));
            r.all_terminated && r.leaders.len() == 1
        });
        assert_eq!(ok, 1.0);
    }

    #[test]
    fn lewu_elects_with_no_knowledge() {
        let spec = AdversarySpec::new(Rate::from_f64(0.4), 8, JamStrategyKind::Saturating);
        let mc = MonteCarlo::new(8, 900);
        let ok = mc.success_rate(|seed| {
            let config = weak_config(10, seed, 5_000_000);
            let r = run_exact(&config, &spec, |_| Box::new(lewu()));
            r.all_terminated && r.leaders.len() == 1
        });
        assert_eq!(ok, 1.0);
    }

    #[test]
    fn minimum_population_three() {
        // Lemma 3.1 assumes n >= 3; verify it holds right at the boundary.
        let mc = MonteCarlo::new(20, 5000);
        let ok = mc.success_rate(|seed| {
            let config = weak_config(3, seed, 2_000_000);
            let r = run_exact(&config, &AdversarySpec::passive(), |_| Box::new(lewk(0.5)));
            r.all_terminated && r.leaders.len() == 1
        });
        assert_eq!(ok, 1.0);
    }

    #[test]
    fn never_two_leaders_even_when_capped() {
        // Even on truncated runs the safety property (at most one leader)
        // must hold.
        for seed in 0..40 {
            let config = weak_config(6, seed, 5_000); // tight cap
            let r = run_exact(&config, &AdversarySpec::passive(), |_| Box::new(lewk(0.5)));
            assert!(r.leaders.len() <= 1, "seed {seed} produced {:?}", r.leaders);
        }
    }

    /// White-box walk through the four-stage handshake with a scripted
    /// channel, from the perspective of each role.
    #[test]
    fn scripted_handshake_roles() {
        use jle_engine::Action;
        use jle_radio::partition::interval_start;
        use jle_radio::{ChannelState, Observation};
        use rand::{rngs::SmallRng, SeedableRng};

        let mut rng = SmallRng::seed_from_u64(1);
        let single = Observation::State(ChannelState::Single);
        let null = Observation::State(ChannelState::Null);

        // Use level-4 intervals: C^4_1 starts at 45, C^4_2 at 61, C^4_3 at 77.
        let c1 = interval_start(4, 1);
        let c2 = interval_start(4, 2);
        let c3 = interval_start(4, 3);

        // --- Station r: hears the C1 single, then the C2 single --------
        let mut r = lewk(0.5);
        assert_eq!(r.status(), Status::Running);
        // Hears someone else's Single in C1 → leader=false, stop A in C1.
        r.act(c1, &mut rng);
        r.feedback(c1, false, single);
        // Now r must not run A in C1 anymore but run it in C2.
        // (In C1 it only listens.)
        for s in c1 + 1..c1 + 4 {
            assert_eq!(r.act(s, &mut rng), Action::Listen, "stopped in C1");
        }
        // Hears the C2 single → JamC1: transmit in *every* C1 slot.
        r.act(c2, &mut rng);
        r.feedback(c2, false, single);
        let next_c1 = interval_start(5, 1);
        for s in next_c1..next_c1 + 4 {
            assert_eq!(r.act(s, &mut rng), Action::Transmit, "must saturate C1");
        }
        // Hears the Single in C3 → terminates as non-leader.
        let next_c3 = interval_start(5, 3);
        r.act(next_c3, &mut rng);
        r.feedback(next_c3, false, single);
        assert_eq!(r.status(), Status::NonLeader);

        // --- Station l: transmitted the C1 single (does not hear it),
        //     then hears the C2 single → leader ------------------------
        let mut l = lewk(0.5);
        l.act(c1, &mut rng);
        // Weak-CD transmitter: assumed collision, stays in A1.
        l.feedback(c1, true, Observation::TxAssumedCollision);
        assert_eq!(l.status(), Status::Running);
        // Hears the C2 single while its leader flag is undefined → NotifyC3.
        l.act(c2, &mut rng);
        l.feedback(c2, false, single);
        // Must transmit every C3 slot…
        for s in c3..c3 + 4 {
            assert_eq!(l.act(s, &mut rng), Action::Transmit, "leader notifies in C3");
        }
        // …and not terminate on a C1 Null before it has notified? It may:
        // termination condition is *any* Null in C1 after leader=true.
        // Feed a Collision first (jam-saturated C1): no termination.
        let nc1 = interval_start(5, 1);
        l.act(nc1, &mut rng);
        l.feedback(nc1, false, Observation::State(ChannelState::Collision));
        assert_eq!(l.status(), Status::Running);
        // A clean Null in C1 ends it: leader elected.
        l.act(nc1 + 1, &mut rng);
        l.feedback(nc1 + 1, false, null);
        assert_eq!(l.status(), Status::Leader);

        // --- Station s: transmitted the C2 single (does not hear it),
        //     terminates on the C3 single ------------------------------
        let mut s2 = lewk(0.5);
        s2.act(c1, &mut rng);
        s2.feedback(c1, false, single); // heard C1 single → RunA2
        s2.act(c2, &mut rng);
        s2.feedback(c2, true, Observation::TxAssumedCollision); // its own C2 single
        assert_eq!(s2.status(), Status::Running, "s does not know it transmitted the single");
        // It keeps running A in C2 but must terminate on the C3 single.
        s2.act(c3, &mut rng);
        s2.feedback(c3, false, single);
        assert_eq!(s2.status(), Status::NonLeader);
    }

    #[test]
    fn padding_slots_are_idle() {
        use jle_engine::Action;
        use rand::{rngs::SmallRng, SeedableRng};
        let mut st = lewk(0.5);
        let mut rng = SmallRng::seed_from_u64(2);
        for slot in 0..3u64 {
            assert_eq!(st.act(slot, &mut rng), Action::Listen);
        }
    }

    #[test]
    fn inner_restarts_at_interval_boundaries() {
        use jle_radio::partition::interval_start;
        use jle_radio::{ChannelState, Observation};
        use rand::{rngs::SmallRng, SeedableRng};
        let mut st = lewk(0.5);
        let mut rng = SmallRng::seed_from_u64(3);
        // Run through C^3_1 (slots 21..28) feeding collisions: u grows.
        let c31 = interval_start(3, 1);
        for s in c31..c31 + 8 {
            st.act(s, &mut rng);
            st.feedback(s, false, Observation::State(ChannelState::Collision));
        }
        let u_end = st.estimate().unwrap();
        assert!(u_end > 0.0, "collisions must raise the inner estimate");
        // First slot of C^4_1: fresh inner instance, estimate reset.
        let c41 = interval_start(4, 1);
        st.act(c41, &mut rng);
        assert_eq!(st.estimate(), Some(0.0), "restart must revert all variables");
    }

    #[test]
    fn weak_cd_overhead_is_constant_factor() {
        // Lemma 3.1: Notification costs at most 8× the inner algorithm's
        // selection time. Compare medians over seeds.
        let n = 32u64;
        let mc = MonteCarlo::new(20, 1234);
        let weak: Vec<f64> = mc.collect_f64(|seed| {
            let config = weak_config(n, seed, 2_000_000);
            let r = run_exact(&config, &AdversarySpec::passive(), |_| Box::new(lewk(0.5)));
            assert!(r.all_terminated);
            r.slots as f64
        });
        let strong: Vec<f64> = mc.collect_f64(|seed| {
            let config =
                SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(2_000_000);
            let r = jle_engine::run_cohort(&config, &AdversarySpec::passive(), || {
                LeskProtocol::new(0.5)
            });
            r.slots as f64
        });
        let med = |mut v: Vec<f64>| {
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let ratio = med(weak) / med(strong);
        // Lemma 3.1's 8x is against the w.h.p. selection bound t(n), not
        // the median, and the doubling intervals add discretization slack
        // (the run must reach an interval long enough for A to finish
        // within it); experiment E6 reports the precise measured ratios.
        // Here we only pin down "constant factor, not asymptotic blowup".
        assert!(ratio <= 40.0, "weak/strong median ratio {ratio}");
        assert!(ratio >= 1.0, "weak cannot beat strong");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use jle_radio::{ChannelState, NoCdState};
    use proptest::prelude::*;
    use rand::{rngs::SmallRng, SeedableRng};

    fn arb_observation() -> impl Strategy<Value = Observation> {
        prop_oneof![
            Just(Observation::State(ChannelState::Null)),
            Just(Observation::State(ChannelState::Single)),
            Just(Observation::State(ChannelState::Collision)),
            Just(Observation::NoCd(NoCdState::Single)),
            Just(Observation::NoCd(NoCdState::NoSingle)),
            Just(Observation::TxAssumedCollision),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Feeding a Notification station *arbitrary* observation
        /// sequences never panics, never elects it leader without the
        /// full C2-single → C1-null path, and terminal status is sticky.
        #[test]
        fn survives_arbitrary_observations(
            seed in any::<u64>(),
            obs in proptest::collection::vec(arb_observation(), 1..400),
        ) {
            let mut st = lewk(0.5);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut was_terminal = false;
            for (slot, &o) in obs.iter().enumerate() {
                let slot = slot as u64;
                let action = st.act(slot, &mut rng);
                // The engine would never deliver a listener observation
                // to a transmitter; respect that contract.
                let transmitted = action == jle_engine::Action::Transmit;
                let o = if transmitted { Observation::TxAssumedCollision } else { o };
                st.feedback(slot, transmitted, o);
                if was_terminal {
                    prop_assert!(st.status().terminal(), "terminal status must be sticky");
                }
                was_terminal = st.status().terminal();
            }
        }

        /// A station that never hears a Single can never terminate.
        #[test]
        fn no_single_no_termination(
            seed in any::<u64>(),
            states in proptest::collection::vec(
                prop_oneof![Just(ChannelState::Null), Just(ChannelState::Collision)], 1..400),
        ) {
            let mut st = lewk(0.5);
            let mut rng = SmallRng::seed_from_u64(seed);
            for (slot, &s) in states.iter().enumerate() {
                let slot = slot as u64;
                let transmitted = st.act(slot, &mut rng) == jle_engine::Action::Transmit;
                let o = if transmitted {
                    Observation::TxAssumedCollision
                } else {
                    Observation::State(s)
                };
                st.feedback(slot, transmitted, o);
                prop_assert_eq!(st.status(), Status::Running);
            }
        }
    }
}
