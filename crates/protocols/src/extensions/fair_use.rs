//! Fair channel use after election (paper §4 building block) — and why
//! it is *hard* under jamming.
//!
//! Construction: first assign ranks `0..n−1` by n-selection (each clean
//! `Single` crowns the next rank, exactly [`crate::extensions::k_selection`]
//! with `k = n`), then run deterministic TDMA: in round-robin slot `t`
//! the station with rank `t mod n` transmits alone; the message is
//! delivered iff the slot is unjammed.
//!
//! The robustness caveat this module is built to expose: against
//! *oblivious* or *saturating* jammers the TDMA phase degrades everyone
//! equally (Jain index ≈ 1), but the schedule is public, so a **targeted**
//! jammer that spends its budget on one station's slots needs only a
//! `1/n` jam rate to starve that station completely — fairness despite
//! jamming needs more than a schedule (cf. Richa et al., ICDCS'11, cited
//! in §1.3). Experiment E19 quantifies this.

use crate::extensions::k_selection::run_k_selection;
use jle_adversary::AdversarySpec;
use jle_engine::SimConfig;
use jle_radio::{ChannelHistory, SlotTruth};
use rand::{rngs::SmallRng, SeedableRng};
use serde::{Deserialize, Serialize};

const ADV_SEED_XOR: u64 = 0x9E37_79B9_7F4A_7C15;

/// Result of a fair-use run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FairUseReport {
    /// Slots spent assigning ranks (the n-selection phase).
    pub setup_slots: u64,
    /// Delivered messages per rank over the TDMA phase.
    pub deliveries: Vec<u64>,
    /// TDMA slots played.
    pub tdma_slots: u64,
    /// TDMA slots jammed.
    pub jammed: u64,
    /// Whether rank assignment completed within the cap.
    pub setup_completed: bool,
}

impl FairUseReport {
    /// Deliveries as `f64` for fairness metrics.
    pub fn deliveries_f64(&self) -> Vec<f64> {
        self.deliveries.iter().map(|&d| d as f64).collect()
    }

    /// Aggregate throughput: delivered messages per TDMA slot.
    pub fn throughput(&self) -> f64 {
        if self.tdma_slots == 0 {
            0.0
        } else {
            self.deliveries.iter().sum::<u64>() as f64 / self.tdma_slots as f64
        }
    }
}

/// Assign ranks by n-selection, then run `rounds` full TDMA rounds
/// against `adversary`. Strong-CD only (inherited from the k-selection
/// driver).
pub fn run_fair_use(
    config: &SimConfig,
    adversary: &AdversarySpec,
    rounds: u64,
    eps: f64,
) -> FairUseReport {
    let n = config.n;
    let setup = run_k_selection(config, adversary, n, eps);
    let mut report = FairUseReport {
        setup_slots: setup.slots,
        deliveries: vec![0; n as usize],
        setup_completed: setup.completed,
        ..Default::default()
    };
    if !setup.completed {
        return report;
    }
    // TDMA phase: fresh budget/strategy state, same spec (the adversary
    // class is unchanged; its history continues conceptually, and a fresh
    // window is the adversary-friendly assumption).
    let mut strategy = adversary.strategy();
    let mut budget = adversary.budget();
    let mut adv_rng = SmallRng::seed_from_u64(config.seed ^ ADV_SEED_XOR ^ 0xF00D);
    let mut history = ChannelHistory::new(config.effective_retention(adversary.t_window));
    for t in 0..rounds * n {
        let want = strategy.decide(&history, &budget, &mut adv_rng);
        let jam = want && budget.can_jam();
        budget.advance(jam);
        let truth = SlotTruth::new(1, jam);
        history.push(&truth);
        report.tdma_slots += 1;
        report.jammed += jam as u64;
        if truth.is_clean_single() {
            report.deliveries[(t % n) as usize] += 1;
        }
    }
    report
}

/// The targeted jammer for E19: jams exactly the TDMA slots of rank
/// `victim` (schedule period `n`). Returns a spec whose scripted pattern
/// encodes the attack; budget parameters are taken from `base`.
pub fn targeted_tdma_jammer(base: &AdversarySpec, n: u64, victim: u64) -> AdversarySpec {
    let pattern: Vec<bool> = (0..n).map(|i| i == victim % n).collect();
    AdversarySpec::new(
        base.eps,
        base.t_window,
        jle_adversary::JamStrategyKind::Scripted { pattern, repeat: true },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use jle_adversary::{JamStrategyKind, Rate};
    use jle_analysis::fairness::{jain_index, min_share};
    use jle_radio::CdModel;

    fn config(n: u64, seed: u64) -> SimConfig {
        SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(2_000_000)
    }

    #[test]
    fn clean_channel_is_perfectly_fair() {
        let r = run_fair_use(&config(16, 3), &AdversarySpec::passive(), 20, 0.5);
        assert!(r.setup_completed);
        assert_eq!(r.tdma_slots, 320);
        assert!(r.deliveries.iter().all(|&d| d == 20));
        assert!((jain_index(&r.deliveries_f64()) - 1.0).abs() < 1e-12);
        assert!((r.throughput() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn saturating_jammer_degrades_everyone_roughly_equally() {
        let adv = AdversarySpec::new(Rate::from_f64(0.5), 8, JamStrategyKind::Saturating);
        let r = run_fair_use(&config(16, 5), &adv, 50, 0.5);
        assert!(r.setup_completed);
        let jain = jain_index(&r.deliveries_f64());
        assert!(jain > 0.85, "saturation should stay near-fair, jain = {jain}");
        // Throughput drops to roughly the unjammed fraction.
        assert!(r.throughput() < 0.8 && r.throughput() > 0.3, "tp {}", r.throughput());
    }

    #[test]
    fn targeted_jammer_starves_the_victim() {
        let n = 16u64;
        let base = AdversarySpec::new(Rate::from_f64(0.5), 8, JamStrategyKind::Saturating);
        let adv = targeted_tdma_jammer(&base, n, 0);
        let r = run_fair_use(&config(n, 7), &adv, 50, 0.5);
        assert!(r.setup_completed);
        // Rank 0's slots are exactly the jammed ones; with T = 8 and
        // eps = 1/2 the budget easily covers a 1/16 jam rate.
        assert_eq!(r.deliveries[0], 0, "victim must be starved");
        assert!(r.deliveries[1..].iter().all(|&d| d == 50), "others unharmed");
        assert!(min_share(&r.deliveries_f64()) == 0.0);
        let jain = jain_index(&r.deliveries_f64());
        assert!(jain < 0.95, "targeting must show up in the index, jain = {jain}");
    }

    #[test]
    fn incomplete_setup_reports_gracefully() {
        // A 2-slot cap cannot finish n-selection.
        let c = SimConfig::new(8, CdModel::Strong).with_seed(1).with_max_slots(2);
        let r = run_fair_use(&c, &AdversarySpec::passive(), 5, 0.5);
        assert!(!r.setup_completed);
        assert_eq!(r.tdma_slots, 0);
        assert_eq!(r.throughput(), 0.0);
    }
}
