//! Leader leases with re-election: keeping *one* leader alive in an
//! open world.
//!
//! The paper's protocols stop the moment a leader emerges. Once stations
//! can churn (join, leave, rejoin — see `jle_engine::churn`), a one-shot
//! election is not enough: the elected leader may depart, and the cohort
//! must notice and converge back to exactly one leader. [`LeaseProtocol`]
//! wraps any election protocol with the standard lease discipline:
//!
//! * **Leading** — the winner transmits a *lease beacon* every
//!   `beacon_period` slots (on the phase it won in) and verifies each
//!   beacon via strong-CD feedback: its own clean `Single` refreshes the
//!   lease in the shared [`LeaderLedger`]. `miss_tolerance` consecutive
//!   failed beacons (collisions with a rival leader's beacons, or heavy
//!   jamming) make it step down and re-enter election. Hearing a *rival's*
//!   clean beacon on a listen slot makes it abdicate immediately — the
//!   deterministic tie-breaker that resolves split brain without drawing
//!   randomness in `feedback`.
//! * **Following** — non-leaders run missed-beacon loss detection: a
//!   silence watchdog counting slots without any clean `Single`. When it
//!   fires, the station re-enters election; the timeout doubles after
//!   each firing (the same exponential-backoff discipline as
//!   [`Supervisor`]), so a cohort that keeps failing to elect under heavy
//!   jamming does not thrash.
//! * **Electing** — delegates to a fresh inner election instance (by
//!   default a [`Supervisor`]-wrapped LESK station, reusing its wedged-
//!   election watchdog). The inner station terminating as `Leader` or
//!   `NonLeader` moves this wrapper to Leading/Following; the wrapper
//!   itself always reports `Status::Running`, because open-world runs
//!   never terminate (`StopRule::Horizon`).
//!
//! Every re-election is recorded as a [`ReElectionRecord`] (and counted
//! on the ledger), ready for the flight recorder's `lease_lost` anomaly
//! kind.
//!
//! Beacon verification needs strong CD: only a strong-CD transmitter
//! observes the true channel state of its own slot. Under weak CD a
//! leader would assume every beacon collided and resign after
//! `miss_tolerance` periods, forever — run leases on
//! [`CdModel::Strong`](jle_radio::CdModel::Strong).

use crate::extensions::supervisor::{RestartFactory, Supervisor};
use jle_engine::{Action, LeaderLedger, Protocol, Status};
use jle_radio::cd::Observation;
use rand::RngCore;
use serde::Value;
use std::sync::Arc;

/// Lease timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseConfig {
    /// The leader transmits a beacon every `beacon_period` slots.
    pub beacon_period: u64,
    /// Consecutive failed beacons before the leader steps down and
    /// re-enters election.
    pub miss_tolerance: u32,
    /// Follower watchdog: slots without hearing any clean `Single`
    /// before re-entering election (initial value; doubles after each
    /// firing). Choose it comfortably above
    /// `beacon_period * miss_tolerance`, and build the shared
    /// [`LeaderLedger`] with a TTL of the same order so a departed
    /// leader's belief lapses on the lease timescale.
    pub lease_timeout: u64,
}

impl LeaseConfig {
    /// Sanity-checked constructor.
    ///
    /// # Panics
    /// Panics if any parameter is zero.
    pub fn new(beacon_period: u64, miss_tolerance: u32, lease_timeout: u64) -> Self {
        assert!(beacon_period > 0, "beacon period must be positive");
        assert!(miss_tolerance > 0, "miss tolerance must be positive");
        assert!(lease_timeout > 0, "lease timeout must be positive");
        LeaseConfig { beacon_period, miss_tolerance, lease_timeout }
    }
}

/// Why a station re-entered election.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseLossCause {
    /// A follower's missed-beacon watchdog fired: no clean `Single` for a
    /// whole lease timeout.
    Silence,
    /// A leader failed `miss_tolerance` consecutive beacons and stepped
    /// down.
    BeaconContention,
}

impl LeaseLossCause {
    /// Stable snake_case label for logs and flight-recorder artifacts.
    pub fn label(self) -> &'static str {
        match self {
            LeaseLossCause::Silence => "silence",
            LeaseLossCause::BeaconContention => "beacon_contention",
        }
    }
}

/// One lease loss (re-election entry), ready for a JSONL run log or
/// flight-recorder context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReElectionRecord {
    /// Slot whose feedback triggered the re-election.
    pub slot: u64,
    /// The station re-entering election.
    pub station: u64,
    /// What was lost (see [`LeaseLossCause`]).
    pub cause: LeaseLossCause,
    /// Zero-based index of this re-election on this station.
    pub reelection_index: u64,
}

impl ReElectionRecord {
    /// Render as a structured JSON object
    /// (`{"ev":"lease_lost","cause":"silence",...}`).
    pub fn to_json_value(&self) -> Value {
        Value::Map(vec![
            ("ev".into(), Value::Str("lease_lost".into())),
            ("slot".into(), Value::U64(self.slot)),
            ("station".into(), Value::U64(self.station)),
            ("cause".into(), Value::Str(self.cause.label().into())),
            ("reelection_index".into(), Value::U64(self.reelection_index)),
        ])
    }
}

/// Shared sink receiving every [`ReElectionRecord`] as it happens — wire
/// one across all stations of a trial to attribute lease losses.
pub type ReElectionSink = Arc<dyn Fn(&ReElectionRecord) + Send + Sync>;

enum Role {
    Electing(Box<dyn Protocol>),
    Leading { phase: u64, misses: u32 },
    Following { silence: u64 },
}

impl std::fmt::Debug for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Role::Electing(_) => f.write_str("Electing"),
            Role::Leading { phase, misses } => {
                f.debug_struct("Leading").field("phase", phase).field("misses", misses).finish()
            }
            Role::Following { silence } => {
                f.debug_struct("Following").field("silence", silence).finish()
            }
        }
    }
}

/// The lease wrapper (see module docs).
pub struct LeaseProtocol {
    station: u64,
    config: LeaseConfig,
    ledger: Arc<LeaderLedger>,
    factory: RestartFactory,
    role: Role,
    /// Current follower watchdog timeout (doubles per Silence firing).
    follower_timeout: u64,
    reelections: u64,
    log: Vec<ReElectionRecord>,
    sink: Option<ReElectionSink>,
}

impl LeaseProtocol {
    /// Station `station` running the election built by `factory` under
    /// the lease discipline, with beliefs registered on `ledger`.
    pub fn new(
        station: u64,
        config: LeaseConfig,
        ledger: Arc<LeaderLedger>,
        mut factory: RestartFactory,
    ) -> Self {
        let inner = factory();
        LeaseProtocol {
            station,
            config,
            ledger,
            factory,
            role: Role::Electing(inner),
            follower_timeout: config.lease_timeout,
            reelections: 0,
            log: Vec::new(),
            sink: None,
        }
    }

    /// Convenience: lease over a [`Supervisor`]-wrapped strong-CD LESK
    /// station (the wedged-election watchdog guards each election
    /// attempt, the lease guards the reign).
    pub fn over_supervised_lesk(
        station: u64,
        eps: f64,
        watchdog_window: u64,
        config: LeaseConfig,
        ledger: Arc<LeaderLedger>,
    ) -> Self {
        LeaseProtocol::new(
            station,
            config,
            ledger,
            Box::new(move || Box::new(Supervisor::over_lesk(eps, watchdog_window))),
        )
    }

    /// Builder: forward every [`ReElectionRecord`] to `sink` as it
    /// happens (in addition to keeping it in [`LeaseProtocol::log`]).
    pub fn with_reelection_sink(mut self, sink: ReElectionSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Whether this station currently believes it is the leader.
    pub fn is_leading(&self) -> bool {
        matches!(self.role, Role::Leading { .. })
    }

    /// Re-elections entered by this station so far.
    pub fn reelections(&self) -> u64 {
        self.reelections
    }

    /// Every lease loss so far, in order.
    pub fn log(&self) -> &[ReElectionRecord] {
        &self.log
    }

    fn reelect(&mut self, slot: u64, cause: LeaseLossCause) {
        let record = ReElectionRecord {
            slot,
            station: self.station,
            cause,
            reelection_index: self.reelections,
        };
        if let Some(sink) = &self.sink {
            sink(&record);
        }
        self.log.push(record);
        self.reelections += 1;
        self.ledger.renounce(self.station);
        self.ledger.note_reelection();
        self.role = Role::Electing((self.factory)());
    }

    fn become_leading(&mut self, slot: u64) {
        // Beacon on the phase of the *next* slot, so the fresh leader
        // announces its reign immediately.
        let phase = (slot + 1) % self.config.beacon_period;
        self.ledger.assert_leader(self.station, slot);
        self.role = Role::Leading { phase, misses: 0 };
    }
}

impl std::fmt::Debug for LeaseProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeaseProtocol")
            .field("station", &self.station)
            .field("role", &self.role)
            .field("reelections", &self.reelections)
            .finish_non_exhaustive()
    }
}

impl Protocol for LeaseProtocol {
    fn act(&mut self, slot: u64, rng: &mut dyn RngCore) -> Action {
        match &mut self.role {
            Role::Electing(inner) => inner.act(slot, rng),
            Role::Leading { phase, .. } => {
                if slot % self.config.beacon_period == *phase {
                    Action::Transmit
                } else {
                    Action::Listen
                }
            }
            Role::Following { .. } => Action::Listen,
        }
    }

    fn feedback(&mut self, slot: u64, transmitted: bool, obs: Observation) {
        match &mut self.role {
            Role::Electing(inner) => {
                inner.feedback(slot, transmitted, obs);
                match inner.status() {
                    Status::Leader => self.become_leading(slot),
                    Status::NonLeader => self.role = Role::Following { silence: 0 },
                    _ => {}
                }
            }
            Role::Leading { misses, .. } => {
                if transmitted {
                    // Beacon slot: strong CD lets the leader verify its
                    // own Single.
                    if obs.heard_single() {
                        *misses = 0;
                        self.ledger.assert_leader(self.station, slot);
                    } else {
                        *misses += 1;
                        if *misses >= self.config.miss_tolerance {
                            self.reelect(slot, LeaseLossCause::BeaconContention);
                        }
                    }
                } else if obs.heard_single() {
                    // A rival leader's clean beacon: abdicate. This is the
                    // deterministic split-brain resolver — beacons on
                    // different phases are heard by the other believer,
                    // and exactly one side steps down per heard beacon.
                    self.ledger.renounce(self.station);
                    self.role = Role::Following { silence: 0 };
                }
            }
            Role::Following { silence } => {
                if obs.heard_single() {
                    *silence = 0;
                } else {
                    *silence += 1;
                    if *silence >= self.follower_timeout {
                        // Back the watchdog off (Supervisor's discipline):
                        // repeated failed elections must not thrash.
                        self.follower_timeout = self.follower_timeout.saturating_mul(2);
                        self.reelect(slot, LeaseLossCause::Silence);
                    }
                }
            }
        }
    }

    fn status(&self) -> Status {
        // Never terminal: open-world stations keep running to the
        // horizon. Leadership belief lives in the ledger, not in the
        // engine's terminal-status machinery (which would put the station
        // to sleep forever).
        Status::Running
    }

    fn finished(&self) -> bool {
        false
    }

    fn estimate(&self) -> Option<f64> {
        match &self.role {
            Role::Electing(inner) => inner.estimate(),
            _ => None,
        }
    }

    fn state_probe(&self) -> Option<(&'static str, Option<f64>)> {
        match &self.role {
            Role::Electing(inner) => {
                Some(inner.state_probe().unwrap_or(("electing", inner.estimate())))
            }
            Role::Leading { misses, .. } => Some(("leading", Some(f64::from(*misses)))),
            Role::Following { silence } => Some(("following", Some(*silence as f64))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jle_engine::PerStation;
    use jle_engine::UniformProtocol;
    use jle_radio::ChannelState;
    use rand::{rngs::SmallRng, SeedableRng};

    #[derive(Debug, Clone)]
    struct Fixed(f64);
    impl UniformProtocol for Fixed {
        fn tx_prob(&mut self, _: u64) -> f64 {
            self.0
        }
        fn on_state(&mut self, _: u64, _: ChannelState) {}
    }

    fn lease(station: u64, p: f64, ledger: &Arc<LeaderLedger>) -> LeaseProtocol {
        LeaseProtocol::new(
            station,
            LeaseConfig::new(4, 2, 16),
            Arc::clone(ledger),
            Box::new(move || Box::new(PerStation::new(Fixed(p)))),
        )
    }

    fn single() -> Observation {
        Observation::State(ChannelState::Single)
    }

    fn null() -> Observation {
        Observation::State(ChannelState::Null)
    }

    #[test]
    fn winner_starts_beaconing_and_refreshes_the_lease() {
        let ledger = LeaderLedger::new(16);
        let mut p = lease(3, 1.0, &ledger);
        let mut rng = SmallRng::seed_from_u64(1);
        // Electing, always-transmit: first slot is its own clean Single.
        assert_eq!(p.act(0, &mut rng), Action::Transmit);
        p.feedback(0, true, single());
        assert!(p.is_leading());
        assert_eq!(ledger.live_believers(0), vec![3]);
        assert_eq!(p.status(), Status::Running, "lease stations never terminate");
        // Beacon phase is (0 + 1) % 4 = 1: listen on non-phase slots,
        // transmit on the phase.
        assert_eq!(p.act(1, &mut rng), Action::Transmit);
        p.feedback(1, true, single());
        assert_eq!(p.act(2, &mut rng), Action::Listen);
        p.feedback(2, false, null());
        assert_eq!(p.act(5, &mut rng), Action::Transmit, "next period, same phase");
        p.feedback(5, true, single());
        assert_eq!(ledger.live_believers(5), vec![3]);
        assert_eq!(p.reelections(), 0);
    }

    #[test]
    fn leader_steps_down_after_missed_beacons() {
        let ledger = LeaderLedger::new(16);
        let mut p = lease(0, 1.0, &ledger);
        p.feedback(0, true, single());
        assert!(p.is_leading());
        // Two consecutive beacons jammed (observed as Collision).
        p.feedback(1, true, Observation::State(ChannelState::Collision));
        assert!(p.is_leading(), "one miss is tolerated");
        p.feedback(5, true, Observation::State(ChannelState::Collision));
        assert!(!p.is_leading(), "miss_tolerance = 2 reached");
        assert_eq!(p.reelections(), 1);
        assert_eq!(p.log()[0].cause, LeaseLossCause::BeaconContention);
        assert_eq!(ledger.live_count(5), 0, "belief renounced");
        assert_eq!(ledger.reelections(), 1);
    }

    #[test]
    fn leader_abdicates_on_a_rival_beacon() {
        let ledger = LeaderLedger::new(16);
        let mut p = lease(0, 1.0, &ledger);
        p.feedback(0, true, single());
        assert!(p.is_leading());
        // A clean Single heard on a listen slot: someone else's beacon.
        p.feedback(2, false, single());
        assert!(!p.is_leading());
        assert_eq!(p.reelections(), 0, "abdication is not a re-election");
        assert_eq!(ledger.live_count(2), 0);
    }

    #[test]
    fn follower_watchdog_fires_and_backs_off() {
        let ledger = LeaderLedger::new(16);
        let mut p = lease(1, 0.0, &ledger);
        // Hear someone else win: Electing → Following.
        p.feedback(0, false, single());
        assert!(!p.is_leading());
        // 16 silent slots: the lease timeout fires.
        for slot in 1..=16 {
            p.feedback(slot, false, null());
        }
        assert_eq!(p.reelections(), 1);
        assert_eq!(p.log()[0].cause, LeaseLossCause::Silence);
        assert_eq!(p.follower_timeout, 32, "watchdog backed off");
        assert_eq!(ledger.reelections(), 1);
    }

    #[test]
    fn beacons_keep_the_follower_watchdog_quiet() {
        let ledger = LeaderLedger::new(16);
        let mut p = lease(1, 0.0, &ledger);
        p.feedback(0, false, single());
        // A beacon every 4th slot forever: never re-elects.
        for slot in 1..200u64 {
            let obs = if slot % 4 == 0 { single() } else { null() };
            p.feedback(slot, false, obs);
        }
        assert_eq!(p.reelections(), 0);
    }

    #[test]
    fn reelection_sink_sees_records() {
        use std::sync::Mutex;
        let ledger = LeaderLedger::new(16);
        let seen: Arc<Mutex<Vec<ReElectionRecord>>> = Arc::new(Mutex::new(Vec::new()));
        let sink: ReElectionSink = {
            let seen = Arc::clone(&seen);
            Arc::new(move |r| seen.lock().unwrap().push(*r))
        };
        let mut p = lease(5, 0.0, &ledger).with_reelection_sink(sink);
        p.feedback(0, false, single());
        for slot in 1..=16 {
            p.feedback(slot, false, null());
        }
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].station, 5);
        let v = seen[0].to_json_value();
        assert_eq!(v.get("ev").unwrap().as_str().unwrap(), "lease_lost");
        assert_eq!(v.get("cause").unwrap().as_str().unwrap(), "silence");
    }

    #[test]
    fn two_leaders_on_different_phases_resolve_by_abdication() {
        // Split brain by hand: stations 0 and 1 both believe they lead,
        // with beacon phases 1 and 3. When 1 hears 0's clean beacon, it
        // abdicates; 0 never hears a rival and keeps the lease.
        let ledger = LeaderLedger::new(64);
        let mut a = lease(0, 1.0, &ledger);
        let mut b = lease(1, 1.0, &ledger);
        a.feedback(0, true, single()); // phase 1
        b.feedback(2, true, single()); // phase 3
        assert_eq!(ledger.live_count(2), 2, "split brain");
        // Slot 5: a's beacon (phase 1), clean. b listens and hears it.
        a.feedback(5, true, single());
        b.feedback(5, false, single());
        assert!(a.is_leading());
        assert!(!b.is_leading());
        assert_eq!(ledger.live_believers(5), vec![0], "resolved to one believer");
    }

    #[test]
    #[should_panic(expected = "beacon period must be positive")]
    fn rejects_zero_beacon_period() {
        let _ = LeaseConfig::new(0, 1, 1);
    }
}
