//! k-selection: electing `k` distinct leaders (paper §4 building block).
//!
//! Strong-CD construction on top of LESK: run the LESK dynamics; each
//! clean `Single` crowns one more leader, who then *retires* (stops
//! transmitting); the remaining `n − i` stations continue with the same
//! estimate `u`. Because `u` is already in the regular band after the
//! first election — and `log₂(n − i) ≈ log₂ n` for `k ≪ n` — each
//! additional leader costs only `O(1/(ε·C(a)))` expected slots instead of
//! another full `O(log n)` run. The same `(T, 1−ε)` robustness argument
//! applies verbatim: jams read as collisions and are paid for by the
//! asymmetric update rule.
//!
//! The driver below is a thin slot loop over the same primitives the
//! cohort engine uses (`sample_transmitters`, `JamBudget`, strategy
//! dispatch), with a shrinking population.

use crate::lesk::LeskProtocol;
use jle_adversary::AdversarySpec;
use jle_engine::{sample_transmitters, SimConfig, UniformProtocol};
use jle_radio::{CdModel, ChannelHistory, ChannelState, SlotTruth};
use rand::{rngs::SmallRng, SeedableRng};
use serde::{Deserialize, Serialize};

const ADV_SEED_XOR: u64 = 0x9E37_79B9_7F4A_7C15;

/// Result of a k-selection run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KSelectionReport {
    /// Slot at which the i-th leader was crowned (length = leaders found).
    pub election_slots: Vec<u64>,
    /// Total slots simulated.
    pub slots: u64,
    /// Whether all `k` leaders were found within the cap.
    pub completed: bool,
    /// Jammed slots.
    pub jammed: u64,
}

impl KSelectionReport {
    /// Slots between consecutive elections (first entry = slots to the
    /// first leader).
    pub fn gaps(&self) -> Vec<u64> {
        let mut prev = 0u64;
        self.election_slots
            .iter()
            .map(|&s| {
                let gap = s - prev;
                prev = s + 1;
                gap
            })
            .collect()
    }
}

/// Elect `k` leaders among `config.n` stations with LESK(ε) dynamics in
/// strong-CD, against `adversary`.
///
/// # Panics
/// Panics if `k == 0`, `k > config.n`, or `config.cd != Strong` (the
/// construction relies on winners knowing they won; under weak-CD wrap
/// each round in `Notification` instead).
pub fn run_k_selection(
    config: &SimConfig,
    adversary: &AdversarySpec,
    k: u64,
    eps: f64,
) -> KSelectionReport {
    assert!(k >= 1, "k must be positive");
    assert!(k <= config.n, "cannot elect more leaders than stations");
    assert_eq!(config.cd, CdModel::Strong, "k-selection driver is strong-CD only");
    let mut proto = LeskProtocol::new(eps);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut adv_rng = SmallRng::seed_from_u64(config.seed ^ ADV_SEED_XOR);
    let mut strategy = adversary.strategy();
    let mut budget = adversary.budget();
    let mut history = ChannelHistory::new(config.effective_retention(adversary.t_window));
    let mut remaining = config.n;
    let mut report = KSelectionReport::default();

    for slot in 0..config.max_slots {
        let want = strategy.decide(&history, &budget, &mut adv_rng);
        let jam = want && budget.can_jam();
        budget.advance(jam);
        let p = proto.tx_prob(slot);
        let tx = sample_transmitters(remaining, p, &mut rng);
        let truth = SlotTruth::new(tx, jam);
        history.push(&truth);
        report.slots = slot + 1;
        report.jammed += jam as u64;
        if truth.is_clean_single() {
            // One more leader crowned; it retires from the population.
            report.election_slots.push(slot);
            remaining -= 1;
            if report.election_slots.len() as u64 == k {
                report.completed = true;
                break;
            }
            // The estimate is already calibrated; keep it.
            continue;
        }
        let state = truth.observed();
        debug_assert_ne!(state, ChannelState::Single);
        proto.on_state(slot, state);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use jle_adversary::{JamStrategyKind, Rate};
    use jle_engine::MonteCarlo;

    fn config(n: u64, seed: u64) -> SimConfig {
        SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(1_000_000)
    }

    #[test]
    fn finds_k_leaders() {
        let r = run_k_selection(&config(256, 3), &AdversarySpec::passive(), 8, 0.5);
        assert!(r.completed);
        assert_eq!(r.election_slots.len(), 8);
        // Election slots are strictly increasing.
        assert!(r.election_slots.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn later_leaders_come_much_faster_than_the_first() {
        let mc = MonteCarlo::new(20, 500);
        let ratios = mc.collect_f64(|seed| {
            let r = run_k_selection(&config(1024, seed), &AdversarySpec::passive(), 10, 0.5);
            assert!(r.completed);
            let gaps = r.gaps();
            let first = gaps[0] as f64;
            let rest: f64 = gaps[1..].iter().map(|&g| g as f64).sum::<f64>() / 9.0;
            rest / first
        });
        let med = jle_analysis_median(&ratios);
        assert!(
            med < 0.5,
            "additional leaders should be much cheaper than the first (ratio {med})"
        );
    }

    fn jle_analysis_median(xs: &[f64]) -> f64 {
        let mut v = xs.to_vec();
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    }

    #[test]
    fn works_under_jamming() {
        let adv = AdversarySpec::new(Rate::from_f64(0.5), 16, JamStrategyKind::Saturating);
        let r = run_k_selection(&config(256, 9), &adv, 5, 0.5);
        assert!(r.completed);
        assert!(r.jammed > 0);
    }

    #[test]
    fn k_equals_n_selects_everyone() {
        let r = run_k_selection(&config(8, 1), &AdversarySpec::passive(), 8, 0.5);
        assert!(r.completed);
        assert_eq!(r.election_slots.len(), 8);
    }

    #[test]
    #[should_panic(expected = "cannot elect more leaders than stations")]
    fn rejects_k_above_n() {
        let _ = run_k_selection(&config(4, 1), &AdversarySpec::passive(), 5, 0.5);
    }

    #[test]
    #[should_panic(expected = "strong-CD only")]
    fn rejects_weak_cd() {
        let c = SimConfig::new(8, CdModel::Weak).with_seed(1).with_max_slots(100);
        let _ = run_k_selection(&c, &AdversarySpec::passive(), 2, 0.5);
    }

    #[test]
    fn gaps_reconstruct_slots() {
        let r = KSelectionReport {
            election_slots: vec![10, 12, 40],
            slots: 41,
            completed: true,
            jammed: 0,
        };
        assert_eq!(r.gaps(), vec![10, 1, 27]);
    }
}
