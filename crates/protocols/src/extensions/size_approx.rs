//! Jamming-robust network-size approximation (paper §4 building block).
//!
//! Run the LESK estimate dynamics for a fixed horizon without stopping at
//! `Single`s and output `2^ū`, where `ū` averages the estimate over the
//! final quarter of the horizon. The same argument that confines LESK's
//! `u` to the regular band (Section 2.2) confines the output to
//! `[n / (2 ln a), n · 2√a]` against any `(T, 1−ε)` adversary: jams can
//! push the estimate only `ε/8` per slot upward and every genuine `Null`
//! pulls it a full unit down, so the band — and hence the approximation
//! factor — is adversary-independent up to the `a = 8/ε` constants.
//!
//! To keep the cohort lockstep sound in weak-CD we treat an observed
//! `Single` exactly like a `Collision` (`u += ε/8`): busy is busy. This
//! also means the protocol is *anonymous* — it never needs to know who
//! transmitted.

use crate::broadcast::tx_probability;
use jle_engine::UniformProtocol;
use jle_radio::ChannelState;

/// Live size-approximation state.
#[derive(Debug, Clone)]
pub struct SizeApproxProtocol {
    increment: f64,
    horizon: u64,
    slots_seen: u64,
    u: f64,
    /// Sum of `u` over the averaging window (final quarter).
    tail_sum: f64,
    tail_count: u64,
}

impl SizeApproxProtocol {
    /// Approximate for `horizon` slots with robustness parameter `eps`.
    ///
    /// # Panics
    /// Panics unless `0 < eps < 1` and `horizon >= 4`.
    pub fn new(eps: f64, horizon: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        assert!(horizon >= 4, "horizon too short to average");
        SizeApproxProtocol {
            increment: eps / 8.0,
            horizon,
            slots_seen: 0,
            u: 0.0,
            tail_sum: 0.0,
            tail_count: 0,
        }
    }

    /// The size estimate `2^ū`, meaningful once finished (or at any point
    /// after the averaging window opened).
    pub fn estimate_n(&self) -> f64 {
        let u_bar =
            if self.tail_count > 0 { self.tail_sum / self.tail_count as f64 } else { self.u };
        u_bar.exp2()
    }

    /// The current raw estimate `u`.
    pub fn u(&self) -> f64 {
        self.u
    }
}

impl UniformProtocol for SizeApproxProtocol {
    fn tx_prob(&mut self, _slot: u64) -> f64 {
        tx_probability(self.u)
    }

    fn on_state(&mut self, _slot: u64, state: ChannelState) {
        match state {
            ChannelState::Null => self.u = (self.u - 1.0).max(0.0),
            // Busy is busy: Single and Collision both bump the estimate,
            // keeping weak-CD cohorts in lockstep (see module docs).
            ChannelState::Single | ChannelState::Collision => self.u += self.increment,
        }
        self.slots_seen += 1;
        if self.slots_seen * 4 >= self.horizon * 3 {
            self.tail_sum += self.u;
            self.tail_count += 1;
        }
    }

    fn finished(&self) -> bool {
        self.slots_seen >= self.horizon
    }

    fn estimate(&self) -> Option<f64> {
        Some(self.u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
    use jle_engine::{run_cohort_with, MonteCarlo, SimConfig};
    use jle_radio::CdModel;

    fn approx(n: u64, eps: f64, adv: &AdversarySpec, seed: u64) -> f64 {
        let horizon = 400 + 40 * (n as f64).log2() as u64;
        let config = SimConfig::new(n, CdModel::Strong)
            .with_seed(seed)
            .with_max_slots(horizon + 10)
            .with_continue_past_singles(true);
        let (report, proto) =
            run_cohort_with(&config, adv, || SizeApproxProtocol::new(eps, horizon));
        assert!(!report.timed_out);
        proto.estimate_n()
    }

    #[test]
    fn approximates_within_band_clean_channel() {
        let eps = 0.5;
        let a: f64 = 16.0;
        for &n in &[64u64, 1024, 65_536] {
            let est = approx(n, eps, &AdversarySpec::passive(), 5);
            let lo = n as f64 / (2.0 * a.ln()) / 2.0; // band low + slack
            let hi = n as f64 * 2.0 * a.sqrt() * 2.0; // band high + slack
            assert!(est >= lo && est <= hi, "n={n}: estimate {est} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn approximates_under_saturating_jammer() {
        let eps = 0.5;
        let a: f64 = 16.0;
        let adv = AdversarySpec::new(Rate::from_f64(eps), 16, JamStrategyKind::Saturating);
        let mc = MonteCarlo::new(10, 99);
        let n = 4096u64;
        let ok = mc.success_rate(|seed| {
            let est = approx(n, eps, &adv, seed);
            est >= n as f64 / (4.0 * a.ln()) && est <= n as f64 * 4.0 * a.sqrt()
        });
        assert!(ok >= 0.9, "in-band rate {ok}");
    }

    #[test]
    fn jamming_biases_up_but_boundedly() {
        // The adversary can only push the estimate upward; check the
        // direction of the bias and its ceiling.
        let eps = 0.5;
        let n = 1024u64;
        let clean = approx(n, eps, &AdversarySpec::passive(), 7);
        let jam = AdversarySpec::new(Rate::from_f64(eps), 16, JamStrategyKind::Saturating);
        let jammed = approx(n, eps, &jam, 7);
        assert!(
            jammed >= clean * 0.5,
            "jamming should not push the estimate down (clean {clean}, jammed {jammed})"
        );
        assert!(jammed <= (n as f64) * 16.0, "bias must stay within the band");
    }

    #[test]
    #[should_panic(expected = "horizon too short")]
    fn rejects_tiny_horizon() {
        let _ = SizeApproxProtocol::new(0.5, 2);
    }
}
