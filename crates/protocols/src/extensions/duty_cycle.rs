//! Duty-cycled LESK — the energy/latency trade-off (extension).
//!
//! The paper measures time, not energy, but its authors study
//! energy-efficient election elsewhere (their ref [13]). This extension
//! duty-cycles LESK: a station is awake only in slots
//! `slot ≡ phase (mod period)` and sleeps otherwise (no listening cost,
//! no observation). Staggered phases partition the network into `period`
//! interleaved sub-networks of `n/period` stations, each running LESK on
//! its own slot comb with a *personal* estimate (stations no longer share
//! a history, so this is not a uniform protocol — exact engine only).
//!
//! Expected behaviour (measured in E23): per-station listening energy
//! drops by ≈ `period×`, while the election slows because (a) each
//! sub-network updates its estimate only every `period` slots and (b) the
//! first `Single` now needs one sub-network of size `n/period` to
//! resolve. Jam-robustness is inherited: each comb sees a `(T/period,
//! 1−ε)`-ish projection of the jamming pattern, and the asymmetric update
//! rule applies unchanged.

use crate::lesk::LeskProtocol;
use jle_engine::{Action, PerStation, Protocol, Status};
use jle_radio::Observation;
use rand::RngCore;

/// Duty-cycled LESK station.
pub struct DutyCycledLesk {
    inner: PerStation<LeskProtocol>,
    period: u64,
    phase: u64,
}

impl DutyCycledLesk {
    /// Awake in slots `≡ phase (mod period)`; `period = 1` is plain LESK.
    ///
    /// # Panics
    /// Panics if `period == 0`.
    pub fn new(eps: f64, period: u64, phase: u64) -> Self {
        assert!(period >= 1, "period must be positive");
        DutyCycledLesk {
            inner: PerStation::new(LeskProtocol::new(eps)),
            period,
            phase: phase % period,
        }
    }

    /// Whether the station is awake in the given slot.
    #[inline]
    pub fn awake(&self, slot: u64) -> bool {
        slot % self.period == self.phase
    }
}

impl Protocol for DutyCycledLesk {
    fn act(&mut self, slot: u64, rng: &mut dyn RngCore) -> Action {
        if self.awake(slot) {
            self.inner.act(slot, rng)
        } else {
            Action::Sleep
        }
    }

    fn feedback(&mut self, slot: u64, transmitted: bool, obs: Observation) {
        // The engine only delivers feedback for slots we participated in.
        debug_assert!(self.awake(slot) || transmitted);
        self.inner.feedback(slot, transmitted, obs);
    }

    fn status(&self) -> Status {
        self.inner.status()
    }

    fn finished(&self) -> bool {
        self.inner.finished()
    }

    fn estimate(&self) -> Option<f64> {
        self.inner.estimate()
    }

    fn wake_hint(&self, slot: u64) -> u64 {
        // Next on-phase slot strictly after `slot`. Off-phase acts draw
        // no randomness and touch no state, so the active-set backend can
        // skip straight to it — this is what turns a period-`p` network
        // into an O(n/p)-per-slot simulation.
        let next = slot + 1;
        let rem = next % self.period;
        next + (self.phase + self.period - rem) % self.period
    }

    fn reset(&mut self) -> bool {
        // period/phase are construction-time constants; only the wrapped
        // LESK walk carries run state.
        self.inner.reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
    use jle_engine::{run_exact, MonteCarlo, SimConfig};
    use jle_radio::CdModel;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn sleeps_off_phase() {
        let mut st = DutyCycledLesk::new(0.5, 4, 1);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(st.act(0, &mut rng), Action::Sleep);
        assert_ne!(st.act(1, &mut rng), Action::Sleep);
        assert_eq!(st.act(2, &mut rng), Action::Sleep);
        assert_eq!(st.act(3, &mut rng), Action::Sleep);
        assert_ne!(st.act(5, &mut rng), Action::Sleep);
    }

    #[test]
    fn wake_hint_names_the_next_on_phase_slot() {
        let st = DutyCycledLesk::new(0.5, 4, 1);
        assert_eq!(st.wake_hint(0), 1);
        assert_eq!(st.wake_hint(1), 5);
        assert_eq!(st.wake_hint(2), 5);
        assert_eq!(st.wake_hint(4), 5);
        assert_eq!(st.wake_hint(5), 9);
        let plain = DutyCycledLesk::new(0.5, 1, 0);
        for slot in 0..8 {
            assert_eq!(plain.wake_hint(slot), slot + 1, "period 1 wakes every slot");
        }
        // Contract check: every slot in (slot, hint) really is Sleep.
        let mut probe = DutyCycledLesk::new(0.5, 16, 11);
        let mut rng = SmallRng::seed_from_u64(2);
        for slot in 0..64u64 {
            let hint = probe.wake_hint(slot);
            for t in slot + 1..hint {
                assert_eq!(probe.act(t, &mut rng), Action::Sleep, "slot {slot} hint {hint} t {t}");
            }
            assert_ne!(probe.act(hint, &mut rng), Action::Sleep, "hint slot must be on-phase");
        }
    }

    #[test]
    fn fast_backend_matches_legacy_engine_on_duty_cycle() {
        // Same protocol through both exact backends: not bit-identical
        // (different streams), but both must elect, and the fast backend
        // must see the duty-cycled listen savings too.
        use jle_engine::run_fast_exact;
        let config = SimConfig::new(64, CdModel::Strong).with_seed(14).with_max_slots(1_000_000);
        let legacy = run_exact(&config, &AdversarySpec::passive(), |i| {
            Box::new(DutyCycledLesk::new(0.5, 4, i))
        });
        let fast = run_fast_exact(&config, &AdversarySpec::passive(), |i| {
            Box::new(DutyCycledLesk::new(0.5, 4, i))
        });
        assert!(legacy.leader_elected() && fast.leader_elected());
        let rate = |r: &jle_engine::RunReport| r.energy.listens as f64 / r.slots as f64;
        assert!(rate(&fast) < 64.0 / 2.0, "fast backend keeps the duty-cycle savings");
        assert!((rate(&fast) - rate(&legacy)).abs() < 8.0, "similar listen rates across backends");
    }

    #[test]
    fn period_one_is_plain_lesk() {
        let st = DutyCycledLesk::new(0.5, 1, 7);
        for slot in 0..10 {
            assert!(st.awake(slot));
        }
    }

    #[test]
    fn elects_with_duty_cycling() {
        let n = 64u64;
        let mc = MonteCarlo::new(10, 33);
        let ok = mc.success_rate(|seed| {
            let config =
                SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(1_000_000);
            let r = run_exact(&config, &AdversarySpec::passive(), |i| {
                Box::new(DutyCycledLesk::new(0.5, 4, i))
            });
            r.leader_elected()
        });
        assert_eq!(ok, 1.0);
    }

    #[test]
    fn saves_listening_energy() {
        let n = 64u64;
        let run = |period: u64| {
            let config = SimConfig::new(n, CdModel::Strong).with_seed(5).with_max_slots(1_000_000);
            run_exact(&config, &AdversarySpec::passive(), move |i| {
                Box::new(DutyCycledLesk::new(0.5, period, i))
            })
        };
        let full = run(1);
        let cycled = run(8);
        assert!(full.leader_elected() && cycled.leader_elected());
        // Listening per slot drops by ~the duty factor.
        let rate_full = full.energy.listens as f64 / full.slots as f64;
        let rate_cycled = cycled.energy.listens as f64 / cycled.slots as f64;
        assert!(
            rate_cycled < rate_full / 4.0,
            "listen rates: full {rate_full}, cycled {rate_cycled}"
        );
    }

    #[test]
    fn survives_jamming() {
        let spec = AdversarySpec::new(Rate::from_f64(0.5), 16, JamStrategyKind::Saturating);
        let config = SimConfig::new(48, CdModel::Strong).with_seed(9).with_max_slots(2_000_000);
        let r = run_exact(&config, &spec, |i| Box::new(DutyCycledLesk::new(0.5, 4, i)));
        assert!(r.leader_elected());
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn rejects_zero_period() {
        let _ = DutyCycledLesk::new(0.5, 0, 0);
    }
}
