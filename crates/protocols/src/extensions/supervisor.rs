//! Restart-with-backoff supervision: graceful degradation for elections
//! whose stations live beyond the paper's perfect-station model.
//!
//! The paper's protocols assume every station runs flawlessly forever.
//! [`Supervisor`] wraps any per-station [`Protocol`] with a *silence
//! watchdog*: if no unjammed `Single` has been observed for a whole
//! watchdog window, the inner election is presumed wedged (crashed
//! peers, missed wakeups, corrupted estimates — see
//! `jle_engine::faults`) and is restarted from fresh state, with the
//! window doubling each restart (exponential backoff, so a merely *slow*
//! election is eventually left alone).
//!
//! Two properties matter and are tested:
//!
//! * **Transparency** — until the first watchdog expiry the wrapper
//!   delegates `act` verbatim (same RNG draws, same actions), so a
//!   supervised run is slot-for-slot identical to a bare run that
//!   resolves within the first window. Supervision is free insurance for
//!   healthy elections.
//! * **Safety** — the supervisor never fabricates an observation and
//!   never restarts a terminated station: a heard `Single` still
//!   terminates the inner protocol, so validity is untouched and the
//!   adversary's budget accounting is unaffected.

use crate::lesk::LeskProtocol;
use jle_engine::{PerStation, Protocol, Status};
use jle_radio::cd::Observation;
use jle_telemetry::{Counter, MetricRegistry};
use rand::RngCore;
use serde::Value;
use std::sync::Arc;

/// Factory building a fresh inner election instance on each (re)start.
pub type RestartFactory = Box<dyn FnMut() -> Box<dyn Protocol> + Send>;

/// Shared sink receiving every [`RestartRecord`] as it happens — wire one
/// across all stations of a trial to attribute restarts in a run log or
/// flight recorder.
pub type RestartSink = Arc<dyn Fn(&RestartRecord) + Send + Sync>;

/// Doublings after which further backoff is classified as
/// [`RestartCause::Cap`]: the watchdog has grown `2^10` times past its
/// initial window, so restarting is no longer plausibly productive and
/// the run is presumed headed for the slot cap. Classification only —
/// the supervisor still restarts (behaviour is unchanged).
pub const BACKOFF_CAP_DOUBLINGS: u32 = 10;

/// Why a [`Supervisor`] watchdog fired, classified from what the station
/// itself observed during the silent window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartCause {
    /// The silent window saw channel activity (collisions, jammed slots,
    /// or this station's own transmissions): the election is live but
    /// not resolving — wedged by contention or jamming.
    Wedged,
    /// The silent window was entirely `Null` and this station never
    /// transmitted: the network went dark mid-election, consistent with
    /// crashed or asleep peers (including a crashed would-be leader).
    Crashed,
    /// The watchdog had already backed off [`BACKOFF_CAP_DOUBLINGS`]
    /// times: restarts stopped being productive and the run is presumed
    /// headed for the slot cap.
    Cap,
}

impl RestartCause {
    /// Stable snake_case label for logs and flight-recorder artifacts.
    pub fn label(self) -> &'static str {
        match self {
            RestartCause::Wedged => "wedged",
            RestartCause::Crashed => "crashed",
            RestartCause::Cap => "cap",
        }
    }
}

/// One watchdog firing, ready for a JSONL run log or flight-recorder
/// context (see [`RestartRecord::to_json_value`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartRecord {
    /// Slot whose feedback fired the watchdog.
    pub slot: u64,
    /// Classified cause (see [`RestartCause`]).
    pub cause: RestartCause,
    /// The window that expired (pre-backoff).
    pub window: u64,
    /// Consecutive silent slots when the watchdog fired (== `window`).
    pub silence: u64,
    /// Zero-based index of this restart on this station.
    pub restart_index: u32,
}

impl RestartRecord {
    /// Render as a structured JSON object
    /// (`{"ev":"supervisor_restart","cause":"wedged",...}`).
    pub fn to_json_value(&self) -> Value {
        Value::Map(vec![
            ("ev".into(), Value::Str("supervisor_restart".into())),
            ("slot".into(), Value::U64(self.slot)),
            ("cause".into(), Value::Str(self.cause.label().into())),
            ("window".into(), Value::U64(self.window)),
            ("silence".into(), Value::U64(self.silence)),
            ("restart_index".into(), Value::U64(self.restart_index as u64)),
        ])
    }
}

/// The supervisor's `jle-metrics-v1` counter family: restarts by
/// classified cause, so experiment runs can attribute restarts straight
/// from a metrics snapshot instead of parsing flight-recorder artifacts.
///
/// Wire it with [`SupervisorMetrics::restart_sink`]:
///
/// ```
/// use jle_protocols::extensions::{Supervisor, SupervisorMetrics};
/// use jle_telemetry::MetricRegistry;
///
/// let registry = MetricRegistry::new();
/// let metrics = SupervisorMetrics::register(&registry);
/// let sup = Supervisor::over_lesk(0.5, 1024).with_restart_sink(metrics.restart_sink());
/// # let _ = sup;
/// ```
#[derive(Debug, Clone)]
pub struct SupervisorMetrics {
    /// `jle_supervisor_restarts_wedged_total` — [`RestartCause::Wedged`].
    pub wedged_total: Counter,
    /// `jle_supervisor_restarts_crashed_total` — [`RestartCause::Crashed`].
    pub crashed_total: Counter,
    /// `jle_supervisor_restarts_cap_total` — [`RestartCause::Cap`].
    pub cap_total: Counter,
}

impl SupervisorMetrics {
    /// Register (or fetch) the family on `registry`.
    pub fn register(registry: &MetricRegistry) -> Self {
        SupervisorMetrics {
            wedged_total: registry.counter(
                "jle_supervisor_restarts_wedged_total",
                "supervisor restarts classified as wedged (busy channel, no resolution)",
            ),
            crashed_total: registry.counter(
                "jle_supervisor_restarts_crashed_total",
                "supervisor restarts classified as crashed (dark network)",
            ),
            cap_total: registry.counter(
                "jle_supervisor_restarts_cap_total",
                "supervisor restarts past the backoff cap",
            ),
        }
    }

    /// Bump the counter for one classified restart.
    pub fn count(&self, cause: RestartCause) {
        match cause {
            RestartCause::Wedged => self.wedged_total.inc(),
            RestartCause::Crashed => self.crashed_total.inc(),
            RestartCause::Cap => self.cap_total.inc(),
        }
    }

    /// Restarts counted so far, across all causes.
    pub fn total(&self) -> u64 {
        self.wedged_total.get() + self.crashed_total.get() + self.cap_total.get()
    }

    /// A [`RestartSink`] that feeds these counters; composable with any
    /// additional sink the caller keeps.
    pub fn restart_sink(&self) -> RestartSink {
        let metrics = self.clone();
        Arc::new(move |r| metrics.count(r.cause))
    }
}

/// A per-station restart supervisor (see module docs).
pub struct Supervisor {
    factory: RestartFactory,
    inner: Box<dyn Protocol>,
    initial_window: u64,
    window: u64,
    silence: u64,
    restarts: u32,
    /// Whether the current silent window saw any channel activity.
    busy_in_window: bool,
    restart_log: Vec<RestartRecord>,
    sink: Option<RestartSink>,
}

impl Supervisor {
    /// Supervise the election built by `factory`, restarting it whenever
    /// `watchdog_window` consecutive observed slots pass without an
    /// unjammed `Single`; the window doubles after each restart.
    ///
    /// # Panics
    /// Panics if `watchdog_window` is zero.
    pub fn new(watchdog_window: u64, mut factory: RestartFactory) -> Self {
        assert!(watchdog_window > 0, "watchdog window must be positive");
        let inner = factory();
        Supervisor {
            factory,
            inner,
            initial_window: watchdog_window,
            window: watchdog_window,
            silence: 0,
            restarts: 0,
            busy_in_window: false,
            restart_log: Vec::new(),
            sink: None,
        }
    }

    /// Builder: forward every [`RestartRecord`] to `sink` as it happens
    /// (in addition to keeping it in [`Supervisor::restart_log`]). The
    /// sink is shared (`Arc`), so one sink can aggregate restarts across
    /// all stations of a trial.
    pub fn with_restart_sink(mut self, sink: RestartSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Convenience: a supervised strong-CD LESK station.
    pub fn over_lesk(eps: f64, watchdog_window: u64) -> Self {
        Supervisor::new(
            watchdog_window,
            Box::new(move || Box::new(PerStation::new(LeskProtocol::new(eps)))),
        )
    }

    /// Number of restarts performed so far.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// The current (possibly backed-off) watchdog window.
    pub fn current_window(&self) -> u64 {
        self.window
    }

    /// The window the supervisor was created with.
    pub fn initial_window(&self) -> u64 {
        self.initial_window
    }

    /// Consecutive observed slots without an unjammed `Single`.
    pub fn silence(&self) -> u64 {
        self.silence
    }

    /// Every watchdog firing so far, in order, with its classified cause.
    pub fn restart_log(&self) -> &[RestartRecord] {
        &self.restart_log
    }

    fn classify(&self) -> RestartCause {
        if self.restarts >= BACKOFF_CAP_DOUBLINGS {
            RestartCause::Cap
        } else if self.busy_in_window {
            RestartCause::Wedged
        } else {
            RestartCause::Crashed
        }
    }
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("window", &self.window)
            .field("silence", &self.silence)
            .field("restarts", &self.restarts)
            .finish_non_exhaustive()
    }
}

impl Protocol for Supervisor {
    fn act(&mut self, slot: u64, rng: &mut dyn RngCore) -> jle_engine::Action {
        self.inner.act(slot, rng)
    }

    fn feedback(&mut self, slot: u64, transmitted: bool, obs: Observation) {
        let heard = obs.heard_single();
        let busy = transmitted || !matches!(obs.effective_state(), jle_radio::ChannelState::Null);
        self.inner.feedback(slot, transmitted, obs);
        if heard {
            self.silence = 0;
            self.busy_in_window = false;
            return;
        }
        self.silence += 1;
        self.busy_in_window |= busy;
        // A finished station (an Estimation-style probe that has its
        // answer) is quiet by design, not wedged — never restart it.
        if self.silence >= self.window && !self.inner.status().terminal() && !self.inner.finished()
        {
            // Presumed wedged: re-run the election from fresh state and
            // back the watchdog off so a slow-but-live election is not
            // restarted forever.
            let record = RestartRecord {
                slot,
                cause: self.classify(),
                window: self.window,
                silence: self.silence,
                restart_index: self.restarts,
            };
            if let Some(sink) = &self.sink {
                sink(&record);
            }
            self.restart_log.push(record);
            self.inner = (self.factory)();
            self.silence = 0;
            self.busy_in_window = false;
            self.window = self.window.saturating_mul(2);
            self.restarts += 1;
        }
    }

    fn status(&self) -> Status {
        self.inner.status()
    }

    fn finished(&self) -> bool {
        self.inner.finished()
    }

    fn estimate(&self) -> Option<f64> {
        self.inner.estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jle_adversary::AdversarySpec;
    use jle_engine::{run_exact, SimConfig, UniformProtocol};
    use jle_radio::{CdModel, ChannelState};

    #[derive(Debug, Clone)]
    struct Fixed(f64);
    impl UniformProtocol for Fixed {
        fn tx_prob(&mut self, _: u64) -> f64 {
            self.0
        }
        fn on_state(&mut self, _: u64, _: ChannelState) {}
    }

    fn null_obs() -> Observation {
        Observation::State(ChannelState::Null)
    }

    #[test]
    fn watchdog_restarts_after_silence_and_backs_off() {
        let mut sup = Supervisor::new(4, Box::new(|| Box::new(PerStation::new(Fixed(0.0)))));
        for slot in 0..3 {
            sup.feedback(slot, false, null_obs());
        }
        assert_eq!(sup.restarts(), 0);
        sup.feedback(3, false, null_obs());
        assert_eq!(sup.restarts(), 1, "4 silent slots fire the watchdog");
        assert_eq!(sup.current_window(), 8, "window doubles");
        assert_eq!(sup.silence(), 0);
        for slot in 4..12 {
            sup.feedback(slot, false, null_obs());
        }
        assert_eq!(sup.restarts(), 2);
        assert_eq!(sup.current_window(), 16);
    }

    #[test]
    fn heard_single_resets_the_watchdog() {
        let mut sup = Supervisor::new(4, Box::new(|| Box::new(PerStation::new(Fixed(0.0)))));
        sup.feedback(0, false, null_obs());
        sup.feedback(1, false, null_obs());
        sup.feedback(2, false, Observation::State(ChannelState::Single));
        // The Single terminated the inner station (NonLeader) and reset
        // the silence counter; no restart can follow.
        assert_eq!(sup.silence(), 0);
        assert_eq!(sup.status(), Status::NonLeader);
        for slot in 3..100 {
            sup.feedback(slot, false, null_obs());
        }
        assert_eq!(sup.restarts(), 0, "terminated stations are never restarted");
    }

    #[test]
    fn restart_resets_inner_state() {
        // Inner LESK: drive u up with collisions, fire the watchdog, and
        // check the estimate came back to 0 (fresh instance).
        let mut sup = Supervisor::over_lesk(0.5, 8);
        for slot in 0..7 {
            sup.feedback(slot, false, Observation::State(ChannelState::Collision));
        }
        assert!(sup.estimate().unwrap() > 0.0);
        sup.feedback(7, false, Observation::State(ChannelState::Collision));
        assert_eq!(sup.restarts(), 1);
        assert_eq!(sup.estimate(), Some(0.0), "restart loses the estimate");
    }

    #[test]
    fn transparent_until_first_expiry() {
        // A supervised election that resolves within the first watchdog
        // window is slot-for-slot identical to the bare run.
        let config = SimConfig::new(8, CdModel::Strong).with_seed(21).with_max_slots(50_000);
        let adv = AdversarySpec::passive();
        let bare = run_exact(&config, &adv, |_| Box::new(PerStation::new(LeskProtocol::new(0.5))));
        let supervised =
            run_exact(&config, &adv, |_| Box::new(Supervisor::over_lesk(0.5, 1 << 20)));
        assert_eq!(bare.resolved_at, supervised.resolved_at);
        assert_eq!(bare.winner, supervised.winner);
        assert_eq!(bare.counts, supervised.counts);
        assert_eq!(bare.energy, supervised.energy);
    }

    #[test]
    #[should_panic(expected = "watchdog window must be positive")]
    fn rejects_zero_window() {
        let _ = Supervisor::new(0, Box::new(|| Box::new(PerStation::new(Fixed(0.0)))));
    }

    #[test]
    fn restart_causes_are_classified_and_logged() {
        let mut sup = Supervisor::new(4, Box::new(|| Box::new(PerStation::new(Fixed(0.0)))));
        // First window: all-Null silence, station never transmitted.
        for slot in 0..4 {
            sup.feedback(slot, false, null_obs());
        }
        // Second window (now 8 slots): collisions — a live but blocked
        // election.
        for slot in 4..12 {
            sup.feedback(slot, false, Observation::State(ChannelState::Collision));
        }
        let log = sup.restart_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].cause, RestartCause::Crashed, "dark network reads as crashed peers");
        assert_eq!((log[0].slot, log[0].window, log[0].restart_index), (3, 4, 0));
        assert_eq!(log[1].cause, RestartCause::Wedged, "busy channel reads as wedged");
        assert_eq!((log[1].slot, log[1].window, log[1].restart_index), (11, 8, 1));
        let v = log[1].to_json_value();
        assert_eq!(v.get("ev").unwrap().as_str().unwrap(), "supervisor_restart");
        assert_eq!(v.get("cause").unwrap().as_str().unwrap(), "wedged");
        assert_eq!(v.get("window").unwrap().as_u64().unwrap(), 8);
    }

    #[test]
    fn own_transmission_marks_the_window_busy() {
        let mut sup = Supervisor::new(4, Box::new(|| Box::new(PerStation::new(Fixed(0.0)))));
        sup.feedback(0, true, null_obs());
        for slot in 1..4 {
            sup.feedback(slot, false, null_obs());
        }
        assert_eq!(sup.restart_log()[0].cause, RestartCause::Wedged);
    }

    #[test]
    fn deep_backoff_is_classified_as_cap() {
        let mut sup = Supervisor::new(1, Box::new(|| Box::new(PerStation::new(Fixed(0.0)))));
        let mut slot = 0u64;
        while sup.restarts() <= BACKOFF_CAP_DOUBLINGS {
            sup.feedback(slot, false, null_obs());
            slot += 1;
        }
        let log = sup.restart_log();
        let last = log.last().unwrap();
        assert_eq!(last.restart_index, BACKOFF_CAP_DOUBLINGS);
        assert_eq!(last.cause, RestartCause::Cap, "past the backoff cap");
        assert_eq!(log[log.len() - 2].cause, RestartCause::Crashed, "one earlier is still normal");
    }

    #[test]
    fn metrics_sink_attributes_restarts_by_cause() {
        let registry = MetricRegistry::new();
        let metrics = SupervisorMetrics::register(&registry);
        let mut sup = Supervisor::new(4, Box::new(|| Box::new(PerStation::new(Fixed(0.0)))))
            .with_restart_sink(metrics.restart_sink());
        // Window 1 (4 slots): dark network → crashed.
        for slot in 0..4 {
            sup.feedback(slot, false, null_obs());
        }
        // Window 2 (8 slots): collisions → wedged.
        for slot in 4..12 {
            sup.feedback(slot, false, Observation::State(ChannelState::Collision));
        }
        assert_eq!(metrics.crashed_total.get(), 1);
        assert_eq!(metrics.wedged_total.get(), 1);
        assert_eq!(metrics.cap_total.get(), 0);
        assert_eq!(metrics.total(), 2);
    }

    #[test]
    fn restart_sink_sees_records_across_stations() {
        use std::sync::Mutex;
        let seen: Arc<Mutex<Vec<RestartRecord>>> = Arc::new(Mutex::new(Vec::new()));
        let sink: RestartSink = {
            let seen = Arc::clone(&seen);
            Arc::new(move |r| seen.lock().unwrap().push(*r))
        };
        let mut a = Supervisor::new(2, Box::new(|| Box::new(PerStation::new(Fixed(0.0)))))
            .with_restart_sink(Arc::clone(&sink));
        let mut b = Supervisor::new(2, Box::new(|| Box::new(PerStation::new(Fixed(0.0)))))
            .with_restart_sink(sink);
        for slot in 0..2 {
            a.feedback(slot, false, null_obs());
            b.feedback(slot, false, null_obs());
        }
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 2, "one restart per station reached the shared sink");
        assert!(seen.iter().all(|r| r.cause == RestartCause::Crashed));
    }
}
