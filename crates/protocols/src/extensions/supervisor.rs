//! Restart-with-backoff supervision: graceful degradation for elections
//! whose stations live beyond the paper's perfect-station model.
//!
//! The paper's protocols assume every station runs flawlessly forever.
//! [`Supervisor`] wraps any per-station [`Protocol`] with a *silence
//! watchdog*: if no unjammed `Single` has been observed for a whole
//! watchdog window, the inner election is presumed wedged (crashed
//! peers, missed wakeups, corrupted estimates — see
//! `jle_engine::faults`) and is restarted from fresh state, with the
//! window doubling each restart (exponential backoff, so a merely *slow*
//! election is eventually left alone).
//!
//! Two properties matter and are tested:
//!
//! * **Transparency** — until the first watchdog expiry the wrapper
//!   delegates `act` verbatim (same RNG draws, same actions), so a
//!   supervised run is slot-for-slot identical to a bare run that
//!   resolves within the first window. Supervision is free insurance for
//!   healthy elections.
//! * **Safety** — the supervisor never fabricates an observation and
//!   never restarts a terminated station: a heard `Single` still
//!   terminates the inner protocol, so validity is untouched and the
//!   adversary's budget accounting is unaffected.

use crate::lesk::LeskProtocol;
use jle_engine::{PerStation, Protocol, Status};
use jle_radio::cd::Observation;
use rand::RngCore;

/// Factory building a fresh inner election instance on each (re)start.
pub type RestartFactory = Box<dyn FnMut() -> Box<dyn Protocol> + Send>;

/// A per-station restart supervisor (see module docs).
pub struct Supervisor {
    factory: RestartFactory,
    inner: Box<dyn Protocol>,
    initial_window: u64,
    window: u64,
    silence: u64,
    restarts: u32,
}

impl Supervisor {
    /// Supervise the election built by `factory`, restarting it whenever
    /// `watchdog_window` consecutive observed slots pass without an
    /// unjammed `Single`; the window doubles after each restart.
    ///
    /// # Panics
    /// Panics if `watchdog_window` is zero.
    pub fn new(watchdog_window: u64, mut factory: RestartFactory) -> Self {
        assert!(watchdog_window > 0, "watchdog window must be positive");
        let inner = factory();
        Supervisor {
            factory,
            inner,
            initial_window: watchdog_window,
            window: watchdog_window,
            silence: 0,
            restarts: 0,
        }
    }

    /// Convenience: a supervised strong-CD LESK station.
    pub fn over_lesk(eps: f64, watchdog_window: u64) -> Self {
        Supervisor::new(
            watchdog_window,
            Box::new(move || Box::new(PerStation::new(LeskProtocol::new(eps)))),
        )
    }

    /// Number of restarts performed so far.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// The current (possibly backed-off) watchdog window.
    pub fn current_window(&self) -> u64 {
        self.window
    }

    /// The window the supervisor was created with.
    pub fn initial_window(&self) -> u64 {
        self.initial_window
    }

    /// Consecutive observed slots without an unjammed `Single`.
    pub fn silence(&self) -> u64 {
        self.silence
    }
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("window", &self.window)
            .field("silence", &self.silence)
            .field("restarts", &self.restarts)
            .finish_non_exhaustive()
    }
}

impl Protocol for Supervisor {
    fn act(&mut self, slot: u64, rng: &mut dyn RngCore) -> jle_engine::Action {
        self.inner.act(slot, rng)
    }

    fn feedback(&mut self, slot: u64, transmitted: bool, obs: Observation) {
        let heard = obs.heard_single();
        self.inner.feedback(slot, transmitted, obs);
        if heard {
            self.silence = 0;
            return;
        }
        self.silence += 1;
        // A finished station (an Estimation-style probe that has its
        // answer) is quiet by design, not wedged — never restart it.
        if self.silence >= self.window && !self.inner.status().terminal() && !self.inner.finished()
        {
            // Presumed wedged: re-run the election from fresh state and
            // back the watchdog off so a slow-but-live election is not
            // restarted forever.
            self.inner = (self.factory)();
            self.silence = 0;
            self.window = self.window.saturating_mul(2);
            self.restarts += 1;
        }
    }

    fn status(&self) -> Status {
        self.inner.status()
    }

    fn finished(&self) -> bool {
        self.inner.finished()
    }

    fn estimate(&self) -> Option<f64> {
        self.inner.estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jle_adversary::AdversarySpec;
    use jle_engine::{run_exact, SimConfig, UniformProtocol};
    use jle_radio::{CdModel, ChannelState};

    #[derive(Debug, Clone)]
    struct Fixed(f64);
    impl UniformProtocol for Fixed {
        fn tx_prob(&mut self, _: u64) -> f64 {
            self.0
        }
        fn on_state(&mut self, _: u64, _: ChannelState) {}
    }

    fn null_obs() -> Observation {
        Observation::State(ChannelState::Null)
    }

    #[test]
    fn watchdog_restarts_after_silence_and_backs_off() {
        let mut sup = Supervisor::new(4, Box::new(|| Box::new(PerStation::new(Fixed(0.0)))));
        for slot in 0..3 {
            sup.feedback(slot, false, null_obs());
        }
        assert_eq!(sup.restarts(), 0);
        sup.feedback(3, false, null_obs());
        assert_eq!(sup.restarts(), 1, "4 silent slots fire the watchdog");
        assert_eq!(sup.current_window(), 8, "window doubles");
        assert_eq!(sup.silence(), 0);
        for slot in 4..12 {
            sup.feedback(slot, false, null_obs());
        }
        assert_eq!(sup.restarts(), 2);
        assert_eq!(sup.current_window(), 16);
    }

    #[test]
    fn heard_single_resets_the_watchdog() {
        let mut sup = Supervisor::new(4, Box::new(|| Box::new(PerStation::new(Fixed(0.0)))));
        sup.feedback(0, false, null_obs());
        sup.feedback(1, false, null_obs());
        sup.feedback(2, false, Observation::State(ChannelState::Single));
        // The Single terminated the inner station (NonLeader) and reset
        // the silence counter; no restart can follow.
        assert_eq!(sup.silence(), 0);
        assert_eq!(sup.status(), Status::NonLeader);
        for slot in 3..100 {
            sup.feedback(slot, false, null_obs());
        }
        assert_eq!(sup.restarts(), 0, "terminated stations are never restarted");
    }

    #[test]
    fn restart_resets_inner_state() {
        // Inner LESK: drive u up with collisions, fire the watchdog, and
        // check the estimate came back to 0 (fresh instance).
        let mut sup = Supervisor::over_lesk(0.5, 8);
        for slot in 0..7 {
            sup.feedback(slot, false, Observation::State(ChannelState::Collision));
        }
        assert!(sup.estimate().unwrap() > 0.0);
        sup.feedback(7, false, Observation::State(ChannelState::Collision));
        assert_eq!(sup.restarts(), 1);
        assert_eq!(sup.estimate(), Some(0.0), "restart loses the estimate");
    }

    #[test]
    fn transparent_until_first_expiry() {
        // A supervised election that resolves within the first watchdog
        // window is slot-for-slot identical to the bare run.
        let config = SimConfig::new(8, CdModel::Strong).with_seed(21).with_max_slots(50_000);
        let adv = AdversarySpec::passive();
        let bare = run_exact(&config, &adv, |_| Box::new(PerStation::new(LeskProtocol::new(0.5))));
        let supervised =
            run_exact(&config, &adv, |_| Box::new(Supervisor::over_lesk(0.5, 1 << 20)));
        assert_eq!(bare.resolved_at, supervised.resolved_at);
        assert_eq!(bare.winner, supervised.winner);
        assert_eq!(bare.counts, supervised.counts);
        assert_eq!(bare.energy, supervised.energy);
    }

    #[test]
    #[should_panic(expected = "watchdog window must be positive")]
    fn rejects_zero_window() {
        let _ = Supervisor::new(0, Box::new(|| Box::new(PerStation::new(Fixed(0.0)))));
    }
}
