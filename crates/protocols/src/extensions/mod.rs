//! Extensions built from the paper's primitives (Section 4: "we believe
//! that some of the presented procedures can be also used as building
//! blocks in constructions of other protocols including size
//! approximation, k-selection or fair use of the wireless channel").
//!
//! * [`SizeApproxProtocol`] — jamming-robust network-size approximation
//!   from LESK's estimate dynamics;
//! * [`k_selection`] — electing `k` distinct leaders by continuing the
//!   LESK dynamics past each `Single`, with winners retiring;
//! * [`fair_use`] — rank assignment + TDMA, built to expose why fair use
//!   *despite jamming* needs more than a public schedule;
//! * [`supervisor`] — restart-with-backoff supervision of a per-station
//!   election, for stations that crash, oversleep, or mis-sense
//!   (experiment E24);
//! * [`lease`] — leader leases with missed-beacon loss detection and
//!   re-election, for open-world (churn) runs that must converge back to
//!   one leader after leader departure or partition (experiment E25).
//!
//! These are *our* constructions following the paper's suggestion; the
//! paper proves nothing about them, so the corresponding experiments
//! (E16/E17) report measured behaviour only.

pub mod duty_cycle;
pub mod fair_use;
pub mod k_selection;
pub mod lease;
pub mod size_approx;
pub mod supervisor;

pub use duty_cycle::DutyCycledLesk;
pub use fair_use::{run_fair_use, targeted_tdma_jammer, FairUseReport};
pub use k_selection::{run_k_selection, KSelectionReport};
pub use lease::{LeaseConfig, LeaseLossCause, LeaseProtocol, ReElectionRecord, ReElectionSink};
pub use size_approx::SizeApproxProtocol;
pub use supervisor::{
    RestartCause, RestartFactory, RestartRecord, RestartSink, Supervisor, SupervisorMetrics,
    BACKOFF_CAP_DOUBLINGS,
};
