//! The `Broadcast(u)` primitive (Functions 1 and 3 of the paper).
//!
//! Both the strong-CD and weak-CD variants "transmit with probability
//! `2^{-u}`"; the difference is only in the returned feedback, which in
//! this codebase is handled by the engine's observation model
//! (`jle_radio::cd::observe`): a weak-CD transmitter receives
//! `TxAssumedCollision`, exactly Function 3's "if transmitted then return
//! Collision".

/// Memoized integer ladder: `POW2_NEG[k] = 2^{-k}` exactly, by bit
/// pattern (`(1023 − k) << 52` is the IEEE-754 double with exponent
/// `−k` and an all-zero mantissa). Willard/backoff-style protocols step
/// `u` through whole levels every slot, so the common case becomes a
/// table load instead of an `exp2` call.
const POW2_NEG_LEVELS: usize = 64;
const POW2_NEG: [f64; POW2_NEG_LEVELS] = {
    let mut table = [0.0; POW2_NEG_LEVELS];
    let mut k = 0;
    while k < POW2_NEG_LEVELS {
        table[k] = f64::from_bits((1023 - k as u64) << 52);
        k += 1;
    }
    table
};

/// Transmission probability for estimate `u`: `2^{-u}`, clamped to `[0,1]`.
///
/// `u` may be any non-negative real (LESK moves it in steps of `ε/8`);
/// values so large that `2^{-u}` underflows simply yield probability 0.
/// Whole-number estimates below 64 hit a constant table whose entries
/// are bit-identical to `(-u).exp2()`, so memoization is invisible to
/// golden fixtures.
#[inline]
pub fn tx_probability(u: f64) -> f64 {
    if u <= 0.0 {
        return 1.0;
    }
    let k = u as usize;
    if k < POW2_NEG_LEVELS && u == k as f64 {
        return POW2_NEG[k];
    }
    (-u).exp2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powers_of_two() {
        assert_eq!(tx_probability(0.0), 1.0);
        assert_eq!(tx_probability(1.0), 0.5);
        assert_eq!(tx_probability(3.0), 0.125);
        assert!((tx_probability(10.0) - 1.0 / 1024.0).abs() < 1e-15);
    }

    #[test]
    fn fractional_estimates() {
        let p = tx_probability(0.5);
        assert!((p - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn extremes() {
        assert_eq!(tx_probability(-1.0), 1.0);
        assert_eq!(tx_probability(5000.0), 0.0, "underflow clamps to zero");
        assert!(tx_probability(1074.0) >= 0.0);
    }

    #[test]
    fn table_is_bitwise_identical_to_exp2() {
        for k in 0..64u32 {
            let u = k as f64;
            assert_eq!(
                tx_probability(u).to_bits(),
                (-u).exp2().to_bits(),
                "level {k} must be exact — memoization may not shift any golden fixture"
            );
        }
        // Just past the table: still exp2, still continuous.
        assert_eq!(tx_probability(64.0).to_bits(), (-64.0f64).exp2().to_bits());
        // Fractional estimates never hit the table.
        for u in [0.125, 1.5, 33.25, 63.875] {
            assert_eq!(tx_probability(u).to_bits(), (-u).exp2().to_bits());
        }
    }
}
