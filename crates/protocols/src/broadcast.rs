//! The `Broadcast(u)` primitive (Functions 1 and 3 of the paper).
//!
//! Both the strong-CD and weak-CD variants "transmit with probability
//! `2^{-u}`"; the difference is only in the returned feedback, which in
//! this codebase is handled by the engine's observation model
//! (`jle_radio::cd::observe`): a weak-CD transmitter receives
//! `TxAssumedCollision`, exactly Function 3's "if transmitted then return
//! Collision".

/// Transmission probability for estimate `u`: `2^{-u}`, clamped to `[0,1]`.
///
/// `u` may be any non-negative real (LESK moves it in steps of `ε/8`);
/// values so large that `2^{-u}` underflows simply yield probability 0.
#[inline]
pub fn tx_probability(u: f64) -> f64 {
    if u <= 0.0 {
        1.0
    } else {
        (-u).exp2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powers_of_two() {
        assert_eq!(tx_probability(0.0), 1.0);
        assert_eq!(tx_probability(1.0), 0.5);
        assert_eq!(tx_probability(3.0), 0.125);
        assert!((tx_probability(10.0) - 1.0 / 1024.0).abs() < 1e-15);
    }

    #[test]
    fn fractional_estimates() {
        let p = tx_probability(0.5);
        assert!((p - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn extremes() {
        assert_eq!(tx_probability(-1.0), 1.0);
        assert_eq!(tx_probability(5000.0), 0.0, "underflow clamps to zero");
        assert!(tx_probability(1074.0) >= 0.0);
    }
}
