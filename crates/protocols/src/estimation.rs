//! The `Estimation(L)` primitive (Function 2, Lemma 2.8).
//!
//! Doubling probe for `max{log log n, log T}`:
//!
//! ```text
//! for round = 1, 2, … :
//!     repeat 2^round times: Broadcast(2^round)     // tx prob 2^(−2^round)
//!     if (number of Nulls in this round) ≥ L: return round
//! ```
//!
//! Lemma 2.8 (`L = 2`, `n ≥ 115`): with probability ≥ 1 − 2/n², against
//! any `(T, 1−ε)`-adversary, the function either obtains a `Single`
//! (electing a leader early) or returns `i` with
//! `log log n − 1 ≤ i ≤ max{log log n, log T} + 1`, in
//! `O(max{log n, T})` slots. LESU seeds its schedule with
//! `t₀ = c · 2^{1+Estimation(2)}`.

use crate::broadcast::tx_probability;
use jle_engine::UniformProtocol;
use jle_radio::ChannelState;

/// Largest round we allow (`2^62` slots is far beyond any run cap).
const MAX_ROUND: u32 = 62;

/// Live `Estimation(L)` state.
#[derive(Debug, Clone)]
pub struct EstimationProtocol {
    l_threshold: u64,
    round: u32,
    slots_left_in_round: u64,
    nulls_this_round: u64,
    result: Option<u32>,
}

impl EstimationProtocol {
    /// Create `Estimation(L)`; the paper uses `L = 2`.
    ///
    /// # Panics
    /// Panics if `l_threshold == 0`.
    pub fn new(l_threshold: u64) -> Self {
        assert!(l_threshold >= 1, "L must be positive");
        EstimationProtocol {
            l_threshold,
            round: 1,
            slots_left_in_round: 2,
            nulls_this_round: 0,
            result: None,
        }
    }

    /// The paper's instantiation, `Estimation(2)`.
    pub fn paper() -> Self {
        EstimationProtocol::new(2)
    }

    /// The returned round, once finished.
    #[inline]
    pub fn result(&self) -> Option<u32> {
        self.result
    }

    /// The current round number.
    #[inline]
    pub fn round(&self) -> u32 {
        self.round
    }
}

impl UniformProtocol for EstimationProtocol {
    fn tx_prob(&mut self, _slot: u64) -> f64 {
        // Broadcast(2^round): transmit with probability 2^(−2^round).
        tx_probability((1u64 << self.round.min(MAX_ROUND)) as f64)
    }

    fn on_state(&mut self, _slot: u64, state: ChannelState) {
        if self.result.is_some() {
            return;
        }
        if state == ChannelState::Null {
            self.nulls_this_round += 1;
        }
        self.slots_left_in_round -= 1;
        if self.slots_left_in_round == 0 {
            if self.nulls_this_round >= self.l_threshold {
                self.result = Some(self.round);
            } else {
                self.round = (self.round + 1).min(MAX_ROUND);
                self.slots_left_in_round = 1u64 << self.round;
                self.nulls_this_round = 0;
            }
        }
    }

    fn finished(&self) -> bool {
        self.result.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
    use jle_engine::{run_cohort_with, MonteCarlo, SimConfig};
    use jle_radio::CdModel;

    #[test]
    fn round_lengths_double() {
        let mut e = EstimationProtocol::new(99); // threshold unreachable early
        assert_eq!(e.round(), 1);
        // Round 1: 2 slots.
        e.on_state(0, ChannelState::Collision);
        e.on_state(1, ChannelState::Collision);
        assert_eq!(e.round(), 2);
        // Round 2: 4 slots.
        for s in 2..6 {
            e.on_state(s, ChannelState::Collision);
        }
        assert_eq!(e.round(), 3);
        assert!(!e.finished());
    }

    #[test]
    fn returns_when_nulls_reach_threshold() {
        let mut e = EstimationProtocol::new(2);
        e.on_state(0, ChannelState::Collision);
        e.on_state(1, ChannelState::Null);
        assert!(!e.finished(), "one Null < L = 2");
        // Round 2: two Nulls anywhere in the round suffice.
        e.on_state(2, ChannelState::Null);
        e.on_state(3, ChannelState::Collision);
        e.on_state(4, ChannelState::Null);
        e.on_state(5, ChannelState::Collision);
        assert_eq!(e.result(), Some(2));
        assert!(e.finished());
    }

    #[test]
    fn transmission_probability_is_doubly_exponential() {
        let mut e = EstimationProtocol::new(2);
        assert!((e.tx_prob(0) - 0.25).abs() < 1e-15, "round 1: 2^-2");
        e.on_state(0, ChannelState::Collision);
        e.on_state(1, ChannelState::Collision);
        assert!((e.tx_prob(2) - 0.0625).abs() < 1e-15, "round 2: 2^-4");
    }

    #[test]
    fn output_respects_lemma_2_8_window_without_adversary() {
        // n = 4096: log log n = log2(12) ≈ 3.58; window is
        // [floor(3.58)-1, 3.58+1] → rounds 2..=4 (T = 1: the T term
        // vanishes). The run may instead end in a Single — also allowed.
        let n = 4096u64;
        let mc = MonteCarlo::new(40, 31);
        let ok = mc.success_rate(|seed| {
            let config = SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(100_000);
            let (report, proto) =
                run_cohort_with(&config, &AdversarySpec::passive(), EstimationProtocol::paper);
            if report.resolved_at.is_some() {
                return true; // Single counts as success per Lemma 2.8
            }
            let i = proto.result().expect("finished without Single") as f64;
            let loglog = (n as f64).log2().log2();
            i >= loglog.floor() - 1.0 && i <= loglog.ceil() + 1.0
        });
        assert!(ok >= 0.95, "success rate {ok}");
    }

    #[test]
    fn jamming_delays_but_stays_bounded() {
        // With T = 64 and a saturating eps=1/2 jammer, Lemma 2.8 allows
        // returns up to max{loglog n, log T} + 1 = 7.
        let n = 256u64;
        let spec = AdversarySpec::new(Rate::from_f64(0.5), 64, JamStrategyKind::Saturating);
        let mc = MonteCarlo::new(25, 900);
        let ok = mc.success_rate(|seed| {
            let config = SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(100_000);
            let (report, proto) = run_cohort_with(&config, &spec, EstimationProtocol::paper);
            if report.resolved_at.is_some() {
                return true;
            }
            proto.result().is_some_and(|r| (2..=7).contains(&r))
        });
        assert!(ok >= 0.9, "success rate {ok}");
    }

    #[test]
    #[should_panic(expected = "L must be positive")]
    fn rejects_zero_threshold() {
        let _ = EstimationProtocol::new(0);
    }
}
