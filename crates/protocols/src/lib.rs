//! # jle-protocols — the paper's protocols and their baselines
//!
//! The core crate of the reproduction of *Electing a Leader in Wireless
//! Networks Quickly Despite Jamming* (Klonowski & Pająk, SPAA 2015):
//!
//! | paper artifact | module |
//! |---|---|
//! | `Broadcast(u)` (Functions 1 & 3) | [`broadcast`] |
//! | LESK(ε) — Algorithm 1, Theorem 2.6 | [`lesk`] |
//! | `Estimation(L)` — Function 2, Lemma 2.8 | [`estimation`] |
//! | LESU — Algorithm 2, Theorem 2.9 | [`lesu`] |
//! | `Notification` / LEWK / LEWU — Function 4, Lemma 3.1, Thms 3.2–3.3 | [`notification`] |
//! | slot taxonomy IS/IC/CS/CC/E/R — Section 2.2, Lemmas 2.2–2.5 | [`classify`] |
//! | Lemma 2.1 bounds & runtime shapes | [`math`] |
//! | comparison protocols (§1.3) | [`baselines`] |
//! | multi-hop cluster elections (LESK per cluster + merge) | [`cluster`] |
//!
//! All selection-resolution protocols implement
//! [`jle_engine::UniformProtocol`] and run on both the cohort and the
//! exact engine; the role-splitting `Notification` wrapper implements the
//! per-station [`jle_engine::Protocol`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod broadcast;
pub mod classify;
pub mod cluster;
pub mod estimation;
pub mod extensions;
pub mod lesk;
pub mod lesu;
pub mod math;
pub mod notification;

pub use baselines::{ArssMacProtocol, BackoffProtocol, WillardProtocol};
pub use classify::SlotTaxonomy;
pub use cluster::{ClusterElection, ClusterMessage};
pub use estimation::EstimationProtocol;
pub use extensions::{
    run_fair_use, run_k_selection, targeted_tdma_jammer, DutyCycledLesk, FairUseReport,
    KSelectionReport, LeaseConfig, LeaseLossCause, LeaseProtocol, ReElectionRecord, ReElectionSink,
    RestartCause, RestartFactory, RestartRecord, RestartSink, SizeApproxProtocol, Supervisor,
    SupervisorMetrics, BACKOFF_CAP_DOUBLINGS,
};
pub use lesk::LeskProtocol;
pub use lesu::LesuProtocol;
pub use notification::{lewk, lewu, Notification};
