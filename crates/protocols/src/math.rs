//! Probability facts (Lemma 2.1) and the paper's theory curves.
//!
//! The exact slot-state probabilities for `n` stations transmitting
//! independently with probability `p`:
//!
//! * `P[Null]      = (1 − p)^n`
//! * `P[Single]    = n·p·(1 − p)^{n−1}`
//! * `P[Collision] = 1 − P[Null] − P[Single]`
//!
//! and the Lemma 2.1 bounds for `p = 1/(x·n)`, which the analysis (and
//! our test suite) leans on. The theory-curve functions reproduce the
//! asymptotic bounds of Theorems 2.6/2.9 and Lemma 2.7 up to their
//! (unspecified) constants; experiments overlay measurements on them.

/// Exact `P[Null]` for `n` stations at probability `p`.
#[inline]
pub fn p_null(n: u64, p: f64) -> f64 {
    (1.0 - p).powi(n as i32)
}

/// Exact `P[Single]`.
#[inline]
pub fn p_single(n: u64, p: f64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    n as f64 * p * (1.0 - p).powi(n as i32 - 1)
}

/// Exact `P[Collision]` (complement).
#[inline]
pub fn p_collision(n: u64, p: f64) -> f64 {
    (1.0 - p_null(n, p) - p_single(n, p)).max(0.0)
}

/// Lemma 2.1 upper bound on `P[Null]` at `p = 1/(x·n)`: `e^{−1/x}`.
#[inline]
pub fn lemma21_null_upper(x: f64) -> f64 {
    (-1.0 / x).exp()
}

/// Lemma 2.1 upper bound on `P[Collision]` at `p = 1/(x·n)`: `1/x²`.
#[inline]
pub fn lemma21_collision_upper(x: f64) -> f64 {
    1.0 / (x * x)
}

/// Lemma 2.1 lower bound on `P[Single]` at `p = 1/(x·n)`:
/// `(1/x)·e^{−1/x}`.
#[inline]
pub fn lemma21_single_lower_exp(x: f64) -> f64 {
    (1.0 / x) * (-1.0 / x).exp()
}

/// Lemma 2.1 second lower bound on `P[Single]`: `1/x − 1/x²`.
#[inline]
pub fn lemma21_single_lower_poly(x: f64) -> f64 {
    1.0 / x - 1.0 / (x * x)
}

/// Lemma 2.4's per-regular-slot `Single` probability floor
/// `C = ln(a)/a²` with `a = 8/ε`.
#[inline]
pub fn regular_slot_single_floor(eps: f64) -> f64 {
    let a = 8.0 / eps;
    a.ln() / (a * a)
}

/// Theorem 2.6 runtime shape for LESK:
/// `max{T, log₂ n / (ε³ · log₂(1/ε))}` (constant factors omitted).
#[inline]
pub fn lesk_runtime_shape(n: u64, eps: f64, t_window: u64) -> f64 {
    let log_n = (n.max(2) as f64).log2();
    let denom = eps.powi(3) * (1.0 / eps).log2().max(f64::MIN_POSITIVE);
    (t_window as f64).max(log_n / denom)
}

/// Lemma 2.7 lower-bound shape: `max{T, (1/ε)·log₂ n}`.
#[inline]
pub fn lower_bound_shape(n: u64, eps: f64, t_window: u64) -> f64 {
    let log_n = (n.max(2) as f64).log2();
    (t_window as f64).max(log_n / eps)
}

/// Theorem 2.9 runtime shape for LESU (both cases).
#[inline]
pub fn lesu_runtime_shape(n: u64, eps: f64, t_window: u64) -> f64 {
    let log_n = (n.max(2) as f64).log2();
    let log_inv_eps = (1.0 / eps).log2().max(1.0);
    let threshold = log_n / (eps.powi(3) * log_inv_eps);
    let t = t_window as f64;
    if t <= threshold {
        (log_inv_eps.log2().max(1.0)) / eps.powi(3) * log_n
    } else {
        let a = (t / (eps * log_n)).log2().max(1.0).log2().max(1.0);
        let b = log_inv_eps * log_inv_eps.log2().max(1.0);
        a.max(b) * t
    }
}

/// ARSS'14 (Awerbuch et al.) leader-election runtime shape used as the
/// comparison curve in E5/E7: `O(log⁴ n)` for `T = O(log n)` and
/// `O(T log T)` for large `T` (their Section on leader election).
#[inline]
pub fn arss_runtime_shape(n: u64, t_window: u64) -> f64 {
    let log_n = (n.max(2) as f64).log2();
    let t = t_window as f64;
    (log_n.powi(4)).max(t * t.log2().max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_probabilities_sum_to_one() {
        for &n in &[1u64, 2, 10, 1000] {
            for &p in &[0.0, 1e-6, 0.01, 0.5, 1.0] {
                let total = p_null(n, p) + p_single(n, p) + p_collision(n, p);
                assert!(
                    (total - 1.0).abs() < 1e-9 || p_collision(n, p) == 0.0,
                    "n={n} p={p} total={total}"
                );
            }
        }
    }

    #[test]
    fn single_maximized_near_one_over_n() {
        let n = 1000u64;
        let at_opt = p_single(n, 1.0 / n as f64);
        assert!(at_opt > 0.36, "P[Single] at p=1/n approaches 1/e");
        assert!(p_single(n, 10.0 / n as f64) < at_opt);
        assert!(p_single(n, 0.1 / n as f64) < at_opt);
    }

    #[test]
    fn lemma21_bounds_hold_exactly() {
        // Check all four bounds against the exact probabilities across a
        // grid of n and x — this is a direct numeric verification of
        // Lemma 2.1.
        for &n in &[2u64, 10, 100, 10_000] {
            for &x in &[0.5, 1.0, 2.0, 4.0, 16.0] {
                let p = (1.0 / (x * n as f64)).min(1.0);
                assert!(
                    p_null(n, p) <= lemma21_null_upper(x) + 1e-12,
                    "Null bound fails n={n} x={x}"
                );
                assert!(
                    p_collision(n, p) <= lemma21_collision_upper(x) + 1e-12,
                    "Collision bound fails n={n} x={x}"
                );
                // The exponential Single bound needs x >= 1 at finite n
                // (the paper applies it in the asymptotic regime; for
                // x < 1 it is off by a vanishing factor).
                if x >= 1.0 {
                    assert!(
                        p_single(n, p) >= lemma21_single_lower_exp(x) - 1e-12,
                        "Single exp bound fails n={n} x={x}"
                    );
                }
                assert!(
                    p_single(n, p) >= lemma21_single_lower_poly(x) - 1e-12,
                    "Single poly bound fails n={n} x={x}"
                );
            }
        }
    }

    #[test]
    fn regular_slot_floor_matches_lemma_2_4() {
        // Lemma 2.4: in a regular slot P[Single] >= ln(a)/a². Verify at
        // the band edges for a = 16 (eps = 1/2) over a range of n.
        let eps = 0.5;
        let a = 8.0 / eps;
        let floor = regular_slot_single_floor(eps);
        for &n in &[64u64, 1024, 1 << 20] {
            let u0 = (n as f64).log2();
            for u in [u0 - (2.0 * a.ln()).log2(), u0, u0 + 0.5 * a.log2()] {
                let p = (-u).exp2();
                assert!(
                    p_single(n, p) >= floor,
                    "floor violated at n={n} u={u}: {} < {floor}",
                    p_single(n, p)
                );
            }
        }
    }

    #[test]
    fn shapes_are_monotone_where_expected() {
        // LESK shape grows with log n and with T once T dominates.
        assert!(lesk_runtime_shape(1 << 20, 0.5, 1) > lesk_runtime_shape(1 << 10, 0.5, 1));
        assert!(lesk_runtime_shape(1 << 10, 0.5, 1 << 16) >= (1u64 << 16) as f64);
        // Smaller eps means longer runtime.
        assert!(lesk_runtime_shape(1 << 10, 0.1, 1) > lesk_runtime_shape(1 << 10, 0.5, 1));
        // Lower bound is below the upper shape for constant eps.
        assert!(lower_bound_shape(1 << 10, 0.5, 1) <= lesk_runtime_shape(1 << 10, 0.5, 1) * 10.0);
        // ARSS is polylog⁴: must dominate LESK's log for large n.
        assert!(arss_runtime_shape(1 << 20, 1) > lesk_runtime_shape(1 << 20, 0.5, 1));
    }

    #[test]
    fn lesu_shape_cases() {
        // Case 1 (small T): independent of T.
        let small_t = lesu_runtime_shape(1 << 10, 0.5, 1);
        assert_eq!(small_t, lesu_runtime_shape(1 << 10, 0.5, 2));
        // Case 2 (huge T): roughly T · loglog T growth.
        let big = lesu_runtime_shape(1 << 10, 0.5, 1 << 20);
        assert!(big >= (1u64 << 20) as f64);
        assert!(big <= ((1u64 << 20) as f64) * 30.0);
    }
}
