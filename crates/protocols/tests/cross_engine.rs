//! Cross-engine agreement for protocol-driven termination.
//!
//! `UniformProtocol::finished()` used to be honored only by the cohort
//! loop; the exact engine's `PerStation` path ran a finished protocol to
//! the slot cap. With the unified `SimCore`, both backends consult the
//! same `StationSet::finished()` hook, so an `Estimation`-style protocol
//! must now stop both engines at the *same* slot.
//!
//! To compare stop slots across engines at all, the protocol must be
//! silent: the two backends consume randomness differently (n Bernoulli
//! draws vs one binomial draw), so any transmission desynchronizes the
//! channel sequences. A listen-only probe makes both runs fully
//! deterministic — every slot is a `Null` (or a jammed `Collision`, which
//! the deterministic saturating adversary places identically in both runs
//! because the channel history is identical) — and the real
//! `EstimationProtocol` state machine decides the stop slot on its own.

use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
use jle_engine::{
    run_cohort, run_exact, CohortStations, EngineMetrics, ExactStations, PerStation, RunReport,
    SimConfig, SimCore, TelemetryObserver, UniformProtocol,
};
use jle_protocols::estimation::EstimationProtocol;
use jle_radio::{CdModel, ChannelState};
use jle_telemetry::{FlightRecorder, MetricRegistry};
use std::sync::Arc;

/// The real `Estimation(L)` state machine with its transmissions muted.
#[derive(Debug, Clone)]
struct SilencedEstimation(EstimationProtocol);

impl SilencedEstimation {
    fn new(l_threshold: u64) -> Self {
        SilencedEstimation(EstimationProtocol::new(l_threshold))
    }
}

impl UniformProtocol for SilencedEstimation {
    fn tx_prob(&mut self, _slot: u64) -> f64 {
        0.0
    }
    fn on_state(&mut self, slot: u64, state: ChannelState) {
        self.0.on_state(slot, state)
    }
    fn finished(&self) -> bool {
        self.0.finished()
    }
    fn estimate(&self) -> Option<f64> {
        self.0.estimate()
    }
}

/// All-Null channel: `Estimation(5)` fails rounds 1 (2 Nulls) and 2
/// (4 Nulls) and returns in round 3 after 2 + 4 + 8 = 14 slots.
#[test]
fn estimation_stops_both_engines_at_the_same_slot() {
    let config = SimConfig::new(8, CdModel::Strong).with_seed(77).with_max_slots(10_000);
    let adv = AdversarySpec::passive();
    let cohort = run_cohort(&config, &adv, || SilencedEstimation::new(5));
    let exact = run_exact(&config, &adv, |_| Box::new(PerStation::new(SilencedEstimation::new(5))));
    assert_eq!(cohort.slots, 14, "rounds 1+2+3 = 2+4+8 slots");
    assert_eq!(exact.slots, cohort.slots, "engines must stop at the same slot");
    assert!(!cohort.timed_out && !exact.timed_out, "a finished run is not a timeout");
    assert_eq!(cohort.resolved_at, None);
    assert_eq!(exact.resolved_at, None);
}

/// Same agreement under jamming: jammed slots read as `Collision`, so the
/// probe needs more rounds to collect its Nulls — and both engines must
/// still agree, because the silent channel gives the (deterministic)
/// saturating adversary identical histories to jam against.
#[test]
fn estimation_stops_both_engines_at_the_same_slot_under_jamming() {
    let spec = AdversarySpec::new(Rate::from_f64(0.5), 8, JamStrategyKind::Saturating);
    let config = SimConfig::new(8, CdModel::Strong).with_seed(78).with_max_slots(10_000);
    let cohort = run_cohort(&config, &spec, || SilencedEstimation::new(5));
    let exact =
        run_exact(&config, &spec, |_| Box::new(PerStation::new(SilencedEstimation::new(5))));
    assert_eq!(exact.slots, cohort.slots, "engines must stop at the same slot");
    assert!(cohort.counts.jammed > 0, "the adversary must actually jam");
    assert!(!cohort.timed_out && !exact.timed_out);
    assert_eq!(exact.counts, cohort.counts, "identical deterministic channel sequences");
}

/// The full telemetry stack (metric registry + flight recorder attached
/// as a `TelemetryObserver`) must be invisible to both engines: the
/// cross-engine scenarios above re-run with telemetry produce reports
/// that serialize bit-identically to the bare runs.
#[test]
fn telemetry_attachment_is_invisible_to_both_engines() {
    let dir = std::env::temp_dir().join(format!("jle-cross-engine-tel-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let scenarios: [(u64, AdversarySpec); 2] = [
        (77, AdversarySpec::passive()),
        (78, AdversarySpec::new(Rate::from_f64(0.5), 8, JamStrategyKind::Saturating)),
    ];
    for (seed, adv) in &scenarios {
        let config = SimConfig::new(8, CdModel::Strong).with_seed(*seed).with_max_slots(10_000);
        let bare_cohort = run_cohort(&config, adv, || SilencedEstimation::new(5));
        let bare_exact =
            run_exact(&config, adv, |_| Box::new(PerStation::new(SilencedEstimation::new(5))));

        let registry = MetricRegistry::new();
        let recorder = Arc::new(FlightRecorder::new(&dir).unwrap());
        let observed = |stations: &mut dyn FnMut(&mut TelemetryObserver) -> RunReport| {
            let mut obs = TelemetryObserver::new(&config)
                .with_metrics(EngineMetrics::register(&registry))
                .with_flight_recorder(Arc::clone(&recorder))
                .with_fingerprint("cross-engine")
                .with_context("suite", "cross_engine");
            stations(&mut obs)
        };
        let tel_cohort = observed(&mut |obs| {
            let mut stations = CohortStations::new(SilencedEstimation::new(5));
            SimCore::new(&config, adv).observe(obs).run(&mut stations)
        });
        let tel_exact = observed(&mut |obs| {
            let mut stations = ExactStations::new(&config, |_| {
                Box::new(PerStation::new(SilencedEstimation::new(5)))
            });
            SimCore::new(&config, adv).observe(obs).run(&mut stations)
        });

        let json = |r: &RunReport| serde_json::to_string(r).unwrap();
        assert_eq!(
            json(&tel_cohort),
            json(&bare_cohort),
            "cohort report must be bit-identical with telemetry attached (seed {seed})"
        );
        assert_eq!(
            json(&tel_exact),
            json(&bare_exact),
            "exact report must be bit-identical with telemetry attached (seed {seed})"
        );
        assert_eq!(tel_exact.slots, tel_cohort.slots, "engines still agree under telemetry");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
