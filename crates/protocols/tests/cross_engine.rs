//! Cross-engine agreement for protocol-driven termination.
//!
//! `UniformProtocol::finished()` used to be honored only by the cohort
//! loop; the exact engine's `PerStation` path ran a finished protocol to
//! the slot cap. With the unified `SimCore`, both backends consult the
//! same `StationSet::finished()` hook, so an `Estimation`-style protocol
//! must now stop both engines at the *same* slot.
//!
//! To compare stop slots across engines at all, the protocol must be
//! silent: the two backends consume randomness differently (n Bernoulli
//! draws vs one binomial draw), so any transmission desynchronizes the
//! channel sequences. A listen-only probe makes both runs fully
//! deterministic — every slot is a `Null` (or a jammed `Collision`, which
//! the deterministic saturating adversary places identically in both runs
//! because the channel history is identical) — and the real
//! `EstimationProtocol` state machine decides the stop slot on its own.
//!
//! The second half of this suite validates the **fast exact backend**
//! (`run_fast_exact`) against the legacy one: same-stop-slot agreement on
//! deterministic protocols, and KS/chi-square statistical equivalence on
//! election-slot, winner-identity, and energy distributions across
//! protocols × CD models × jamming strategies. All seeds are fixed, so
//! the statistical verdicts are deterministic (no flaky re-rolls); the
//! tests run at `α = 0.001` per comparison.

use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
use jle_analysis::{chi_square_two_sample, ks_two_sample};
use jle_engine::{
    run_cohort, run_exact, run_exact_faulty, run_fast_exact, run_fast_exact_faulty, CohortStations,
    EngineMetrics, ExactStations, FaultPlan, PerStation, Protocol, RunReport, SimConfig, SimCore,
    TelemetryObserver, UniformProtocol,
};
use jle_protocols::estimation::EstimationProtocol;
use jle_protocols::{LeskProtocol, LesuProtocol};
use jle_radio::{CdModel, ChannelState};
use jle_telemetry::{FlightRecorder, MetricRegistry};
use std::sync::Arc;

/// The real `Estimation(L)` state machine with its transmissions muted.
#[derive(Debug, Clone)]
struct SilencedEstimation(EstimationProtocol);

impl SilencedEstimation {
    fn new(l_threshold: u64) -> Self {
        SilencedEstimation(EstimationProtocol::new(l_threshold))
    }
}

impl UniformProtocol for SilencedEstimation {
    fn tx_prob(&mut self, _slot: u64) -> f64 {
        0.0
    }
    fn on_state(&mut self, slot: u64, state: ChannelState) {
        self.0.on_state(slot, state)
    }
    fn finished(&self) -> bool {
        self.0.finished()
    }
    fn estimate(&self) -> Option<f64> {
        self.0.estimate()
    }
}

/// All-Null channel: `Estimation(5)` fails rounds 1 (2 Nulls) and 2
/// (4 Nulls) and returns in round 3 after 2 + 4 + 8 = 14 slots.
#[test]
fn estimation_stops_both_engines_at_the_same_slot() {
    let config = SimConfig::new(8, CdModel::Strong).with_seed(77).with_max_slots(10_000);
    let adv = AdversarySpec::passive();
    let cohort = run_cohort(&config, &adv, || SilencedEstimation::new(5));
    let exact = run_exact(&config, &adv, |_| Box::new(PerStation::new(SilencedEstimation::new(5))));
    assert_eq!(cohort.slots, 14, "rounds 1+2+3 = 2+4+8 slots");
    assert_eq!(exact.slots, cohort.slots, "engines must stop at the same slot");
    assert!(!cohort.timed_out && !exact.timed_out, "a finished run is not a timeout");
    assert_eq!(cohort.resolved_at, None);
    assert_eq!(exact.resolved_at, None);
}

/// Same agreement under jamming: jammed slots read as `Collision`, so the
/// probe needs more rounds to collect its Nulls — and both engines must
/// still agree, because the silent channel gives the (deterministic)
/// saturating adversary identical histories to jam against.
#[test]
fn estimation_stops_both_engines_at_the_same_slot_under_jamming() {
    let spec = AdversarySpec::new(Rate::from_f64(0.5), 8, JamStrategyKind::Saturating);
    let config = SimConfig::new(8, CdModel::Strong).with_seed(78).with_max_slots(10_000);
    let cohort = run_cohort(&config, &spec, || SilencedEstimation::new(5));
    let exact =
        run_exact(&config, &spec, |_| Box::new(PerStation::new(SilencedEstimation::new(5))));
    assert_eq!(exact.slots, cohort.slots, "engines must stop at the same slot");
    assert!(cohort.counts.jammed > 0, "the adversary must actually jam");
    assert!(!cohort.timed_out && !exact.timed_out);
    assert_eq!(exact.counts, cohort.counts, "identical deterministic channel sequences");
}

/// The full telemetry stack (metric registry + flight recorder attached
/// as a `TelemetryObserver`) must be invisible to both engines: the
/// cross-engine scenarios above re-run with telemetry produce reports
/// that serialize bit-identically to the bare runs.
#[test]
fn telemetry_attachment_is_invisible_to_both_engines() {
    let dir = std::env::temp_dir().join(format!("jle-cross-engine-tel-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let scenarios: [(u64, AdversarySpec); 2] = [
        (77, AdversarySpec::passive()),
        (78, AdversarySpec::new(Rate::from_f64(0.5), 8, JamStrategyKind::Saturating)),
    ];
    for (seed, adv) in &scenarios {
        let config = SimConfig::new(8, CdModel::Strong).with_seed(*seed).with_max_slots(10_000);
        let bare_cohort = run_cohort(&config, adv, || SilencedEstimation::new(5));
        let bare_exact =
            run_exact(&config, adv, |_| Box::new(PerStation::new(SilencedEstimation::new(5))));

        let registry = MetricRegistry::new();
        let recorder = Arc::new(FlightRecorder::new(&dir).unwrap());
        let observed = |stations: &mut dyn FnMut(&mut TelemetryObserver) -> RunReport| {
            let mut obs = TelemetryObserver::new(&config)
                .with_metrics(EngineMetrics::register(&registry))
                .with_flight_recorder(Arc::clone(&recorder))
                .with_fingerprint("cross-engine")
                .with_context("suite", "cross_engine");
            stations(&mut obs)
        };
        let tel_cohort = observed(&mut |obs| {
            let mut stations = CohortStations::new(SilencedEstimation::new(5));
            SimCore::new(&config, adv).observe(obs).run(&mut stations)
        });
        let tel_exact = observed(&mut |obs| {
            let mut stations = ExactStations::new(&config, |_| {
                Box::new(PerStation::new(SilencedEstimation::new(5)))
            });
            SimCore::new(&config, adv).observe(obs).run(&mut stations)
        });

        let json = |r: &RunReport| serde_json::to_string(r).unwrap();
        assert_eq!(
            json(&tel_cohort),
            json(&bare_cohort),
            "cohort report must be bit-identical with telemetry attached (seed {seed})"
        );
        assert_eq!(
            json(&tel_exact),
            json(&bare_exact),
            "exact report must be bit-identical with telemetry attached (seed {seed})"
        );
        assert_eq!(tel_exact.slots, tel_cohort.slots, "engines still agree under telemetry");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Fast exact backend: agreement and statistical equivalence with the
// legacy backend.
// ---------------------------------------------------------------------------

/// Silent protocols are fully deterministic, so the fast backend must
/// agree with the legacy one *exactly* — stop slot, counts, everything —
/// despite drawing from unrelated random streams (it never draws).
#[test]
fn fast_exact_stops_with_legacy_on_silent_protocols() {
    let scenarios: [(u64, AdversarySpec); 2] = [
        (77, AdversarySpec::passive()),
        (78, AdversarySpec::new(Rate::from_f64(0.5), 8, JamStrategyKind::Saturating)),
    ];
    for (seed, adv) in &scenarios {
        let config = SimConfig::new(8, CdModel::Strong).with_seed(*seed).with_max_slots(10_000);
        let legacy =
            run_exact(&config, adv, |_| Box::new(PerStation::new(SilencedEstimation::new(5))));
        let fast =
            run_fast_exact(&config, adv, |_| Box::new(PerStation::new(SilencedEstimation::new(5))));
        assert_eq!(fast.slots, legacy.slots, "same stop slot (seed {seed})");
        assert_eq!(fast.counts, legacy.counts, "same channel sequence (seed {seed})");
        assert_eq!(fast.energy, legacy.energy, "same energy (seed {seed})");
        assert!(!fast.timed_out);
    }
}

/// Which election protocol a statistical scenario runs.
#[derive(Debug, Clone, Copy)]
enum Proto {
    Lesk,
    Lesu,
}

impl Proto {
    fn build(self) -> Box<dyn Protocol> {
        match self {
            Proto::Lesk => Box::new(PerStation::new(LeskProtocol::new(0.5))),
            Proto::Lesu => Box::new(PerStation::new(LesuProtocol::new())),
        }
    }

    /// Network size for the scenario. LESU spends a long estimation
    /// phase before electing (runs are ~100x longer than LESK's), so its
    /// scenarios use a smaller network to keep the dev-profile suite
    /// fast; the backends are compared on identical scenarios either way.
    fn n(self) -> u64 {
        match self {
            Proto::Lesk => 48,
            Proto::Lesu => 24,
        }
    }

    /// Monte-Carlo trials per backend per CD model (same runtime
    /// reasoning as [`Proto::n`]; LESU still contributes 60 × 3 CD
    /// models = 180 paired samples per adversary).
    fn trials(self) -> u64 {
        match self {
            Proto::Lesk => 150,
            Proto::Lesu => 60,
        }
    }

    /// Slot cap. LESU resolves in tens of slots where it resolves at all
    /// (strong CD), but without collision detection its runs walk the
    /// whole budget — capped runs are censored *identically* on both
    /// backends (both report `slots = max_slots`), so a tight cap keeps
    /// the comparison sound while bounding the runtime.
    fn max_slots(self) -> u64 {
        match self {
            Proto::Lesk => 200_000,
            Proto::Lesu => 30_000,
        }
    }
}

/// Per-backend Monte-Carlo samples of the three observables the
/// equivalence suite compares.
struct Samples {
    /// Run length in slots (election time, or the cap for timeouts).
    slots: Vec<f64>,
    /// Total channel accesses (transmissions + listens).
    energy: Vec<f64>,
    /// Winner-identity histogram, bucketed so chi-square cells stay
    /// well-populated at modest trial counts.
    winners: Vec<u64>,
}

const WINNER_BUCKETS: usize = 8;

fn sample(
    run: impl Fn(&SimConfig) -> RunReport,
    n: u64,
    trials: u64,
    max_slots: u64,
    cd: CdModel,
    base_seed: u64,
) -> Samples {
    let mut s = Samples { slots: Vec::new(), energy: Vec::new(), winners: vec![0; WINNER_BUCKETS] };
    for t in 0..trials {
        let config = SimConfig::new(n, cd).with_seed(base_seed + t).with_max_slots(max_slots);
        let r = run(&config);
        s.slots.push(r.slots as f64);
        s.energy.push(r.energy.total() as f64);
        if let Some(w) = r.winner {
            s.winners[(w as usize * WINNER_BUCKETS) / n as usize] += 1;
        }
    }
    s
}

/// Run one protocol × adversary scenario through both exact backends
/// under every CD model and require KS/chi-square equivalence on
/// election slots, energy, and winner identity at `α = 0.001`.
fn assert_backends_equivalent(proto: Proto, adv: &AdversarySpec, base_seed: u64) {
    let (n, trials, cap) = (proto.n(), proto.trials(), proto.max_slots());
    for cd in [CdModel::Strong, CdModel::Weak, CdModel::NoCd] {
        let legacy =
            sample(|c| run_exact(c, adv, |_| proto.build()), n, trials, cap, cd, base_seed);
        let fast =
            sample(|c| run_fast_exact(c, adv, |_| proto.build()), n, trials, cap, cd, base_seed);

        let ks_slots = ks_two_sample(&legacy.slots, &fast.slots);
        assert!(
            ks_slots.equivalent(),
            "{proto:?}/{cd:?}: election-slot distributions diverge \
             (D = {:.4} > {:.4})",
            ks_slots.statistic,
            ks_slots.critical
        );
        let ks_energy = ks_two_sample(&legacy.energy, &fast.energy);
        assert!(
            ks_energy.equivalent(),
            "{proto:?}/{cd:?}: energy distributions diverge (D = {:.4} > {:.4})",
            ks_energy.statistic,
            ks_energy.critical
        );
        let resolved: u64 = legacy.winners.iter().chain(fast.winners.iter()).sum();
        if resolved > 0 {
            let chi = chi_square_two_sample(&legacy.winners, &fast.winners);
            assert!(
                chi.equivalent(),
                "{proto:?}/{cd:?}: winner-identity distributions diverge \
                 (χ² = {:.2} > {:.2}, dof {})",
                chi.statistic,
                chi.critical,
                chi.dof
            );
        }
    }
}

#[test]
fn fast_exact_equivalent_lesk_passive() {
    assert_backends_equivalent(Proto::Lesk, &AdversarySpec::passive(), 0x1000);
}

#[test]
fn fast_exact_equivalent_lesk_saturating() {
    let adv = AdversarySpec::new(Rate::from_f64(0.5), 16, JamStrategyKind::Saturating);
    assert_backends_equivalent(Proto::Lesk, &adv, 0x2000);
}

#[test]
fn fast_exact_equivalent_lesk_random_jammer() {
    let adv = AdversarySpec::new(Rate::from_f64(0.5), 16, JamStrategyKind::Random { prob: 0.7 });
    assert_backends_equivalent(Proto::Lesk, &adv, 0x3000);
}

#[test]
fn fast_exact_equivalent_lesu_passive() {
    assert_backends_equivalent(Proto::Lesu, &AdversarySpec::passive(), 0x4000);
}

#[test]
fn fast_exact_equivalent_lesu_saturating() {
    let adv = AdversarySpec::new(Rate::from_f64(0.5), 16, JamStrategyKind::Saturating);
    assert_backends_equivalent(Proto::Lesu, &adv, 0x5000);
}

#[test]
fn fast_exact_equivalent_lesu_random_jammer() {
    let adv = AdversarySpec::new(Rate::from_f64(0.5), 16, JamStrategyKind::Random { prob: 0.7 });
    assert_backends_equivalent(Proto::Lesu, &adv, 0x6000);
}

/// The fault subsystem through both backends: the `FaultPlan` schedule is
/// derived from plan-private streams (identical either way), so the
/// degradation statistics must match distributionally too.
#[test]
fn fast_exact_equivalent_under_fault_plan() {
    const N: u64 = 48;
    const TRIALS: u64 = 150;
    let adv = AdversarySpec::passive();
    let collect = |fast: bool| {
        let mut slots = Vec::new();
        let mut outcomes = [0u64; 2]; // [elected, not elected]
        for t in 0..TRIALS {
            let config =
                SimConfig::new(N, CdModel::Strong).with_seed(0x7000 + t).with_max_slots(200_000);
            let plan = FaultPlan::new(900 + t)
                .with_random_crashes(N, 0.2, 2_000)
                .with_recoveries(500)
                .with_staggered_wakeups(N, 256);
            let factory =
                |_| Box::new(PerStation::new(LeskProtocol::new(0.5))) as Box<dyn Protocol>;
            let r = if fast {
                run_fast_exact_faulty(&config, &adv, &plan, factory)
            } else {
                run_exact_faulty(&config, &adv, &plan, factory)
            };
            slots.push(r.slots as f64);
            outcomes[usize::from(!r.leader_elected())] += 1;
        }
        (slots, outcomes)
    };
    let (legacy_slots, legacy_outcomes) = collect(false);
    let (fast_slots, fast_outcomes) = collect(true);
    let ks = ks_two_sample(&legacy_slots, &fast_slots);
    assert!(
        ks.equivalent(),
        "faulty election-slot distributions diverge (D = {:.4} > {:.4})",
        ks.statistic,
        ks.critical
    );
    let chi = chi_square_two_sample(&legacy_outcomes, &fast_outcomes);
    assert!(
        chi.equivalent(),
        "outcome mix diverges: legacy {legacy_outcomes:?} vs fast {fast_outcomes:?}"
    );
}
