//! Sharded on-disk result store: `<root>/<aa>/<key>/t<start>-<end>.json`.
//!
//! One directory per work unit (keyed by [`Fingerprint`], sharded by its
//! two-char hex prefix to keep directories small), one JSON file per
//! completed trial chunk. Writes are atomic — temp file in the same
//! directory, then `rename` — so a killed sweep never leaves a partially
//! written shard under a final name. Loading is corruption-tolerant: a
//! shard that is unreadable, unparsable, mis-keyed, mis-ranged, or
//! truncated is deleted and reported as absent, which makes the scheduler
//! recompute it; corruption can cost time, never correctness and never a
//! panic.

use crate::fingerprint::Fingerprint;
use serde::{Deserialize, Serialize, Value};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Distinguishes temp files written concurrently by one process.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A claim file older than this is assumed to belong to a crashed writer
/// and is broken. Writers hold claims only for the duration of one
/// serialize-and-rename, which is far below this.
const STALE_CLAIM: Duration = Duration::from_secs(300);

/// RAII guard for an advisory chunk-write claim: while alive, no other
/// cooperating process will write the same `(key, start, end)` shard.
/// Dropping the guard (including on panic-unwind) releases the claim by
/// deleting the claim file.
#[derive(Debug)]
pub struct ChunkClaim {
    path: PathBuf,
}

impl Drop for ChunkClaim {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// The on-disk store rooted at a cache directory (`results/.cache` by
/// convention).
#[derive(Debug, Clone)]
pub struct ResultStore {
    root: PathBuf,
}

impl ResultStore {
    /// Open (and create, with its full hierarchy) a store at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ResultStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Directory of one work unit.
    pub fn unit_dir(&self, key: &Fingerprint) -> PathBuf {
        self.root.join(key.shard()).join(key.hex())
    }

    /// Path of one chunk shard.
    pub fn chunk_path(&self, key: &Fingerprint, start: u64, end: u64) -> PathBuf {
        self.unit_dir(key).join(format!("t{start:08}-{end:08}.json"))
    }

    /// Path of the advisory claim file for one chunk shard.
    pub fn claim_path(&self, key: &Fingerprint, start: u64, end: u64) -> PathBuf {
        self.unit_dir(key).join(format!(".claim-t{start:08}-{end:08}"))
    }

    /// Try to take the advisory write claim for one chunk. `Ok(None)`
    /// means another live writer holds it — the caller should skip the
    /// write, because by the determinism contract the holder is
    /// persisting byte-identical content. Claims left behind by crashed
    /// writers (older than [`STALE_CLAIM`]) are broken and re-taken.
    pub fn try_claim_chunk(
        &self,
        key: &Fingerprint,
        start: u64,
        end: u64,
    ) -> io::Result<Option<ChunkClaim>> {
        let path = self.claim_path(key, start, end);
        fs::create_dir_all(path.parent().expect("claim paths have parents"))?;
        for attempt in 0..2 {
            match fs::OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    use std::io::Write;
                    let _ = write!(f, "{}", std::process::id());
                    return Ok(Some(ChunkClaim { path }));
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let stale = fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| t.elapsed().ok())
                        .is_some_and(|age| age > STALE_CLAIM);
                    if stale && attempt == 0 {
                        // Crashed writer: break the claim and retry once.
                        let _ = fs::remove_file(&path);
                        continue;
                    }
                    return Ok(None);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    /// Atomically persist one completed chunk, guarded by the advisory
    /// claim: when another cooperating writer already holds the claim for
    /// this shard, the write is skipped (`Ok`), since the holder persists
    /// byte-identical content for the same fingerprint and range.
    pub fn write_chunk<R: Serialize>(
        &self,
        key: &Fingerprint,
        start: u64,
        end: u64,
        results: &[R],
    ) -> io::Result<()> {
        debug_assert_eq!(results.len() as u64, end - start, "chunk length must match its range");
        let Some(_claim) = self.try_claim_chunk(key, start, end)? else {
            return Ok(());
        };
        let body = Value::Map(vec![
            ("key".to_string(), Value::Str(key.hex().to_string())),
            ("start".to_string(), start.to_json_value()),
            ("end".to_string(), end.to_json_value()),
            (
                "results".to_string(),
                Value::Seq(results.iter().map(Serialize::to_json_value).collect()),
            ),
        ]);
        let text = serde_json::to_string(&body).expect("chunk serialization");
        self.write_atomic(&self.chunk_path(key, start, end), text.as_bytes())
    }

    /// Load one chunk if present and intact. Any defect — missing file,
    /// bad JSON, wrong key/range, wrong result count, undecodable result —
    /// deletes the shard and returns `None` so the caller recomputes it.
    pub fn load_chunk<R: Deserialize>(
        &self,
        key: &Fingerprint,
        start: u64,
        end: u64,
    ) -> Option<Vec<R>> {
        let path = self.chunk_path(key, start, end);
        let text = fs::read_to_string(&path).ok()?;
        match Self::decode_chunk(&text, key, start, end) {
            Some(results) => Some(results),
            None => {
                // Corrupt shard: discard so the slot is recomputed. A
                // failed delete is harmless — the rewrite replaces it.
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    fn decode_chunk<R: Deserialize>(
        text: &str,
        key: &Fingerprint,
        start: u64,
        end: u64,
    ) -> Option<Vec<R>> {
        let v: Value = serde_json::from_str(text).ok()?;
        if v.get("key")?.as_str()? != key.hex() {
            return None;
        }
        if v.get("start")?.as_u64()? != start || v.get("end")?.as_u64()? != end {
            return None;
        }
        let results = v.get("results")?.as_seq()?;
        if results.len() as u64 != end - start {
            return None;
        }
        results.iter().map(|r| R::from_json_value(r).ok()).collect()
    }

    /// Record the human-readable spec of a unit next to its shards, once.
    /// Best-effort (failures are ignored by callers); read back by
    /// [`ResultStore::load_spec_info`] for fingerprint-addressed replay.
    pub fn write_spec_info(&self, key: &Fingerprint, spec_pretty: &str) -> io::Result<()> {
        let path = self.unit_dir(key).join("spec.json");
        if path.exists() {
            return Ok(());
        }
        self.write_atomic(&path, spec_pretty.as_bytes())
    }

    /// Look up a unit's recorded spec by fingerprint hex — full, or any
    /// unique prefix of at least two characters (the shard width). Returns
    /// the full fingerprint hex and the parsed spec, or `None` when the
    /// prefix is unknown, ambiguous, or the unit ran before spec recording
    /// existed.
    pub fn load_spec_info(&self, hex: &str) -> Option<(String, Value)> {
        if hex.len() < 2 || !hex.chars().all(|c| c.is_ascii_hexdigit()) {
            return None;
        }
        let shard_dir = self.root.join(&hex[..2]);
        let mut hits: Vec<String> = fs::read_dir(&shard_dir)
            .ok()?
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|name| name.starts_with(hex))
            .collect();
        if hits.len() != 1 {
            return None;
        }
        let full = hits.pop()?;
        let text = fs::read_to_string(shard_dir.join(&full).join("spec.json")).ok()?;
        let spec = serde_json::from_str(&text).ok()?;
        Some((full, spec))
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let dir = path.parent().expect("store paths have parents");
        fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, path).inspect_err(|_| {
            let _ = fs::remove_file(&tmp);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::WorkSpec;
    use serde_json::json;

    fn tmp_store(tag: &str) -> ResultStore {
        let dir = std::env::temp_dir().join(format!("jle-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultStore::open(dir).unwrap()
    }

    fn key() -> Fingerprint {
        Fingerprint::of(&WorkSpec::new("e0", "p", json!({"n": 1u64}), 0), "s", "f64")
    }

    #[test]
    fn chunk_roundtrip() {
        let store = tmp_store("roundtrip");
        let k = key();
        let data = vec![1.5f64, 2.0, 3.25];
        store.write_chunk(&k, 0, 3, &data).unwrap();
        assert_eq!(store.load_chunk::<f64>(&k, 0, 3).unwrap(), data);
        // Wrong range: absent, and does not invent data.
        assert!(store.load_chunk::<f64>(&k, 0, 4).is_none());
    }

    #[test]
    fn truncated_shard_is_discarded_not_a_panic() {
        let store = tmp_store("truncated");
        let k = key();
        store.write_chunk(&k, 0, 4, &[1.0f64, 2.0, 3.0, 4.0]).unwrap();
        let path = store.chunk_path(&k, 0, 4);
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(store.load_chunk::<f64>(&k, 0, 4).is_none());
        assert!(!path.exists(), "corrupt shard must be deleted");
    }

    #[test]
    fn garbled_and_miskeyed_shards_are_discarded() {
        let store = tmp_store("garbled");
        let k = key();
        let path = store.chunk_path(&k, 0, 2);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, b"not json at all {{{").unwrap();
        assert!(store.load_chunk::<f64>(&k, 0, 2).is_none());
        // A shard whose embedded key disagrees with its location.
        store.write_chunk(&k, 0, 2, &[1.0f64, 2.0]).unwrap();
        let text = fs::read_to_string(store.chunk_path(&k, 0, 2)).unwrap();
        let other = Fingerprint::of(&WorkSpec::new("e9", "q", json!({"n": 2u64}), 9), "s", "f64");
        let other_path = store.chunk_path(&other, 0, 2);
        fs::create_dir_all(other_path.parent().unwrap()).unwrap();
        fs::write(&other_path, &text).unwrap();
        assert!(store.load_chunk::<f64>(&other, 0, 2).is_none());
    }

    #[test]
    fn wrong_result_count_is_discarded() {
        let store = tmp_store("count");
        let k = key();
        let path = store.chunk_path(&k, 0, 3);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(
            &path,
            format!(r#"{{"key":"{}","start":0,"end":3,"results":[1.0,2.0]}}"#, k.hex()),
        )
        .unwrap();
        assert!(store.load_chunk::<f64>(&k, 0, 3).is_none());
    }

    #[test]
    fn chunk_claim_excludes_second_writer_and_releases_on_drop() {
        let store = tmp_store("claim");
        let k = key();
        let first = store.try_claim_chunk(&k, 0, 4).unwrap();
        assert!(first.is_some(), "first claim must be granted");
        assert!(store.try_claim_chunk(&k, 0, 4).unwrap().is_none(), "claim is exclusive");
        // A different chunk range is an independent claim.
        assert!(store.try_claim_chunk(&k, 4, 8).unwrap().is_some());
        drop(first);
        assert!(store.try_claim_chunk(&k, 0, 4).unwrap().is_some(), "drop releases the claim");
    }

    #[test]
    fn concurrent_writers_of_the_same_chunk_never_corrupt_it() {
        // Satellite: many threads hammering write_chunk on the same
        // fingerprint+range (the deterministic-content scenario two
        // processes computing the same unit produce) must leave the shard
        // readable at all times, never torn, and leak no claim files.
        let store = tmp_store("concurrent");
        let k = key();
        let data: Vec<f64> = (0..16).map(|i| i as f64 * 0.5).collect();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..25 {
                        store.write_chunk(&k, 0, 16, &data).unwrap();
                        if let Some(got) = store.load_chunk::<f64>(&k, 0, 16) {
                            assert_eq!(got, data, "a visible shard is always intact");
                        }
                    }
                });
            }
        });
        assert_eq!(store.load_chunk::<f64>(&k, 0, 16).unwrap(), data);
        let leftovers: Vec<_> = fs::read_dir(store.unit_dir(&k))
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|name| name.starts_with(".claim-") || name.starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "claims and temps must be cleaned up: {leftovers:?}");
    }

    #[test]
    fn stale_claim_is_broken() {
        let store = tmp_store("stale-claim");
        let k = key();
        // Simulate a crashed writer: a claim file with an ancient mtime.
        let path = store.claim_path(&k, 0, 2);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, b"dead").unwrap();
        let old = std::time::SystemTime::now() - Duration::from_secs(3600);
        // Not all filesystems allow setting mtimes without a helper; fall
        // back to asserting the live-claim behaviour when unsupported.
        let f = fs::File::options().write(true).open(&path).unwrap();
        if f.set_modified(old).is_ok() {
            drop(f);
            assert!(
                store.try_claim_chunk(&k, 0, 2).unwrap().is_some(),
                "a stale claim must be broken and re-taken"
            );
        } else {
            drop(f);
            assert!(store.try_claim_chunk(&k, 0, 2).unwrap().is_none());
        }
    }

    #[test]
    fn spec_info_written_once() {
        let store = tmp_store("spec");
        let k = key();
        store.write_spec_info(&k, "{\"a\":1}").unwrap();
        store.write_spec_info(&k, "{\"b\":2}").unwrap();
        let text = fs::read_to_string(store.unit_dir(&k).join("spec.json")).unwrap();
        assert_eq!(text, "{\"a\":1}");
    }

    #[test]
    fn spec_info_loads_by_full_hex_and_unique_prefix() {
        let store = tmp_store("spec-load");
        let k = key();
        store.write_spec_info(&k, "{\"n\": 7}").unwrap();
        let (full, spec) = store.load_spec_info(k.hex()).expect("full hex resolves");
        assert_eq!(full, k.hex());
        assert_eq!(spec.get("n").unwrap().as_u64(), Some(7));
        let (full, _) = store.load_spec_info(&k.hex()[..8]).expect("unique prefix resolves");
        assert_eq!(full, k.hex());
        assert!(store.load_spec_info("f").is_none(), "sub-shard prefixes are rejected");
        assert!(store.load_spec_info("zz00").is_none(), "non-hex is rejected");
        assert!(store.load_spec_info("0123456789abcdef").is_none() || k.hex().starts_with("0123"));
    }
}
