//! Sharded on-disk result store: `<root>/<aa>/<key>/t<start>-<end>.json`.
//!
//! One directory per work unit (keyed by [`Fingerprint`], sharded by its
//! two-char hex prefix to keep directories small), one JSON file per
//! completed trial chunk. Writes are atomic — temp file in the same
//! directory, then `rename` — so a killed sweep never leaves a partially
//! written shard under a final name. Loading is corruption-tolerant: a
//! shard that is unreadable, unparsable, mis-keyed, mis-ranged, or
//! truncated is deleted and reported as absent, which makes the scheduler
//! recompute it; corruption can cost time, never correctness and never a
//! panic.

use crate::fingerprint::Fingerprint;
use serde::{Deserialize, Serialize, Value};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes temp files written concurrently by one process.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The on-disk store rooted at a cache directory (`results/.cache` by
/// convention).
#[derive(Debug, Clone)]
pub struct ResultStore {
    root: PathBuf,
}

impl ResultStore {
    /// Open (and create, with its full hierarchy) a store at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ResultStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Directory of one work unit.
    pub fn unit_dir(&self, key: &Fingerprint) -> PathBuf {
        self.root.join(key.shard()).join(key.hex())
    }

    /// Path of one chunk shard.
    pub fn chunk_path(&self, key: &Fingerprint, start: u64, end: u64) -> PathBuf {
        self.unit_dir(key).join(format!("t{start:08}-{end:08}.json"))
    }

    /// Atomically persist one completed chunk.
    pub fn write_chunk<R: Serialize>(
        &self,
        key: &Fingerprint,
        start: u64,
        end: u64,
        results: &[R],
    ) -> io::Result<()> {
        debug_assert_eq!(results.len() as u64, end - start, "chunk length must match its range");
        let body = Value::Map(vec![
            ("key".to_string(), Value::Str(key.hex().to_string())),
            ("start".to_string(), start.to_json_value()),
            ("end".to_string(), end.to_json_value()),
            (
                "results".to_string(),
                Value::Seq(results.iter().map(Serialize::to_json_value).collect()),
            ),
        ]);
        let text = serde_json::to_string(&body).expect("chunk serialization");
        self.write_atomic(&self.chunk_path(key, start, end), text.as_bytes())
    }

    /// Load one chunk if present and intact. Any defect — missing file,
    /// bad JSON, wrong key/range, wrong result count, undecodable result —
    /// deletes the shard and returns `None` so the caller recomputes it.
    pub fn load_chunk<R: Deserialize>(
        &self,
        key: &Fingerprint,
        start: u64,
        end: u64,
    ) -> Option<Vec<R>> {
        let path = self.chunk_path(key, start, end);
        let text = fs::read_to_string(&path).ok()?;
        match Self::decode_chunk(&text, key, start, end) {
            Some(results) => Some(results),
            None => {
                // Corrupt shard: discard so the slot is recomputed. A
                // failed delete is harmless — the rewrite replaces it.
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    fn decode_chunk<R: Deserialize>(
        text: &str,
        key: &Fingerprint,
        start: u64,
        end: u64,
    ) -> Option<Vec<R>> {
        let v: Value = serde_json::from_str(text).ok()?;
        if v.get("key")?.as_str()? != key.hex() {
            return None;
        }
        if v.get("start")?.as_u64()? != start || v.get("end")?.as_u64()? != end {
            return None;
        }
        let results = v.get("results")?.as_seq()?;
        if results.len() as u64 != end - start {
            return None;
        }
        results.iter().map(|r| R::from_json_value(r).ok()).collect()
    }

    /// Record the human-readable spec of a unit next to its shards, once.
    /// Purely informational (never read back), so failures are ignored by
    /// callers.
    pub fn write_spec_info(&self, key: &Fingerprint, spec_pretty: &str) -> io::Result<()> {
        let path = self.unit_dir(key).join("spec.json");
        if path.exists() {
            return Ok(());
        }
        self.write_atomic(&path, spec_pretty.as_bytes())
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let dir = path.parent().expect("store paths have parents");
        fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, path).inspect_err(|_| {
            let _ = fs::remove_file(&tmp);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::WorkSpec;
    use serde_json::json;

    fn tmp_store(tag: &str) -> ResultStore {
        let dir = std::env::temp_dir().join(format!("jle-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultStore::open(dir).unwrap()
    }

    fn key() -> Fingerprint {
        Fingerprint::of(&WorkSpec::new("e0", "p", json!({"n": 1u64}), 0), "s", "f64")
    }

    #[test]
    fn chunk_roundtrip() {
        let store = tmp_store("roundtrip");
        let k = key();
        let data = vec![1.5f64, 2.0, 3.25];
        store.write_chunk(&k, 0, 3, &data).unwrap();
        assert_eq!(store.load_chunk::<f64>(&k, 0, 3).unwrap(), data);
        // Wrong range: absent, and does not invent data.
        assert!(store.load_chunk::<f64>(&k, 0, 4).is_none());
    }

    #[test]
    fn truncated_shard_is_discarded_not_a_panic() {
        let store = tmp_store("truncated");
        let k = key();
        store.write_chunk(&k, 0, 4, &[1.0f64, 2.0, 3.0, 4.0]).unwrap();
        let path = store.chunk_path(&k, 0, 4);
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(store.load_chunk::<f64>(&k, 0, 4).is_none());
        assert!(!path.exists(), "corrupt shard must be deleted");
    }

    #[test]
    fn garbled_and_miskeyed_shards_are_discarded() {
        let store = tmp_store("garbled");
        let k = key();
        let path = store.chunk_path(&k, 0, 2);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, b"not json at all {{{").unwrap();
        assert!(store.load_chunk::<f64>(&k, 0, 2).is_none());
        // A shard whose embedded key disagrees with its location.
        store.write_chunk(&k, 0, 2, &[1.0f64, 2.0]).unwrap();
        let text = fs::read_to_string(store.chunk_path(&k, 0, 2)).unwrap();
        let other = Fingerprint::of(&WorkSpec::new("e9", "q", json!({"n": 2u64}), 9), "s", "f64");
        let other_path = store.chunk_path(&other, 0, 2);
        fs::create_dir_all(other_path.parent().unwrap()).unwrap();
        fs::write(&other_path, &text).unwrap();
        assert!(store.load_chunk::<f64>(&other, 0, 2).is_none());
    }

    #[test]
    fn wrong_result_count_is_discarded() {
        let store = tmp_store("count");
        let k = key();
        let path = store.chunk_path(&k, 0, 3);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(
            &path,
            format!(r#"{{"key":"{}","start":0,"end":3,"results":[1.0,2.0]}}"#, k.hex()),
        )
        .unwrap();
        assert!(store.load_chunk::<f64>(&k, 0, 3).is_none());
    }

    #[test]
    fn spec_info_written_once() {
        let store = tmp_store("spec");
        let k = key();
        store.write_spec_info(&k, "{\"a\":1}").unwrap();
        store.write_spec_info(&k, "{\"b\":2}").unwrap();
        let text = fs::read_to_string(store.unit_dir(&k).join("spec.json")).unwrap();
        assert_eq!(text, "{\"a\":1}");
    }
}
