//! Live run telemetry: counters, the [`Reporter`] trait, and its stderr
//! progress + JSONL run-log implementations.
//!
//! The scheduler emits structured [`Event`]s at run, experiment, unit,
//! and chunk granularity; reporters render them. Counters live in a
//! shared [`Stats`] so the CLI can print (and CI can assert on) totals —
//! most importantly `executed_trials == 0` for a fully warm cache.

use jle_telemetry::{Counter, MetricRegistry};
use serde::{Serialize, Value};
use std::io::Write;
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Monotonic run counters, shared between the scheduler and the CLI.
///
/// Since PR 4 this is a *view* over a [`MetricRegistry`] — each field is
/// a handle to a registered `jle_orchestrator_*` counter, so the same
/// numbers the CLI prints are exported by `--metrics-out` without a
/// parallel counter world. Build with [`Stats::on_registry`] to share a
/// registry with other subsystems (the engine's `jle_engine_*` family,
/// the CLI); `Stats::default()` keeps a private registry.
#[derive(Debug, Clone)]
pub struct Stats {
    registry: MetricRegistry,
    /// Trials requested across all submitted units.
    pub planned_trials: Counter,
    /// Trials actually simulated this run.
    pub executed_trials: Counter,
    /// Trials served from the cache.
    pub cached_trials: Counter,
    /// Chunk-granularity cache hits.
    pub chunk_hits: Counter,
    /// Chunk-granularity cache misses.
    pub chunk_misses: Counter,
    /// Channel slots simulated by executed trials (see
    /// [`jle_engine::SlotCost`]).
    pub simulated_slots: Counter,
    /// Channel slots reported **live** from inside running slot loops by
    /// [`Stats::live_slot_sink`]-wired `jle_engine::ThroughputObserver`s.
    /// Unlike [`Stats::simulated_slots`], which is credited only after a
    /// chunk completes, this counter moves while a long simulation is
    /// still mid-loop — the live slots/sec signal. The two counters are
    /// independent tallies of the same work, not additive; see
    /// [`Stats::check_slot_accounting`] for the invariant tying them.
    pub live_slots: Counter,
    /// Work units submitted.
    pub units: Counter,
}

impl Default for Stats {
    fn default() -> Self {
        Stats::on_registry(&MetricRegistry::new())
    }
}

/// A point-in-time copy of [`Stats`], serializable into the run log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StatsSnapshot {
    /// Trials requested across all submitted units.
    pub planned_trials: u64,
    /// Trials actually simulated this run.
    pub executed_trials: u64,
    /// Trials served from the cache.
    pub cached_trials: u64,
    /// Chunk-granularity cache hits.
    pub chunk_hits: u64,
    /// Chunk-granularity cache misses.
    pub chunk_misses: u64,
    /// Channel slots simulated by executed trials.
    pub simulated_slots: u64,
    /// Channel slots reported live from inside running slot loops.
    pub live_slots: u64,
    /// Work units submitted.
    pub units: u64,
}

impl Stats {
    /// Register the orchestrator counter family on `registry` and return
    /// handles to it. Registration is idempotent: calling this twice on
    /// the same registry yields two `Stats` views over the *same*
    /// underlying counters.
    pub fn on_registry(registry: &MetricRegistry) -> Self {
        Stats {
            registry: registry.clone(),
            planned_trials: registry.counter(
                "jle_orchestrator_planned_trials",
                "Trials requested across all submitted units",
            ),
            executed_trials: registry
                .counter("jle_orchestrator_executed_trials", "Trials actually simulated this run"),
            cached_trials: registry
                .counter("jle_orchestrator_cached_trials", "Trials served from the cache"),
            chunk_hits: registry
                .counter("jle_orchestrator_chunk_hits", "Chunk-granularity cache hits"),
            chunk_misses: registry
                .counter("jle_orchestrator_chunk_misses", "Chunk-granularity cache misses"),
            simulated_slots: registry.counter(
                "jle_orchestrator_simulated_slots",
                "Channel slots simulated by executed trials",
            ),
            live_slots: registry.counter(
                "jle_orchestrator_live_slots",
                "Channel slots reported live from inside running slot loops",
            ),
            units: registry.counter("jle_orchestrator_units", "Work units submitted"),
        }
    }

    /// The registry the counters are registered on — share it with other
    /// metric families or export it with
    /// `MetricRegistry::write_snapshot_jsonl`.
    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    /// Copy the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            planned_trials: self.planned_trials.get(),
            executed_trials: self.executed_trials.get(),
            cached_trials: self.cached_trials.get(),
            chunk_hits: self.chunk_hits.get(),
            chunk_misses: self.chunk_misses.get(),
            simulated_slots: self.simulated_slots.get(),
            live_slots: self.live_slots.get(),
            units: self.units.get(),
        }
    }

    /// A batch sink for `jle_engine::ThroughputObserver` that feeds
    /// [`Stats::live_slots`]: attach
    /// `ThroughputObserver::new(interval, stats.live_slot_sink())` to a
    /// `SimCore` and the run's progress becomes visible here *while the
    /// slot loop is still running*, at one relaxed atomic add per
    /// `interval` slots. The closure owns a counter handle, so it is
    /// `'static` and composes with the scheduler's `Fn + Sync` trial
    /// bound without borrowing `Stats`.
    pub fn live_slot_sink(&self) -> impl FnMut(u64) + Send + 'static {
        let live = self.live_slots.clone();
        move |batch| live.add(batch)
    }

    /// Cross-check the two slot tallies. `live_slots` is credited from
    /// inside slot loops (and only on runs with a live sink attached);
    /// `simulated_slots` is credited per finished chunk from the stored
    /// `SlotCost`. After the final chunk flush every live-counted slot
    /// has also been chunk-counted, so `live <= simulated` must hold —
    /// a violation means a tally was double-counted or a sink was wired
    /// to work that never reached the store. Returns `Err` with both
    /// values on violation.
    pub fn check_slot_accounting(&self) -> Result<(), String> {
        let snap = self.snapshot();
        if snap.live_slots > snap.simulated_slots {
            return Err(format!(
                "slot accounting violated: live_slots ({}) > simulated_slots ({}) \
                 after final flush",
                snap.live_slots, snap.simulated_slots
            ));
        }
        Ok(())
    }
}

/// One telemetry event. Borrowed fields keep emission allocation-free on
/// the scheduler's hot path.
#[derive(Debug, Clone, Copy)]
pub enum Event<'a> {
    /// A scheduler came up; `jobs` is the effective worker parallelism.
    RunStarted {
        /// Effective worker-thread count.
        jobs: usize,
    },
    /// The CLI started one experiment.
    ExperimentStarted {
        /// Experiment id, e.g. `"e1"`.
        id: &'a str,
    },
    /// The CLI finished one experiment.
    ExperimentFinished {
        /// Experiment id.
        id: &'a str,
        /// Wall-clock seconds the experiment took.
        wall_secs: f64,
    },
    /// A work unit was submitted; `cached_trials` of its `trials` were
    /// served from the store up front.
    UnitStarted {
        /// Experiment id.
        experiment: &'a str,
        /// Sweep-point label.
        point: &'a str,
        /// Content-addressed cache key (hex).
        key: &'a str,
        /// Total trials in the unit.
        trials: u64,
        /// Trials already satisfied by the cache.
        cached_trials: u64,
    },
    /// One chunk of a unit finished simulating (never emitted for cached
    /// chunks).
    ChunkFinished {
        /// Experiment id.
        experiment: &'a str,
        /// Sweep-point label.
        point: &'a str,
        /// Trial range `[start, end)` of the chunk.
        start: u64,
        /// End of the trial range.
        end: u64,
        /// Channel slots simulated by this chunk.
        slots: u64,
        /// Trials per second over the unit's executed portion so far.
        trials_per_sec: f64,
        /// Slots per second over the unit's executed portion so far.
        slots_per_sec: f64,
        /// Estimated seconds until the unit completes.
        eta_secs: f64,
    },
    /// A work unit completed (all trials available).
    UnitFinished {
        /// Experiment id.
        experiment: &'a str,
        /// Sweep-point label.
        point: &'a str,
        /// Content-addressed cache key (hex).
        key: &'a str,
        /// Trials simulated now.
        executed_trials: u64,
        /// Trials served from the cache.
        cached_trials: u64,
        /// Channel slots simulated now.
        slots: u64,
        /// Wall-clock seconds for the unit.
        wall_secs: f64,
    },
    /// Whole-run totals (emitted by the CLI at exit).
    RunSummary {
        /// Counter totals.
        stats: StatsSnapshot,
        /// Wall-clock seconds since the scheduler came up.
        wall_secs: f64,
    },
}

impl Event<'_> {
    /// Render the event as a JSON value (for the JSONL run log).
    pub fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = Vec::new();
        let mut put = |k: &str, v: Value| m.push((k.to_string(), v));
        match *self {
            Event::RunStarted { jobs } => {
                put("ev", Value::Str("run_started".into()));
                put("jobs", (jobs as u64).to_json_value());
            }
            Event::ExperimentStarted { id } => {
                put("ev", Value::Str("experiment_started".into()));
                put("id", Value::Str(id.into()));
            }
            Event::ExperimentFinished { id, wall_secs } => {
                put("ev", Value::Str("experiment_finished".into()));
                put("id", Value::Str(id.into()));
                put("wall_secs", wall_secs.to_json_value());
            }
            Event::UnitStarted { experiment, point, key, trials, cached_trials } => {
                put("ev", Value::Str("unit_started".into()));
                put("experiment", Value::Str(experiment.into()));
                put("point", Value::Str(point.into()));
                put("key", Value::Str(key.into()));
                put("trials", trials.to_json_value());
                put("cached_trials", cached_trials.to_json_value());
            }
            Event::ChunkFinished {
                experiment,
                point,
                start,
                end,
                slots,
                trials_per_sec,
                slots_per_sec,
                eta_secs,
            } => {
                put("ev", Value::Str("chunk_finished".into()));
                put("experiment", Value::Str(experiment.into()));
                put("point", Value::Str(point.into()));
                put("start", start.to_json_value());
                put("end", end.to_json_value());
                put("slots", slots.to_json_value());
                put("trials_per_sec", trials_per_sec.to_json_value());
                put("slots_per_sec", slots_per_sec.to_json_value());
                put("eta_secs", eta_secs.to_json_value());
            }
            Event::UnitFinished {
                experiment,
                point,
                key,
                executed_trials,
                cached_trials,
                slots,
                wall_secs,
            } => {
                put("ev", Value::Str("unit_finished".into()));
                put("experiment", Value::Str(experiment.into()));
                put("point", Value::Str(point.into()));
                put("key", Value::Str(key.into()));
                put("executed_trials", executed_trials.to_json_value());
                put("cached_trials", cached_trials.to_json_value());
                put("slots", slots.to_json_value());
                put("wall_secs", wall_secs.to_json_value());
            }
            Event::RunSummary { stats, wall_secs } => {
                put("ev", Value::Str("run_summary".into()));
                put("stats", stats.to_json_value());
                put("wall_secs", wall_secs.to_json_value());
            }
        }
        Value::Map(m)
    }
}

/// Sink for telemetry events.
pub trait Reporter: Send + Sync {
    /// Handle one event.
    fn report(&self, event: &Event<'_>);
}

/// Throttled human-readable progress on stderr.
///
/// Chunk lines are rate-limited; unit/experiment/summary lines always
/// print. Quiet for fully cached work (zero executed trials) so warm
/// reruns don't scroll.
pub struct StderrProgress {
    min_interval: Duration,
    last_chunk_line: Mutex<Option<Instant>>,
}

impl StderrProgress {
    /// A reporter printing at most one chunk line per `min_interval`.
    pub fn new(min_interval: Duration) -> Self {
        StderrProgress { min_interval, last_chunk_line: Mutex::new(None) }
    }

    fn chunk_line_due(&self) -> bool {
        let mut last = self.last_chunk_line.lock().expect("progress clock");
        let now = Instant::now();
        match *last {
            Some(t) if now.duration_since(t) < self.min_interval => false,
            _ => {
                *last = Some(now);
                true
            }
        }
    }
}

impl Default for StderrProgress {
    fn default() -> Self {
        Self::new(Duration::from_millis(250))
    }
}

/// `1234567.0 → "1.2M"` — compact rate rendering for progress lines.
fn human(x: f64) -> String {
    if !x.is_finite() {
        return "-".into();
    }
    let (scaled, suffix) = if x >= 1e9 {
        (x / 1e9, "G")
    } else if x >= 1e6 {
        (x / 1e6, "M")
    } else if x >= 1e3 {
        (x / 1e3, "k")
    } else {
        (x, "")
    };
    if suffix.is_empty() {
        format!("{scaled:.0}")
    } else {
        format!("{scaled:.1}{suffix}")
    }
}

impl Reporter for StderrProgress {
    fn report(&self, event: &Event<'_>) {
        match *event {
            Event::RunStarted { jobs } => {
                eprintln!("orchestrator: {jobs} worker thread(s)");
            }
            Event::ExperimentStarted { .. } => {}
            Event::ExperimentFinished { id, wall_secs } => {
                eprintln!("{id}: done in {wall_secs:.1}s");
            }
            Event::UnitStarted { .. } => {}
            Event::ChunkFinished {
                experiment,
                point,
                end,
                trials_per_sec,
                slots_per_sec,
                eta_secs,
                ..
            } => {
                if self.chunk_line_due() {
                    eprintln!(
                        "[{experiment} {point}] {end} trials · {}/s · {} slots/s · ETA {eta_secs:.1}s",
                        human(trials_per_sec),
                        human(slots_per_sec),
                    );
                }
            }
            Event::UnitFinished {
                experiment,
                point,
                executed_trials,
                cached_trials,
                slots,
                wall_secs,
                ..
            } => {
                if executed_trials > 0 {
                    eprintln!(
                        "[{experiment} {point}] {executed_trials} trials run \
                         ({cached_trials} cached) · {} slots · {wall_secs:.1}s",
                        human(slots as f64),
                    );
                }
            }
            Event::RunSummary { stats, wall_secs } => {
                let total = stats.executed_trials + stats.cached_trials;
                let hit = if stats.chunk_hits + stats.chunk_misses > 0 {
                    100.0 * stats.chunk_hits as f64 / (stats.chunk_hits + stats.chunk_misses) as f64
                } else {
                    0.0
                };
                eprintln!(
                    "orchestrator summary: {} of {total} trials executed, {} cached \
                     (chunk hit rate {hit:.1}%), {} slots simulated, {wall_secs:.1}s",
                    stats.executed_trials,
                    stats.cached_trials,
                    human(stats.simulated_slots as f64),
                );
            }
        }
    }
}

/// Structured JSONL run log: one event object per line, each stamped with
/// milliseconds since the Unix epoch. Lines are flushed as written so a
/// killed run keeps its log.
pub struct JsonlReporter {
    out: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl JsonlReporter {
    /// Append to (creating if needed) the log at `path`.
    pub fn append(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        if let Some(dir) = path.as_ref().parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlReporter { out: Mutex::new(std::io::BufWriter::new(file)) })
    }
}

impl Reporter for JsonlReporter {
    fn report(&self, event: &Event<'_>) {
        let mut v = match event.to_value() {
            Value::Map(m) => m,
            other => vec![("ev".to_string(), other)],
        };
        let t_ms =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0);
        v.insert(0, ("t_ms".to_string(), t_ms.to_json_value()));
        let line = serde_json::to_string(&Value::Map(v)).expect("event serialization");
        let mut out = self.out.lock().expect("run log writer");
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let s = Stats::default();
        s.executed_trials.add(5);
        s.chunk_hits.add(2);
        let snap = s.snapshot();
        assert_eq!(snap.executed_trials, 5);
        assert_eq!(snap.chunk_hits, 2);
        assert_eq!(snap.cached_trials, 0);
    }

    #[test]
    fn stats_are_views_over_the_registry() {
        let registry = MetricRegistry::new();
        let a = Stats::on_registry(&registry);
        let b = Stats::on_registry(&registry);
        a.executed_trials.add(3);
        assert_eq!(b.executed_trials.get(), 3, "same registry -> same counters");
        let text = registry.render_prometheus();
        assert!(text.contains("jle_orchestrator_executed_trials 3"), "exported:\n{text}");
    }

    #[test]
    fn slot_accounting_check_catches_live_overrun() {
        let s = Stats::default();
        s.live_slots.add(10);
        s.simulated_slots.add(10);
        assert!(s.check_slot_accounting().is_ok(), "live == simulated is fine");
        s.live_slots.add(1);
        let err = s.check_slot_accounting().unwrap_err();
        assert!(err.contains("live_slots (11)"), "got: {err}");
        assert!(err.contains("simulated_slots (10)"), "got: {err}");
    }

    #[test]
    fn live_slot_sink_reports_slots_from_inside_a_run() {
        use jle_adversary::AdversarySpec;
        use jle_engine::{CohortStations, SimConfig, SimCore, ThroughputObserver, UniformProtocol};
        use jle_radio::{CdModel, ChannelState};

        #[derive(Debug)]
        struct Silent;
        impl UniformProtocol for Silent {
            fn tx_prob(&mut self, _: u64) -> f64 {
                0.0
            }
            fn on_state(&mut self, _: u64, _: ChannelState) {}
        }

        let stats = Stats::default();
        let config = SimConfig::new(4, CdModel::Strong).with_seed(1).with_max_slots(100);
        let mut obs = ThroughputObserver::new(16, stats.live_slot_sink());
        let mut stations = CohortStations::new(Silent);
        let report =
            SimCore::new(&config, &AdversarySpec::passive()).observe(&mut obs).run(&mut stations);
        let snap = stats.snapshot();
        assert_eq!(report.slots, 100, "silent cohort runs to the cap");
        assert_eq!(snap.live_slots, report.slots, "every played slot reaches the counter");
        assert_eq!(snap.simulated_slots, 0, "live counter is independent of chunk accounting");
    }

    #[test]
    fn slot_accounting_holds_under_concurrent_sink_writers() {
        // Satellite: the sweep service shares one registry across all
        // client jobs, so many worker threads feed live_slot_sink
        // concurrently while chunk completions credit simulated_slots.
        // Every batch must land exactly once and the live <= simulated
        // invariant must hold at the final flush.
        const WRITERS: u64 = 8;
        const BATCHES: u64 = 1000;
        const BATCH: u64 = 64;

        let registry = MetricRegistry::new();
        let stats = Stats::on_registry(&registry);
        std::thread::scope(|scope| {
            for _ in 0..WRITERS {
                // Each worker gets its own sink closure (its own counter
                // handle), like each job's ThroughputObserver would.
                let mut sink = stats.live_slot_sink();
                let simulated = stats.simulated_slots.clone();
                scope.spawn(move || {
                    for _ in 0..BATCHES {
                        sink(BATCH);
                        // The chunk flush credits the same work.
                        simulated.add(BATCH);
                    }
                });
            }
        });
        let snap = stats.snapshot();
        assert_eq!(snap.live_slots, WRITERS * BATCHES * BATCH, "no lost live batches");
        assert_eq!(snap.simulated_slots, WRITERS * BATCHES * BATCH, "no lost chunk credits");
        assert!(stats.check_slot_accounting().is_ok());

        // A second Stats view over the same registry sees identical
        // totals — the shared-registry contract the service relies on.
        let view = Stats::on_registry(&registry);
        assert_eq!(view.snapshot(), snap);

        // And a stray double-credit on the live side is still caught.
        stats.live_slots.add(1);
        assert!(stats.check_slot_accounting().is_err());
    }

    #[test]
    fn events_render_to_tagged_objects() {
        let ev = Event::UnitStarted {
            experiment: "e1",
            point: "p",
            key: "ab",
            trials: 10,
            cached_trials: 4,
        };
        let v = ev.to_value();
        assert_eq!(v.get("ev").unwrap().as_str().unwrap(), "unit_started");
        assert_eq!(v.get("trials").unwrap().as_u64().unwrap(), 10);
        let summary = Event::RunSummary { stats: StatsSnapshot::default(), wall_secs: 0.5 };
        let line = serde_json::to_string(&summary.to_value()).unwrap();
        assert!(line.contains("\"run_summary\""));
        assert!(line.contains("\"executed_trials\":0"));
    }

    #[test]
    fn jsonl_reporter_appends_lines() {
        let path =
            std::env::temp_dir().join(format!("jle-telemetry-test-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let r = JsonlReporter::append(&path).unwrap();
        r.report(&Event::RunStarted { jobs: 4 });
        r.report(&Event::ExperimentStarted { id: "e1" });
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"run_started\""));
        assert!(lines[0].contains("\"t_ms\""));
        assert!(lines[1].contains("\"experiment_started\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn human_rates() {
        assert_eq!(human(12.0), "12");
        assert_eq!(human(1_200.0), "1.2k");
        assert_eq!(human(3_400_000.0), "3.4M");
        assert_eq!(human(2.5e9), "2.5G");
        assert_eq!(human(f64::INFINITY), "-");
    }
}
