//! # jle-orchestrator
//!
//! Content-addressed experiment cache and resumable, checkpointed sweep
//! scheduler for the jamming-leader-election reproduction.
//!
//! The experiment suite re-simulates every trial on every invocation,
//! which makes wide sweeps expensive to iterate on and impossible to
//! resume after a kill. This crate sits between the experiment
//! definitions in `jle-bench` and the raw [`jle_engine::MonteCarlo`]
//! runner and adds three things:
//!
//! * **Fingerprints** ([`WorkSpec`] → [`Fingerprint`]): each unit of work
//!   — experiment id, sweep point, full parameter tree, base seed — is
//!   canonically serialized (sorted keys, shortest-round-trip floats) and
//!   SHA-256-hashed together with a code-version salt and the result
//!   type, yielding a content-addressed cache key.
//! * **A sharded store** ([`ResultStore`]): per-unit directories under the
//!   cache root, one JSON shard per completed trial chunk, written
//!   atomically (temp file + rename) and loaded corruption-tolerantly — a
//!   truncated or garbled shard is discarded and recomputed, never a
//!   panic.
//! * **A chunked scheduler** ([`Orchestrator`]): trials run in fixed
//!   chunks, each checkpointed on completion; seeding stays the workspace
//!   convention `base_seed + trial_index`, so an interrupted sweep
//!   resumed under [`CachePolicy::Resume`] assembles output bit-identical
//!   to an uninterrupted run, and a warm cache replays a sweep with zero
//!   trials executed.
//!
//! Live telemetry ([`Reporter`], [`Stats`]) reports trials/sec, slots/sec
//! (via [`jle_engine::SlotCost`]), cache hit/miss counts, per-experiment
//! wall-clock, and an ETA, with stderr-progress and JSONL-run-log
//! implementations.

pub mod fingerprint;
pub mod scheduler;
pub mod sha256;
pub mod store;
pub mod telemetry;

pub use fingerprint::{canonical_json, canonicalize, Fingerprint, WorkSpec};
pub use scheduler::{
    CachePolicy, CancelToken, Interrupted, Orchestrator, DEFAULT_CHUNK_SIZE, DEFAULT_CODE_SALT,
};
pub use store::{ChunkClaim, ResultStore};
pub use telemetry::{Event, JsonlReporter, Reporter, Stats, StatsSnapshot, StderrProgress};
