//! The trial-level sweep scheduler.
//!
//! [`Orchestrator::run_trials`] is the single entry point experiments
//! submit work through. A unit of `trials` trials is split into fixed
//! chunks; each chunk is either served from the [`ResultStore`] or
//! simulated on the rayon pool via [`MonteCarlo`] and checkpointed the
//! moment it finishes. Per-trial seeding is the workspace convention
//! `base_seed + trial_index` — a chunk covering `[start, end)` runs
//! `MonteCarlo::new(end - start, base_seed + start)` — so the assembled
//! result vector is bit-identical whether the unit was computed in one
//! pass, resumed after a kill, or served entirely from cache.

use crate::fingerprint::{canonical_json, canonicalize, Fingerprint, WorkSpec};
use crate::store::ResultStore;
use crate::telemetry::{Event, Reporter, Stats, StatsSnapshot};
use jle_engine::{MonteCarlo, SlotCost};
use jle_telemetry::{MetricRegistry, SpanRecorder};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default trials per checkpointed chunk. Small enough that a killed
/// sweep loses seconds of work, large enough that store traffic is noise
/// next to simulation time.
pub const DEFAULT_CHUNK_SIZE: u64 = 32;

/// Cache-key salt naming the current simulation-code generation. Bump on
/// any behavioural change to the engine or protocols so stale results are
/// recomputed instead of served.
pub const DEFAULT_CODE_SALT: &str = "jle-sim-v1";

/// How the scheduler uses the result store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// No store at all: compute everything, persist nothing.
    Off,
    /// Serve a unit from cache only when **every** chunk is present;
    /// otherwise recompute the whole unit (persisting as it goes). The
    /// default: partial state never influences a fresh run's shape.
    #[default]
    Complete,
    /// Additionally reuse partial per-chunk checkpoints, computing only
    /// the missing chunks — `--resume` after an interrupted sweep.
    Resume,
    /// Ignore existing entries and overwrite them — `--force`.
    Force,
}

/// Cooperative cancellation handle, checked at chunk boundaries.
///
/// Clones share one flag: hand one clone to
/// [`Orchestrator::cancel_token`] and keep another wherever the cancel
/// decision is made (a service's `cancel` frame, a signal handler, a
/// watchdog). Once fired it stays fired — the unit aborts at the next
/// chunk boundary with [`Interrupted::Cancelled`], leaving every
/// completed chunk checkpointed so a later run resumes or recomputes
/// cleanly.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<std::sync::atomic::AtomicBool>);

impl CancelToken {
    /// A fresh, unfired token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Fire the token. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has the token fired?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Why a unit stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Interrupted {
    /// The test-only chunk budget ran out mid-unit. Completed chunks are
    /// already checkpointed; a `Resume` run picks up from here.
    ChunkBudgetExhausted {
        /// Trials already available (cached or checkpointed) when the
        /// budget ran out.
        completed_trials: u64,
    },
    /// The unit's [`CancelToken`] fired. Completed chunks are already
    /// checkpointed; the remainder was never started.
    Cancelled {
        /// Trials already available (cached or checkpointed) at the
        /// cancellation boundary.
        completed_trials: u64,
    },
}

impl Interrupted {
    /// Trials already available (cached or checkpointed) when the unit
    /// stopped.
    pub fn completed_trials(&self) -> u64 {
        match *self {
            Interrupted::ChunkBudgetExhausted { completed_trials }
            | Interrupted::Cancelled { completed_trials } => completed_trials,
        }
    }
}

impl std::fmt::Display for Interrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupted::ChunkBudgetExhausted { completed_trials } => {
                write!(f, "chunk budget exhausted after {completed_trials} completed trials")
            }
            Interrupted::Cancelled { completed_trials } => {
                write!(f, "cancelled after {completed_trials} completed trials")
            }
        }
    }
}

impl std::error::Error for Interrupted {}

/// The scheduler: owns the store handle, the cache policy, the telemetry
/// fan-out, and the run counters.
pub struct Orchestrator {
    store: Option<ResultStore>,
    policy: CachePolicy,
    chunk_size: u64,
    jobs: Option<usize>,
    salt: String,
    reporters: Vec<Box<dyn Reporter>>,
    stats: Arc<Stats>,
    tracer: SpanRecorder,
    /// Test hook: when set, each executed (not cached) chunk decrements
    /// the budget; at zero the unit aborts with [`Interrupted`], modelling
    /// a mid-sweep kill at a checkpoint boundary.
    chunk_budget: Option<AtomicU64>,
    /// Cooperative cancellation, checked before each executed chunk.
    cancel: Option<CancelToken>,
    started: Instant,
}

impl Orchestrator {
    /// An orchestrator with no on-disk store: everything is computed,
    /// nothing persists. Telemetry still works.
    pub fn ephemeral() -> Self {
        Orchestrator {
            store: None,
            policy: CachePolicy::Off,
            chunk_size: DEFAULT_CHUNK_SIZE,
            jobs: None,
            salt: DEFAULT_CODE_SALT.to_string(),
            reporters: Vec::new(),
            stats: Arc::new(Stats::default()),
            tracer: SpanRecorder::disabled(),
            chunk_budget: None,
            cancel: None,
            started: Instant::now(),
        }
    }

    /// An orchestrator backed by a store at `dir` (created if absent),
    /// with the default [`CachePolicy::Complete`].
    pub fn with_cache_dir(dir: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        let mut o = Self::ephemeral();
        o.store = Some(ResultStore::open(dir)?);
        o.policy = CachePolicy::Complete;
        Ok(o)
    }

    /// An orchestrator sharing an already-open [`ResultStore`] handle,
    /// with the default [`CachePolicy::Complete`]. Cheap — no filesystem
    /// work — so a service can build one per submitted job over a single
    /// store.
    pub fn with_store(store: ResultStore) -> Self {
        let mut o = Self::ephemeral();
        o.store = Some(store);
        o.policy = CachePolicy::Complete;
        o
    }

    /// Set the cache policy. Setting anything but `Off` without a store
    /// behaves as `Off`.
    pub fn policy(mut self, policy: CachePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Set the checkpoint chunk size (clamped to ≥ 1).
    pub fn chunk_size(mut self, trials: u64) -> Self {
        self.chunk_size = trials.max(1);
        self
    }

    /// Pin the rayon worker count for executed chunks (`0` = default).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = if jobs == 0 { None } else { Some(jobs) };
        self
    }

    /// Override the code-version salt baked into every cache key.
    pub fn salt(mut self, salt: impl Into<String>) -> Self {
        self.salt = salt.into();
        self
    }

    /// Tag every cache key with the engine backend the trials run on.
    ///
    /// The default backend (`"exact"`) leaves the salt untouched, so
    /// existing stores stay valid; any other mode appends
    /// `+engine=<mode>`. The two exact backends draw from unrelated
    /// random streams — same spec, different bits — so their results
    /// must never alias in the store.
    pub fn engine_mode(mut self, mode: impl AsRef<str>) -> Self {
        let mode = mode.as_ref();
        if mode != "exact" {
            self.salt = format!("{}+engine={mode}", self.salt);
        }
        self
    }

    /// Attach a telemetry reporter.
    pub fn reporter(mut self, r: impl Reporter + 'static) -> Self {
        self.reporters.push(Box::new(r));
        self
    }

    /// Register the run counters on a shared [`MetricRegistry`] instead
    /// of a private one, so `jle_orchestrator_*` metrics export alongside
    /// other families (e.g. the engine's `jle_engine_*`). Counts already
    /// accumulated on the private registry are discarded — call this
    /// before submitting work.
    pub fn metrics_registry(mut self, registry: &MetricRegistry) -> Self {
        self.stats = Arc::new(Stats::on_registry(registry));
        self
    }

    /// Record unit/chunk spans on `tracer` (see
    /// [`SpanRecorder::to_chrome_trace`]). Disabled by default.
    pub fn tracer(mut self, tracer: SpanRecorder) -> Self {
        self.tracer = tracer;
        self
    }

    /// Test hook: abort after `chunks` executed chunks (see
    /// [`Interrupted::ChunkBudgetExhausted`]).
    pub fn chunk_budget(mut self, chunks: u64) -> Self {
        self.chunk_budget = Some(AtomicU64::new(chunks));
        self
    }

    /// Attach a cooperative [`CancelToken`]: once it fires, the running
    /// unit aborts at the next chunk boundary with
    /// [`Interrupted::Cancelled`]. Fully cached units complete without
    /// consulting the token (there is no computation to cancel).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Effective worker parallelism for executed chunks.
    pub fn effective_jobs(&self) -> usize {
        MonteCarlo::new(0, 0).with_jobs(self.jobs.unwrap_or(0)).effective_jobs()
    }

    /// The shared run counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// A copy of the run counters.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Seconds since the orchestrator was constructed.
    pub fn wall_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Fan one event out to every reporter.
    pub fn emit(&self, event: &Event<'_>) {
        for r in &self.reporters {
            r.report(event);
        }
    }

    /// Announce the run (worker count) to reporters.
    pub fn announce(&self) {
        self.emit(&Event::RunStarted { jobs: self.effective_jobs() });
    }

    /// Emit the closing [`Event::RunSummary`] and cross-check the two
    /// slot tallies ([`Stats::check_slot_accounting`]): after the final
    /// chunk flush, live-counted slots must not exceed chunk-counted
    /// ones. A violation panics in debug builds and warns on stderr in
    /// release builds.
    pub fn summarize(&self) {
        self.emit(&Event::RunSummary { stats: self.stats.snapshot(), wall_secs: self.wall_secs() });
        if let Err(msg) = self.stats.check_slot_accounting() {
            debug_assert!(false, "{msg}");
            eprintln!("orchestrator: WARNING: {msg}");
        }
    }

    fn chunk_ranges(&self, trials: u64) -> Vec<(u64, u64)> {
        (0..trials)
            .step_by(self.chunk_size as usize)
            .map(|start| (start, (start + self.chunk_size).min(trials)))
            .collect()
    }

    /// Run (or recall) `trials` trials of `spec`, returning results in
    /// trial order. `f` maps a per-trial seed (`spec.base_seed + index`)
    /// to a result; it must be deterministic in the seed and fully
    /// described by `spec` — anything else aliases in the cache.
    ///
    /// Errors only via the chunk-budget test hook or an attached
    /// [`CancelToken`]; production paths without either always complete
    /// (store corruption degrades to recomputation).
    pub fn try_run_trials<R, F>(
        &self,
        spec: &WorkSpec,
        trials: u64,
        f: F,
    ) -> Result<Vec<R>, Interrupted>
    where
        R: Send + Serialize + Deserialize + SlotCost,
        F: Fn(u64) -> R + Sync,
    {
        self.try_run_trials_inner(spec, trials, |start, len| {
            MonteCarlo::new(len, spec.base_seed + start).with_jobs(self.jobs.unwrap_or(0)).run(&f)
        })
    }

    /// Batch-aware twin of [`Self::try_run_trials`]: each missing chunk
    /// is executed as contiguous seed *batches* handed to `f` (one result
    /// per seed, in seed order) instead of one closure call per trial —
    /// the scheduling shape `jle_engine::batch` backends want, where one
    /// slot-loop pass serves a whole batch.
    ///
    /// Everything cache-shaped is unchanged: chunk ranges, fingerprints,
    /// checkpoint layout, and per-trial seeding are exactly those of the
    /// per-trial path, so a unit computed batched resumes (or is served)
    /// interchangeably with one computed per-trial **when the batch
    /// closure is bit-identical per trial** — which is the batch
    /// backend's contract with the fast-exact engine. Callers exploiting
    /// that contract should alias the salt via
    /// [`engine_mode("fast-exact")`](Self::engine_mode) so batch and
    /// fast-exact sweeps share warm caches.
    ///
    /// Within a chunk, the batch width is `chunk_len / effective_jobs`
    /// (rounded up) so a wide machine still fans out; raise
    /// [`chunk_size`](Self::chunk_size) to deepen the batches.
    pub fn try_run_trials_batched<R, F>(
        &self,
        spec: &WorkSpec,
        trials: u64,
        f: F,
    ) -> Result<Vec<R>, Interrupted>
    where
        R: Send + Serialize + Deserialize + SlotCost,
        F: Fn(&[u64]) -> Vec<R> + Sync,
    {
        let jobs = self.effective_jobs() as u64;
        self.try_run_trials_inner(spec, trials, |start, len| {
            let width = len.div_ceil(jobs).max(1);
            MonteCarlo::new(len, spec.base_seed + start)
                .with_jobs(self.jobs.unwrap_or(0))
                .run_batched(width, &f)
        })
    }

    /// [`Self::try_run_trials_batched`], panicking on interruption.
    pub fn run_trials_batched<R, F>(&self, spec: &WorkSpec, trials: u64, f: F) -> Vec<R>
    where
        R: Send + Serialize + Deserialize + SlotCost,
        F: Fn(&[u64]) -> Vec<R> + Sync,
    {
        self.try_run_trials_batched(spec, trials, f).expect("interrupted without a chunk budget")
    }

    /// The shared unit body: cache probing, chunk accounting, telemetry,
    /// and checkpointing. `exec(start, len)` computes one missing chunk's
    /// results in trial order; chunks execute in range order.
    fn try_run_trials_inner<R>(
        &self,
        spec: &WorkSpec,
        trials: u64,
        exec: impl Fn(u64, u64) -> Vec<R>,
    ) -> Result<Vec<R>, Interrupted>
    where
        R: Send + Serialize + Deserialize + SlotCost,
    {
        let unit_started = Instant::now();
        let _unit_span =
            self.tracer.span("orchestrator", format!("unit:{}/{}", spec.experiment, spec.point));
        let key = Fingerprint::of(spec, &self.salt, std::any::type_name::<R>());
        let store = match self.policy {
            CachePolicy::Off => None,
            _ => self.store.as_ref(),
        };
        let ranges = self.chunk_ranges(trials);

        self.stats.units.add(1);
        self.stats.planned_trials.add(trials);

        // Phase 1: what does the store already hold?
        let mut cached: Vec<Option<Vec<R>>> = Vec::with_capacity(ranges.len());
        if let Some(store) = store.filter(|_| self.policy != CachePolicy::Force) {
            for &(start, end) in &ranges {
                cached.push(store.load_chunk(&key, start, end));
            }
        } else {
            cached.resize_with(ranges.len(), || None);
        }
        // Under Complete, partial coverage is discarded wholesale so a
        // fresh run's shape never depends on leftover checkpoints.
        if self.policy == CachePolicy::Complete && cached.iter().any(Option::is_none) {
            for slot in &mut cached {
                *slot = None;
            }
        }

        let cached_trials: u64 = ranges
            .iter()
            .zip(&cached)
            .filter(|(_, c)| c.is_some())
            .map(|(&(start, end), _)| end - start)
            .sum();
        for c in &cached {
            let counter =
                if c.is_some() { &self.stats.chunk_hits } else { &self.stats.chunk_misses };
            counter.add(1);
        }
        self.stats.cached_trials.add(cached_trials);
        self.emit(&Event::UnitStarted {
            experiment: &spec.experiment,
            point: &spec.point,
            key: key.hex(),
            trials,
            cached_trials,
        });
        if let Some(store) = store {
            if cached_trials < trials {
                let pretty = serde_json::to_string_pretty(&canonicalize(&spec.to_value()))
                    .expect("spec serialization");
                let _ = store.write_spec_info(&key, &pretty);
            }
        }

        // Phase 2: execute the missing chunks in range order, checkpointing
        // each as it completes.
        let mut executed_trials = 0u64;
        let mut executed_slots = 0u64;
        let exec_started = Instant::now();
        let remaining_exec: u64 = trials - cached_trials;
        for (i, &(start, end)) in ranges.iter().enumerate() {
            if cached[i].is_some() {
                continue;
            }
            if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                let completed_trials = cached_trials + executed_trials;
                return Err(Interrupted::Cancelled { completed_trials });
            }
            if let Some(budget) = &self.chunk_budget {
                let left = budget.load(Ordering::Relaxed);
                if left == 0 {
                    let completed_trials = cached_trials + executed_trials;
                    return Err(Interrupted::ChunkBudgetExhausted { completed_trials });
                }
                budget.store(left - 1, Ordering::Relaxed);
            }
            let len = end - start;
            let chunk_span = self.tracer.span("orchestrator", format!("chunk:{start}..{end}"));
            let results = exec(start, len);
            debug_assert_eq!(results.len() as u64, len, "chunk executor must fill its range");
            drop(chunk_span);
            if let Some(store) = store {
                // Persist best-effort: an unwritable cache degrades to
                // recomputation next run, never to failure now.
                let _ = store.write_chunk(&key, start, end, &results);
            }
            let slots: u64 = results.iter().map(SlotCost::simulated_slots).sum();
            executed_trials += len;
            executed_slots += slots;
            self.stats.executed_trials.add(len);
            self.stats.simulated_slots.add(slots);

            let elapsed = exec_started.elapsed().as_secs_f64().max(1e-9);
            let trials_per_sec = executed_trials as f64 / elapsed;
            let eta_secs = (remaining_exec - executed_trials) as f64 / trials_per_sec;
            self.emit(&Event::ChunkFinished {
                experiment: &spec.experiment,
                point: &spec.point,
                start,
                end,
                slots,
                trials_per_sec,
                slots_per_sec: executed_slots as f64 / elapsed,
                eta_secs,
            });
            cached[i] = Some(results);
        }

        self.emit(&Event::UnitFinished {
            experiment: &spec.experiment,
            point: &spec.point,
            key: key.hex(),
            executed_trials,
            cached_trials,
            slots: executed_slots,
            wall_secs: unit_started.elapsed().as_secs_f64(),
        });

        let mut out = Vec::with_capacity(trials as usize);
        for chunk in cached {
            out.extend(chunk.expect("every chunk resolved"));
        }
        Ok(out)
    }

    /// [`Self::try_run_trials`], panicking on interruption (chunk budget
    /// or cancellation).
    pub fn run_trials<R, F>(&self, spec: &WorkSpec, trials: u64, f: F) -> Vec<R>
    where
        R: Send + Serialize + Deserialize + SlotCost,
        F: Fn(u64) -> R + Sync,
    {
        self.try_run_trials(spec, trials, f).expect("interrupted without a chunk budget")
    }

    /// The canonical JSON this orchestrator would hash for `spec` — for
    /// diagnostics and tests.
    pub fn canonical_spec_json(&self, spec: &WorkSpec) -> String {
        canonical_json(&spec.to_value())
    }

    /// The content-addressed cache key this orchestrator derives for
    /// `spec` with result type `R` — the config fingerprint stamped into
    /// flight-recorder postmortems, so an artifact names the exact unit
    /// to replay.
    pub fn fingerprint_hex<R>(&self, spec: &WorkSpec) -> String {
        Fingerprint::of(spec, &self.salt, std::any::type_name::<R>()).hex().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("jle-orch-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> WorkSpec {
        WorkSpec::new("eT", "unit", json!({"n": 8u64}), 5000)
    }

    fn trial(seed: u64) -> u64 {
        seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
    }

    #[test]
    fn ephemeral_matches_direct_monte_carlo() {
        let orch = Orchestrator::ephemeral().chunk_size(7);
        let got: Vec<u64> = orch.run_trials(&spec(), 100, trial);
        let direct = MonteCarlo::new(100, 5000).run(trial);
        assert_eq!(got, direct);
    }

    #[test]
    fn warm_cache_executes_zero_trials() {
        let dir = tmp_dir("warm");
        let cold = Orchestrator::with_cache_dir(&dir).unwrap().chunk_size(8);
        let a: Vec<u64> = cold.run_trials(&spec(), 50, trial);
        assert_eq!(cold.stats_snapshot().executed_trials, 50);

        let warm = Orchestrator::with_cache_dir(&dir).unwrap().chunk_size(8);
        let b: Vec<u64> = warm.run_trials(&spec(), 50, trial);
        let snap = warm.stats_snapshot();
        assert_eq!(snap.executed_trials, 0, "warm run must execute nothing");
        assert_eq!(snap.cached_trials, 50);
        assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn complete_policy_ignores_partial_coverage() {
        let dir = tmp_dir("complete");
        // Interrupt a cold run after 2 chunks.
        let cold = Orchestrator::with_cache_dir(&dir).unwrap().chunk_size(8).chunk_budget(2);
        let err = cold.try_run_trials::<u64, _>(&spec(), 50, trial).unwrap_err();
        assert_eq!(err, Interrupted::ChunkBudgetExhausted { completed_trials: 16 });

        // Default (Complete) policy: partial chunks are not consulted.
        let fresh = Orchestrator::with_cache_dir(&dir).unwrap().chunk_size(8);
        let a: Vec<u64> = fresh.run_trials(&spec(), 50, trial);
        assert_eq!(fresh.stats_snapshot().executed_trials, 50);
        assert_eq!(a, MonteCarlo::new(50, 5000).run(trial));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_reuses_partial_chunks_bit_identically() {
        let dir = tmp_dir("resume");
        let cold = Orchestrator::with_cache_dir(&dir).unwrap().chunk_size(8).chunk_budget(3);
        let err = cold.try_run_trials::<u64, _>(&spec(), 50, trial).unwrap_err();
        assert_eq!(err, Interrupted::ChunkBudgetExhausted { completed_trials: 24 });

        let resumed =
            Orchestrator::with_cache_dir(&dir).unwrap().chunk_size(8).policy(CachePolicy::Resume);
        let a: Vec<u64> = resumed.run_trials(&spec(), 50, trial);
        let snap = resumed.stats_snapshot();
        assert_eq!(snap.cached_trials, 24);
        assert_eq!(snap.executed_trials, 26);
        assert_eq!(a, MonteCarlo::new(50, 5000).run(trial), "resume must be bit-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn force_recomputes_and_overwrites() {
        let dir = tmp_dir("force");
        let cold = Orchestrator::with_cache_dir(&dir).unwrap().chunk_size(8);
        let _: Vec<u64> = cold.run_trials(&spec(), 20, trial);

        let forced =
            Orchestrator::with_cache_dir(&dir).unwrap().chunk_size(8).policy(CachePolicy::Force);
        let a: Vec<u64> = forced.run_trials(&spec(), 20, trial);
        assert_eq!(forced.stats_snapshot().executed_trials, 20);
        assert_eq!(a, MonteCarlo::new(20, 5000).run(trial));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_specs_do_not_alias() {
        let dir = tmp_dir("alias");
        let orch = Orchestrator::with_cache_dir(&dir).unwrap().chunk_size(8);
        let a: Vec<u64> = orch.run_trials(&spec(), 20, trial);
        let mut other = spec();
        other.params = json!({"n": 9u64});
        let b: Vec<u64> = orch.run_trials(&other, 20, |s| trial(s) ^ 1);
        assert_ne!(a, b);
        // Both now cached independently.
        let warm = Orchestrator::with_cache_dir(&dir).unwrap().chunk_size(8);
        let a2: Vec<u64> = warm.run_trials(&spec(), 20, trial);
        let b2: Vec<u64> = warm.run_trials(&other, 20, |s| trial(s) ^ 1);
        assert_eq!(warm.stats_snapshot().executed_trials, 0);
        assert_eq!((a, b), (a2, b2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spans_and_shared_registry_cover_executed_work() {
        let registry = MetricRegistry::new();
        let tracer = SpanRecorder::new();
        let orch = Orchestrator::ephemeral()
            .chunk_size(8)
            .metrics_registry(&registry)
            .tracer(tracer.clone());
        let got: Vec<u64> = orch.run_trials(&spec(), 20, trial);
        orch.summarize();
        assert_eq!(got, MonteCarlo::new(20, 5000).run(trial), "telemetry must not perturb results");
        assert_eq!(tracer.len(), 4, "one unit span + three chunk spans (8+8+4)");
        let trace = tracer.to_chrome_trace();
        assert!(trace.contains("unit:eT/unit"), "trace names the unit: {trace}");
        assert!(trace.contains("chunk:16..20"), "trace names the trailing chunk: {trace}");
        let text = registry.render_prometheus();
        assert!(text.contains("jle_orchestrator_executed_trials 20"), "{text}");
        assert!(text.contains("jle_orchestrator_units 1"), "{text}");
    }

    #[test]
    fn engine_mode_partitions_the_store() {
        let dir = tmp_dir("engine-mode");
        // Default mode: salt unchanged, so keys match a plain orchestrator.
        let plain = Orchestrator::with_cache_dir(&dir).unwrap().chunk_size(8);
        let tagged_default =
            Orchestrator::with_cache_dir(&dir).unwrap().chunk_size(8).engine_mode("exact");
        assert_eq!(
            plain.fingerprint_hex::<u64>(&spec()),
            tagged_default.fingerprint_hex::<u64>(&spec()),
            "the default engine must not invalidate existing caches"
        );
        // Fast-exact mode: different keys, no aliasing with exact results.
        let fast =
            Orchestrator::with_cache_dir(&dir).unwrap().chunk_size(8).engine_mode("fast-exact");
        assert_ne!(plain.fingerprint_hex::<u64>(&spec()), fast.fingerprint_hex::<u64>(&spec()));
        let a: Vec<u64> = plain.run_trials(&spec(), 20, trial);
        let b: Vec<u64> = fast.run_trials(&spec(), 20, |s| trial(s) ^ 1);
        assert_ne!(a, b);
        let warm_fast =
            Orchestrator::with_cache_dir(&dir).unwrap().chunk_size(8).engine_mode("fast-exact");
        let b2: Vec<u64> = warm_fast.run_trials(&spec(), 20, |s| trial(s) ^ 1);
        assert_eq!(warm_fast.stats_snapshot().executed_trials, 0);
        assert_eq!(b, b2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batched_scheduling_matches_per_trial_and_shares_its_cache() {
        let dir = tmp_dir("batched");
        // Cold: compute the unit through the batched path under the
        // fast-exact engine salt (the alias batch callers use, since
        // their per-trial bits match the fast-exact engine).
        let batched =
            Orchestrator::with_cache_dir(&dir).unwrap().chunk_size(8).engine_mode("fast-exact");
        let a: Vec<u64> = batched
            .run_trials_batched(&spec(), 50, |seeds| seeds.iter().map(|&s| trial(s)).collect());
        assert_eq!(batched.stats_snapshot().executed_trials, 50);
        assert_eq!(a, MonteCarlo::new(50, 5000).run(trial), "batched results keep trial order");

        // Warm: the per-trial path under the same engine mode is served
        // entirely from the batched run's checkpoints — fingerprints
        // alias because the per-trial bits are identical.
        let per_trial =
            Orchestrator::with_cache_dir(&dir).unwrap().chunk_size(8).engine_mode("fast-exact");
        let b: Vec<u64> = per_trial.run_trials(&spec(), 50, trial);
        assert_eq!(per_trial.stats_snapshot().executed_trials, 0, "warm cache shared across modes");
        assert_eq!(a, b);

        // And the reverse direction: a batched run over a per-trial-warmed
        // store executes nothing either.
        let warm_batched =
            Orchestrator::with_cache_dir(&dir).unwrap().chunk_size(8).engine_mode("fast-exact");
        let c: Vec<u64> = warm_batched
            .run_trials_batched(&spec(), 50, |seeds| seeds.iter().map(|&s| trial(s)).collect());
        assert_eq!(warm_batched.stats_snapshot().executed_trials, 0);
        assert_eq!(a, c);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batched_chunk_budget_interrupts_at_chunk_boundaries() {
        let orch = Orchestrator::ephemeral().chunk_size(8).chunk_budget(2);
        let err = orch
            .try_run_trials_batched::<u64, _>(&spec(), 50, |seeds| {
                seeds.iter().map(|&s| trial(s)).collect()
            })
            .unwrap_err();
        assert_eq!(err, Interrupted::ChunkBudgetExhausted { completed_trials: 16 });
    }

    #[test]
    fn pre_fired_cancel_token_aborts_before_the_first_chunk() {
        let token = CancelToken::new();
        token.cancel();
        let orch = Orchestrator::ephemeral().chunk_size(8).cancel_token(token);
        let err = orch.try_run_trials::<u64, _>(&spec(), 50, trial).unwrap_err();
        assert_eq!(err, Interrupted::Cancelled { completed_trials: 0 });
        assert_eq!(err.completed_trials(), 0);
        assert_eq!(orch.stats_snapshot().executed_trials, 0);
    }

    #[test]
    fn cancel_mid_unit_keeps_completed_chunks_and_resumes() {
        // A reporter that fires the token after the first executed chunk:
        // deterministic mid-unit cancellation at a checkpoint boundary.
        struct CancelAfterFirstChunk(CancelToken);
        impl crate::telemetry::Reporter for CancelAfterFirstChunk {
            fn report(&self, event: &Event<'_>) {
                if matches!(event, Event::ChunkFinished { .. }) {
                    self.0.cancel();
                }
            }
        }

        let dir = tmp_dir("cancel");
        let token = CancelToken::new();
        let orch = Orchestrator::with_cache_dir(&dir)
            .unwrap()
            .chunk_size(8)
            .cancel_token(token.clone())
            .reporter(CancelAfterFirstChunk(token.clone()));
        let err = orch.try_run_trials::<u64, _>(&spec(), 50, trial).unwrap_err();
        assert_eq!(err, Interrupted::Cancelled { completed_trials: 8 });
        assert!(token.is_cancelled());
        assert_eq!(orch.stats_snapshot().executed_trials, 8);

        // The completed chunk is checkpointed: a Resume run reuses it and
        // assembles the bit-identical full unit.
        let resumed =
            Orchestrator::with_cache_dir(&dir).unwrap().chunk_size(8).policy(CachePolicy::Resume);
        let got: Vec<u64> = resumed.run_trials(&spec(), 50, trial);
        assert_eq!(resumed.stats_snapshot().cached_trials, 8);
        assert_eq!(got, MonteCarlo::new(50, 5000).run(trial));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fully_cached_unit_completes_despite_cancellation() {
        let dir = tmp_dir("cancel-cached");
        let warmup = Orchestrator::with_cache_dir(&dir).unwrap().chunk_size(8);
        let a: Vec<u64> = warmup.run_trials(&spec(), 50, trial);

        let token = CancelToken::new();
        token.cancel();
        let warm = Orchestrator::with_cache_dir(&dir).unwrap().chunk_size(8).cancel_token(token);
        let b = warm.try_run_trials::<u64, _>(&spec(), 50, trial).unwrap();
        assert_eq!(a, b, "cache-served units have nothing to cancel");
        assert_eq!(warm.stats_snapshot().executed_trials, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trailing_partial_chunk_is_handled() {
        let orch = Orchestrator::ephemeral().chunk_size(32);
        let got: Vec<u64> = orch.run_trials(&spec(), 33, trial);
        assert_eq!(got.len(), 33);
        assert_eq!(got, MonteCarlo::new(33, 5000).run(trial));
    }
}
