//! Canonical work-unit fingerprints: the content-addressed cache keys.
//!
//! A [`WorkSpec`] names one unit of Monte-Carlo work — an experiment id, a
//! sweep-point label, the full parameter tree (simulation config,
//! adversary, fault plan, protocol, caps, …) and the base seed. Its
//! fingerprint is the SHA-256 of a *canonical* JSON rendering (object keys
//! sorted recursively, shortest-round-trip float formatting) of the spec
//! plus a code-version salt and the concrete result type, so
//!
//! * identical specs always hash identically, across processes and runs;
//! * perturbing any parameter — `n`, `ε`, `T`, a seed, a strategy, a fault
//!   plan — changes the key;
//! * bumping the salt (a code-behaviour change) or changing the projected
//!   result type invalidates the cache instead of serving stale data.

use serde::{Deserialize, Serialize, Value};

/// Description of one cacheable unit of Monte-Carlo work.
///
/// `params` must capture **everything** the trial closure's behaviour
/// depends on except the per-trial seed (which is `base_seed + index` by
/// the workspace-wide convention). Anything left out of `params` is
/// invisible to the cache and will alias.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkSpec {
    /// Experiment id, e.g. `"e1"`.
    pub experiment: String,
    /// Sweep-point label, e.g. `"lesk/clean/n=65536"`.
    pub point: String,
    /// Full parameter tree (JSON value).
    pub params: Value,
    /// Seed of trial 0.
    pub base_seed: u64,
}

impl WorkSpec {
    /// Create a spec.
    pub fn new(
        experiment: impl Into<String>,
        point: impl Into<String>,
        params: Value,
        base_seed: u64,
    ) -> Self {
        WorkSpec { experiment: experiment.into(), point: point.into(), params, base_seed }
    }

    /// The spec as a JSON value (canonical field order).
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            ("base_seed".to_string(), self.base_seed.to_json_value()),
            ("experiment".to_string(), Value::Str(self.experiment.clone())),
            ("params".to_string(), self.params.clone()),
            ("point".to_string(), Value::Str(self.point.clone())),
        ])
    }
}

impl Serialize for WorkSpec {
    fn to_json_value(&self) -> Value {
        self.to_value()
    }
}

impl Deserialize for WorkSpec {
    fn from_json_value(v: &Value) -> Result<Self, serde::Error> {
        let field = |k: &str| {
            v.get(k).ok_or_else(|| serde::Error::custom(format!("WorkSpec: missing field `{k}`")))
        };
        let experiment = field("experiment")?
            .as_str()
            .ok_or_else(|| serde::Error::custom("WorkSpec: `experiment` must be a string"))?
            .to_string();
        let point = field("point")?
            .as_str()
            .ok_or_else(|| serde::Error::custom("WorkSpec: `point` must be a string"))?
            .to_string();
        let base_seed = field("base_seed")?
            .as_u64()
            .ok_or_else(|| serde::Error::custom("WorkSpec: `base_seed` must be a u64"))?;
        let params = field("params")?.clone();
        Ok(WorkSpec { experiment, point, params, base_seed })
    }
}

/// Recursively sort object keys so logically equal values render
/// identically regardless of construction order. Stable, so duplicate
/// keys (already pathological) keep their relative order.
pub fn canonicalize(v: &Value) -> Value {
    match v {
        Value::Seq(xs) => Value::Seq(xs.iter().map(canonicalize).collect()),
        Value::Map(m) => {
            let mut entries: Vec<(String, Value)> =
                m.iter().map(|(k, x)| (k.clone(), canonicalize(x))).collect();
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Map(entries)
        }
        other => other.clone(),
    }
}

/// Canonical compact JSON rendering of a value (sorted keys at every
/// level; floats in Rust's shortest-round-trip form).
pub fn canonical_json(v: &Value) -> String {
    serde_json::to_string(&canonicalize(v)).expect("canonical JSON rendering")
}

/// A content-addressed cache key: 64 lowercase hex chars of SHA-256.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fingerprint(String);

impl Fingerprint {
    /// Fingerprint a spec under a code-version `salt` for results of type
    /// `result_type` (pass `std::any::type_name::<R>()`).
    pub fn of(spec: &WorkSpec, salt: &str, result_type: &str) -> Self {
        let keyed = Value::Map(vec![
            ("result_type".to_string(), Value::Str(result_type.to_string())),
            ("salt".to_string(), Value::Str(salt.to_string())),
            ("spec".to_string(), spec.to_value()),
        ]);
        Fingerprint(crate::sha256::sha256_hex(canonical_json(&keyed).as_bytes()))
    }

    /// The full hex key.
    pub fn hex(&self) -> &str {
        &self.0
    }

    /// The two-char shard prefix under which this key is stored.
    pub fn shard(&self) -> &str {
        &self.0[..2]
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn spec() -> WorkSpec {
        WorkSpec::new("e1", "clean/n=16", json!({"n": 16u64, "eps": 0.5f64}), 1000)
    }

    #[test]
    fn key_order_does_not_matter() {
        let a = json!({"n": 16u64, "eps": 0.5f64});
        let b = json!({"eps": 0.5f64, "n": 16u64});
        assert_eq!(canonical_json(&a), canonical_json(&b));
        let fa = Fingerprint::of(&WorkSpec::new("e1", "p", a, 7), "s", "t");
        let fb = Fingerprint::of(&WorkSpec::new("e1", "p", b, 7), "s", "t");
        assert_eq!(fa, fb);
    }

    #[test]
    fn nested_maps_are_sorted_too() {
        let a = json!({"outer": {"b": 1u64, "a": 2u64}});
        assert_eq!(canonical_json(&a), r#"{"outer":{"a":2,"b":1}}"#);
    }

    #[test]
    fn every_keyed_field_matters() {
        let base = Fingerprint::of(&spec(), "salt", "ty");
        let mut point = spec();
        point.point = "other".into();
        let mut seed = spec();
        seed.base_seed += 1;
        let mut exp = spec();
        exp.experiment = "e2".into();
        let mut params = spec();
        params.params = json!({"n": 17u64, "eps": 0.5f64});
        for (what, fp) in [
            ("point", Fingerprint::of(&point, "salt", "ty")),
            ("base_seed", Fingerprint::of(&seed, "salt", "ty")),
            ("experiment", Fingerprint::of(&exp, "salt", "ty")),
            ("params", Fingerprint::of(&params, "salt", "ty")),
            ("salt", Fingerprint::of(&spec(), "salt2", "ty")),
            ("result_type", Fingerprint::of(&spec(), "salt", "ty2")),
        ] {
            assert_ne!(base, fp, "perturbing {what} must change the key");
        }
    }

    #[test]
    fn fingerprint_shape() {
        let fp = Fingerprint::of(&spec(), "salt", "ty");
        assert_eq!(fp.hex().len(), 64);
        assert!(fp.hex().chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(fp.shard(), &fp.hex()[..2]);
        assert_eq!(fp.to_string(), fp.hex());
    }
}
