//! Property tests for the content-addressed fingerprint (ISSUE satellite):
//! identical work specs must hash identically, any single-field
//! perturbation must change the key, and the canonical form must be
//! stable across serialization round-trips.

use jle_orchestrator::{canonical_json, canonicalize, Fingerprint, WorkSpec};
use proptest::prelude::*;
use serde::Value;

/// The parameter surface of a representative sweep point. Every field
/// feeds the params tree, so every field must be key-relevant.
#[derive(Debug, Clone, PartialEq)]
struct Point {
    n: u64,
    eps_millis: u64,
    t_window: u64,
    strategy: usize,
    fault_flips: bool,
    base_seed: u64,
    point: String,
}

const STRATEGIES: [&str; 4] = ["saturating", "burst", "periodic", "sweep_targeted"];

impl Point {
    fn params(&self) -> Value {
        serde_json::json!({
            "kind": "proptest",
            "n": self.n,
            "eps": self.eps_millis as f64 / 1000.0,
            "adv": {"t": self.t_window, "strategy": STRATEGIES[self.strategy]},
            "fault_flips": self.fault_flips,
        })
    }

    fn spec(&self) -> WorkSpec {
        WorkSpec::new("prop", &self.point, self.params(), self.base_seed)
    }

    fn key(&self) -> String {
        Fingerprint::of(&self.spec(), "test-salt", "R").hex().to_string()
    }
}

fn arb_point() -> impl Strategy<Value = Point> {
    (
        (1u64..1 << 20, 1u64..1000, 1u64..4096),
        (0usize..STRATEGIES.len(), any::<bool>(), any::<u64>()),
    )
        .prop_map(|((n, eps_millis, t_window), (strategy, fault_flips, base_seed))| Point {
            n,
            eps_millis,
            t_window,
            strategy,
            fault_flips,
            base_seed,
            point: format!("n={n}"),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Hashing is a pure function of the spec: rebuilding the identical
    /// spec (fresh JSON tree, fresh strings) yields the identical key.
    #[test]
    fn identical_specs_hash_identically(p in arb_point()) {
        prop_assert_eq!(p.clone().key(), p.key());
    }

    /// Every single-field perturbation — n, ε, T, strategy, fault plan,
    /// or seed — lands on a different cache key.
    #[test]
    fn any_single_field_perturbation_changes_the_key(
        p in arb_point(),
        field in 0usize..6,
    ) {
        let mut q = p.clone();
        match field {
            0 => q.n += 1,
            1 => q.eps_millis = q.eps_millis % 999 + 1,
            2 => q.t_window += 1,
            3 => q.strategy = (q.strategy + 1) % STRATEGIES.len(),
            4 => q.fault_flips = !q.fault_flips,
            _ => q.base_seed = q.base_seed.wrapping_add(1),
        }
        // Field 1's wraparound can collide with the original; skip the
        // (rare) no-op case rather than mask a real aliasing bug.
        if q != p {
            prop_assert!(q.key() != p.key(), "perturbing field {} did not change the key", field);
        }
    }

    /// Canonicalization is stable across a text round-trip: serializing
    /// the canonical form and re-parsing it canonicalizes to the same
    /// bytes, so keys never depend on map ordering or formatting.
    #[test]
    fn canonical_json_survives_round_trips(p in arb_point()) {
        let v = p.spec().to_value();
        let first = canonical_json(&v);
        let reparsed: Value = serde_json::from_str(&first).expect("canonical JSON parses");
        prop_assert_eq!(first.clone(), canonical_json(&reparsed));
        // And canonicalize() is idempotent.
        prop_assert_eq!(first, canonical_json(&canonicalize(&v)));
    }

    /// The key is insensitive to map-entry insertion order.
    #[test]
    fn key_ignores_map_ordering(p in arb_point()) {
        let scrambled = serde_json::json!({
            "fault_flips": p.fault_flips,
            "adv": {"strategy": STRATEGIES[p.strategy], "t": p.t_window},
            "eps": p.eps_millis as f64 / 1000.0,
            "n": p.n,
            "kind": "proptest",
        });
        let spec = WorkSpec::new("prop", &p.point, scrambled, p.base_seed);
        let key = Fingerprint::of(&spec, "test-salt", "R").hex().to_string();
        prop_assert_eq!(key, p.key());
    }
}
