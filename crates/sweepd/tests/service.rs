//! End-to-end service tests over real sockets.
//!
//! The load-bearing one is `two_concurrent_clients_dedup_into_one_computation`
//! (PR acceptance): with a single worker pinned behind a long blocker
//! job, two clients submitting the same `WorkSpec` are both guaranteed
//! to be admitted while the job is still in flight, so the second MUST
//! coalesce (dedup counter = 1) and both MUST receive byte-identical
//! result payloads from the single computation.

use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
use jle_engine::{run_cohort, RunReport, SimConfig};
use jle_orchestrator::WorkSpec;
use jle_protocols::LeskProtocol;
use jle_radio::CdModel;
use jle_sweepd::client::{snapshot_counter, SweepClient};
use jle_sweepd::{ClientError, Endpoint, ServerConfig, ServerHandle, SweepServer};
use serde::Serialize;
use serde_json::json;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jle-sweepd-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A tcp server on an ephemeral port with a private cache.
fn start(tag: &str, tweak: impl FnOnce(&mut ServerConfig)) -> (ServerHandle, Endpoint, PathBuf) {
    let cache = tmp_dir(tag);
    let mut config = ServerConfig {
        cache_dir: Some(cache.clone()),
        workers: 1,
        max_queue: 64,
        client_share: 8,
        ..ServerConfig::default()
    };
    tweak(&mut config);
    let server = SweepServer::bind(&Endpoint::Tcp("127.0.0.1:0".into()), config).unwrap();
    let addr = server.tcp_addr().unwrap();
    let handle = server.spawn();
    (handle, Endpoint::Tcp(addr.to_string()), cache)
}

fn counter(handle: &ServerHandle, name: &str) -> u64 {
    handle.registry().counter(name, "").get()
}

fn wait_until(timeout: Duration, mut f: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    f()
}

fn election_params(n: u64, max_slots: u64, adv: &AdversarySpec, eps: f64) -> serde::Value {
    json!({
        "kind": "cohort_election",
        "n": n,
        "cd": CdModel::Strong.to_json_value(),
        "adv": adv.to_json_value(),
        "max_slots": max_slots,
        "proto": {"proto": "lesk", "eps": eps},
    })
}

/// Trials of this unit cost ~32 × 100k slots: LESU under a saturating
/// near-total jammer with weak collision detection never resolves, so
/// every trial burns the whole slot cap. That pins a single worker for
/// long enough (hundreds of ms) that anything submitted right after is
/// guaranteed to still be in flight.
const BLOCKER_TRIALS: u64 = 32;

fn blocker_spec() -> WorkSpec {
    let jam = AdversarySpec::new(Rate::from_f64(1e-9), 1024, JamStrategyKind::Saturating);
    let params = json!({
        "kind": "cohort_election",
        "n": 1024u64,
        "cd": CdModel::Weak.to_json_value(),
        "adv": jam.to_json_value(),
        "max_slots": 100_000u64,
        "proto": {"proto": "lesu"},
    });
    WorkSpec::new("svc", "blocker", params, 77)
}

fn quick_spec(point: &str, base_seed: u64) -> WorkSpec {
    WorkSpec::new(
        "svc",
        point,
        election_params(32, 50_000, &AdversarySpec::passive(), 0.5),
        base_seed,
    )
}

#[test]
fn two_concurrent_clients_dedup_into_one_computation() {
    let (handle, endpoint, cache) = start("dedup", |_| {});
    let mut blocker_client = SweepClient::connect(&endpoint).unwrap();
    let mut a = SweepClient::connect(&endpoint).unwrap();
    let mut b = SweepClient::connect(&endpoint).unwrap();

    // Pin the single worker, then race two identical submissions in.
    let blocker = blocker_client.submit(&blocker_spec(), BLOCKER_TRIALS).unwrap();
    assert!(!blocker.dedup);

    let spec = quick_spec("shared", 1234);
    let trials = 16;
    let sub_a = a.submit(&spec, trials).unwrap();
    let sub_b = b.submit(&spec, trials).unwrap();
    assert!(!sub_a.dedup, "first submission computes");
    assert!(sub_b.dedup, "second identical submission must coalesce");
    assert_eq!(sub_a.key, sub_b.key, "same spec, same fingerprint");

    let out_a = a.wait(&sub_a, |_| {}).unwrap();
    let out_b = b.wait(&sub_b, |_| {}).unwrap();

    // Byte-identical payloads from the one computation.
    let bytes_a = serde_json::to_string(&out_a.results).unwrap();
    let bytes_b = serde_json::to_string(&out_b.results).unwrap();
    assert_eq!(bytes_a, bytes_b, "both subscribers see the same bytes");
    assert_eq!(out_a.reports().unwrap().len(), trials as usize);

    // Exactly one dedup hit, and the unit was executed exactly once:
    // orchestrator-executed trials cover the blocker + ONE copy of the
    // shared unit.
    assert_eq!(counter(&handle, "jle_sweepd_dedup_hits_total"), 1);
    let _ = blocker_client.wait(&blocker, |_| {}).unwrap();
    assert!(wait_until(Duration::from_secs(10), || {
        counter(&handle, "jle_sweepd_jobs_completed_total") == 2
    }));
    assert_eq!(counter(&handle, "jle_orchestrator_executed_trials"), BLOCKER_TRIALS + trials);

    // And the server's answer matches a local run bit-for-bit.
    let local: Vec<RunReport> = (0..trials)
        .map(|i| {
            let config =
                SimConfig::new(32, CdModel::Strong).with_seed(1234 + i).with_max_slots(50_000);
            run_cohort(&config, &AdversarySpec::passive(), || LeskProtocol::new(0.5))
        })
        .collect();
    let local_bytes = serde_json::to_string(&serde::Value::Seq(
        local.iter().map(|r| r.to_json_value()).collect(),
    ))
    .unwrap();
    assert_eq!(bytes_a, local_bytes, "server and local runs agree bit-for-bit");

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn full_queue_rejects_with_retry_after() {
    let (handle, endpoint, cache) = start("queue-full", |c| {
        c.max_queue = 2;
        c.client_share = 64;
    });
    let mut client = SweepClient::connect(&endpoint).unwrap();
    let blocker = client.submit(&blocker_spec(), BLOCKER_TRIALS).unwrap();
    // Let the single worker pick the blocker up so the queue is empty...
    assert!(wait_until(Duration::from_secs(5), || {
        handle.registry().gauge("jle_sweepd_active_jobs", "").get() >= 1.0
    }));
    // ...then fill the bounded queue and overflow it.
    client.submit(&quick_spec("q0", 1), 4).unwrap();
    client.submit(&quick_spec("q1", 2), 4).unwrap();
    let err = client.submit(&quick_spec("q2", 3), 4).unwrap_err();
    match err {
        ClientError::Rejected { reason, retry_after_ms } => {
            assert!(retry_after_ms > 0, "backpressure must carry a retry hint");
            assert!(reason.contains("queue full"), "{reason}");
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    assert_eq!(counter(&handle, "jle_sweepd_rejected_queue_full_total"), 1);
    let _ = client.wait(&blocker, |_| {});
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn fair_share_caps_one_client() {
    let (handle, endpoint, cache) = start("fair-share", |c| {
        c.client_share = 2;
    });
    let mut client = SweepClient::connect(&endpoint).unwrap();
    client.submit(&blocker_spec(), BLOCKER_TRIALS).unwrap();
    client.submit(&quick_spec("f0", 1), 4).unwrap();
    let err = client.submit(&quick_spec("f1", 2), 4).unwrap_err();
    match err {
        ClientError::Rejected { reason, .. } => {
            assert!(reason.contains("fair share"), "{reason}");
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    assert_eq!(counter(&handle, "jle_sweepd_rejected_fair_share_total"), 1);
    // A different client still gets in: the cap is per client, not global.
    let mut other = SweepClient::connect(&endpoint).unwrap();
    other.submit(&quick_spec("f2", 3), 4).unwrap();
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn cancel_withdraws_interest_and_stops_orphaned_work() {
    let (handle, endpoint, cache) = start("cancel", |_| {});
    let mut client = SweepClient::connect(&endpoint).unwrap();
    let blocker = client.submit(&blocker_spec(), BLOCKER_TRIALS).unwrap();
    let queued = client.submit(&quick_spec("doomed", 9), 8).unwrap();
    client.cancel(&queued.key).unwrap();
    // The queued job has no subscriber left; the worker discards it at
    // the cancellation pre-check instead of computing it.
    let _ = client.wait(&blocker, |_| {}).unwrap();
    assert!(wait_until(Duration::from_secs(10), || {
        counter(&handle, "jle_sweepd_jobs_cancelled_total") == 1
    }));
    assert_eq!(counter(&handle, "jle_sweepd_jobs_completed_total"), 1, "blocker only");
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn warm_resubmit_is_a_unit_cache_hit() {
    let (handle, endpoint, cache) = start("warm", |_| {});
    let mut client = SweepClient::connect(&endpoint).unwrap();
    let spec = quick_spec("warm", 55);
    let cold = client.submit_and_wait(&spec, 8, 8, |_| {}).unwrap();
    assert_eq!(cold.executed_trials, 8);
    assert_eq!(cold.cached_trials, 0);

    let warm = client.submit_and_wait(&spec, 8, 8, |_| {}).unwrap();
    assert_eq!(warm.executed_trials, 0, "warm resubmit must execute nothing");
    assert_eq!(warm.cached_trials, 8);
    assert_eq!(
        serde_json::to_string(&cold.results).unwrap(),
        serde_json::to_string(&warm.results).unwrap(),
        "cache replay is byte-identical"
    );
    assert_eq!(counter(&handle, "jle_sweepd_unit_cache_hits_total"), 1);
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn unsupported_work_is_refused_not_guessed() {
    let (handle, endpoint, cache) = start("unsupported", |_| {});
    let mut client = SweepClient::connect(&endpoint).unwrap();
    // A warm-start knob the server does not know: refusing it is what
    // protects the shared cache from a wrong reconstruction.
    let mut params = election_params(32, 50_000, &AdversarySpec::passive(), 0.5);
    if let serde::Value::Map(m) = &mut params {
        let proto = m.iter_mut().find(|(k, _)| k == "proto").unwrap();
        if let serde::Value::Map(p) = &mut proto.1 {
            p.push(("u0".into(), serde::Value::U64(6)));
        }
    }
    let err = client.submit(&WorkSpec::new("svc", "u0", params, 5), 4).unwrap_err();
    assert!(matches!(err, ClientError::Unsupported(_)), "{err:?}");
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn metrics_frame_and_http_scrape_expose_the_registry() {
    let (handle, endpoint, cache) = start("metrics", |_| {});
    let mut client = SweepClient::connect(&endpoint).unwrap();
    client.submit_and_wait(&quick_spec("m", 3), 4, 8, |_| {}).unwrap();

    let (server, conn) = client.metrics().unwrap();
    assert_eq!(snapshot_counter(&server, "jle_sweepd_submissions_total"), Some(1));
    assert_eq!(snapshot_counter(&server, "jle_sweepd_jobs_completed_total"), Some(1));
    assert_eq!(snapshot_counter(&conn, "jle_sweepd_client_submissions_total"), Some(1));
    assert_eq!(snapshot_counter(&conn, "jle_sweepd_client_results_total"), Some(1));

    // HTTP-ish scrape on the same socket.
    let Endpoint::Tcp(addr) = &endpoint else { unreachable!() };
    let mut raw = std::net::TcpStream::connect(addr.as_str()).unwrap();
    use std::io::{Read, Write};
    raw.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    raw.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
    assert!(response.contains("# TYPE jle_sweepd_submissions_total counter"), "{response}");
    assert!(response.contains("jle_sweepd_submissions_total 1"), "{response}");
    assert!(response.contains("jle_orchestrator_executed_trials"), "{response}");

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(cache);
}

#[cfg(unix)]
#[test]
fn unix_socket_round_trip() {
    let dir = tmp_dir("unix");
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("sweepd.sock");
    let server = SweepServer::bind(
        &Endpoint::Unix(sock.clone()),
        ServerConfig { workers: 1, ..ServerConfig::default() },
    )
    .unwrap();
    let handle = server.spawn();
    let mut client = SweepClient::connect(&Endpoint::Unix(sock.clone())).unwrap();
    assert_eq!(client.server_info().proto, jle_sweepd::PROTOCOL_VERSION);
    let out = client.submit_and_wait(&quick_spec("ux", 2), 4, 8, |_| {}).unwrap();
    assert_eq!(out.reports().unwrap().len(), 4);
    handle.shutdown().unwrap();
    assert!(!sock.exists(), "socket file is cleaned up on exit");
    let _ = std::fs::remove_dir_all(dir);
}
