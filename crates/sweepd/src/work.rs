//! Server-side work-kind registry: parameter tree → trial closure.
//!
//! A submitted [`jle_orchestrator::WorkSpec`] carries only data; the
//! closure that actually runs a trial must be reconstructed here from
//! `spec.params`. The contract with the cache is absolute — the
//! reconstructed closure must be **bit-identical in behaviour** to the
//! one the bench CLIs run locally for the same tree, because both sides
//! address the same [`jle_orchestrator::ResultStore`] entries.
//!
//! That is why parsing is deliberately strict: a parameter tree with an
//! unknown key (e.g. an experiment's private warm-start knob riding in
//! `proto`) is rejected as [`WorkError::Unsupported`] instead of being
//! ignored. Ignoring it would compute *something* under a fingerprint
//! that promises something else — silent cache poisoning. Clients fall
//! back to local computation for unsupported trees.

use jle_adversary::AdversarySpec;
use jle_engine::{
    run_batch_uniform, run_cohort, run_fast_exact, PerStation, Protocol, RunReport, SimConfig,
};
use jle_protocols::{BackoffProtocol, LeskProtocol, LesuProtocol, WillardProtocol};
use jle_radio::CdModel;
use serde::{Deserialize, Value};

/// A reconstructed per-trial closure: seed → report.
pub type TrialFn = Box<dyn Fn(u64) -> RunReport + Send + Sync>;

/// A reconstructed batch closure: seed slice → one report per seed, in
/// seed order, each bit-identical to what the [`TrialFn`] for the same
/// tree returns for that seed — the contract that lets batch-computed
/// chunks share cache entries with per-trial ones.
pub type BatchFn = Box<dyn Fn(&[u64]) -> Vec<RunReport> + Send + Sync>;

/// Why a parameter tree could not be turned into runnable work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkError {
    /// The tree is well-formed but names work this server cannot
    /// faithfully reconstruct (unknown kind, unknown protocol, or an
    /// unrecognized key that may change behaviour). Clients should
    /// compute locally.
    Unsupported(String),
    /// The tree is malformed (missing/ill-typed required fields).
    Invalid(String),
}

impl std::fmt::Display for WorkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkError::Unsupported(msg) => write!(f, "unsupported work: {msg}"),
            WorkError::Invalid(msg) => write!(f, "invalid work: {msg}"),
        }
    }
}

impl std::error::Error for WorkError {}

fn keys_of(v: &Value) -> Vec<&str> {
    v.as_map().map(|m| m.iter().map(|(k, _)| k.as_str()).collect()).unwrap_or_default()
}

fn check_keys(v: &Value, what: &str, allowed: &[&str]) -> Result<(), WorkError> {
    for k in keys_of(v) {
        if !allowed.contains(&k) {
            return Err(WorkError::Unsupported(format!(
                "{what}: unrecognized key `{k}` (server cannot guarantee faithful reconstruction)"
            )));
        }
    }
    Ok(())
}

fn req_u64(v: &Value, k: &str, what: &str) -> Result<u64, WorkError> {
    v.get(k)
        .and_then(Value::as_u64)
        .ok_or_else(|| WorkError::Invalid(format!("{what}: missing u64 `{k}`")))
}

fn req_f64(v: &Value, k: &str, what: &str) -> Result<f64, WorkError> {
    v.get(k)
        .and_then(Value::as_f64)
        .ok_or_else(|| WorkError::Invalid(format!("{what}: missing f64 `{k}`")))
}

/// The uniform election protocols both election kinds share; the small
/// closed set keeps reconstruction honest (anything else is
/// [`WorkError::Unsupported`]).
#[derive(Debug, Clone, Copy)]
enum ElectionProto {
    Lesk(f64),
    Lesu,
    Backoff,
    Willard,
}

/// The common election parameter tree: fields `n`, `cd`, `adv`,
/// `max_slots`, and a `proto` subtree naming one uniform protocol.
fn parse_election(
    params: &Value,
    what: &str,
) -> Result<(SimConfig, AdversarySpec, ElectionProto), WorkError> {
    check_keys(params, what, &["kind", "n", "cd", "adv", "max_slots", "proto"])?;

    let n = req_u64(params, "n", what)?;
    let max_slots = req_u64(params, "max_slots", what)?;
    let cd_value =
        params.get("cd").ok_or_else(|| WorkError::Invalid(format!("{what}: missing `cd`")))?;
    let cd = CdModel::from_json_value(cd_value)
        .map_err(|e| WorkError::Invalid(format!("{what}: bad `cd`: {e}")))?;
    let adv_value =
        params.get("adv").ok_or_else(|| WorkError::Invalid(format!("{what}: missing `adv`")))?;
    let adv = AdversarySpec::from_json_value(adv_value)
        .map_err(|e| WorkError::Invalid(format!("{what}: bad `adv`: {e}")))?;
    let proto = params
        .get("proto")
        .ok_or_else(|| WorkError::Invalid(format!("{what}: missing `proto`")))?;
    let name = proto
        .get("proto")
        .and_then(Value::as_str)
        .ok_or_else(|| WorkError::Invalid("proto: missing string `proto`".into()))?;
    let proto = match name {
        "lesk" => {
            check_keys(proto, "proto:lesk", &["proto", "eps"])?;
            ElectionProto::Lesk(req_f64(proto, "eps", "proto:lesk")?)
        }
        "lesu" => {
            check_keys(proto, "proto:lesu", &["proto"])?;
            ElectionProto::Lesu
        }
        "backoff" => {
            check_keys(proto, "proto:backoff", &["proto"])?;
            ElectionProto::Backoff
        }
        "willard" => {
            check_keys(proto, "proto:willard", &["proto"])?;
            ElectionProto::Willard
        }
        other => {
            return Err(WorkError::Unsupported(format!("unknown election protocol `{other}`")))
        }
    };
    Ok((SimConfig::new(n, cd).with_max_slots(max_slots), adv, proto))
}

fn station_factory(proto: ElectionProto) -> impl Fn(u64) -> Box<dyn Protocol> {
    move |_| match proto {
        ElectionProto::Lesk(eps) => Box::new(PerStation::new(LeskProtocol::new(eps))),
        ElectionProto::Lesu => Box::new(PerStation::new(LesuProtocol::new())),
        ElectionProto::Backoff => Box::new(PerStation::new(BackoffProtocol::new())),
        ElectionProto::Willard => Box::new(PerStation::new(WillardProtocol::new())),
    }
}

/// Turn a submitted parameter tree into a runnable trial closure.
///
/// Supported kinds, both over the election parameter tree (`n`, `cd`,
/// `adv`, `max_slots`, `proto`):
///
/// * `kind == "cohort_election"` — the O(1)-per-slot cohort engine, as
///   produced by `jle_bench::election_params`.
/// * `kind == "exact_election"` — the same protocol run per-station
///   through the fast-exact engine ([`run_fast_exact`] over
///   [`PerStation`]); eligible for batched execution via
///   [`build_batch_fn`].
///
/// The `proto` subtree names one of the uniform protocols:
///
/// * `{"proto": "lesk", "eps": ε}` — [`LeskProtocol::new`]
/// * `{"proto": "lesu"}` — [`LesuProtocol::new`]
/// * `{"proto": "backoff"}` — [`BackoffProtocol::new`]
/// * `{"proto": "willard"}` — [`WillardProtocol::new`]
///
/// Any extra key anywhere in the tree is [`WorkError::Unsupported`].
pub fn build_trial_fn(params: &Value) -> Result<TrialFn, WorkError> {
    let kind = params
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| WorkError::Invalid("params: missing string `kind`".into()))?;
    match kind {
        "cohort_election" => {
            let (config, adv, proto) = parse_election(params, "cohort_election")?;
            Ok(match proto {
                ElectionProto::Lesk(eps) => Box::new(move |seed| {
                    run_cohort(&config.clone().with_seed(seed), &adv, || LeskProtocol::new(eps))
                }),
                ElectionProto::Lesu => Box::new(move |seed| {
                    run_cohort(&config.clone().with_seed(seed), &adv, LesuProtocol::new)
                }),
                ElectionProto::Backoff => Box::new(move |seed| {
                    run_cohort(&config.clone().with_seed(seed), &adv, BackoffProtocol::new)
                }),
                ElectionProto::Willard => Box::new(move |seed| {
                    run_cohort(&config.clone().with_seed(seed), &adv, WillardProtocol::new)
                }),
            })
        }
        "exact_election" => {
            let (config, adv, proto) = parse_election(params, "exact_election")?;
            Ok(Box::new(move |seed| {
                run_fast_exact(&config.clone().with_seed(seed), &adv, station_factory(proto))
            }))
        }
        other => Err(WorkError::Unsupported(format!("unknown work kind `{other}`"))),
    }
}

/// Turn a parameter tree into a batch closure, when the kind has a
/// batch backend whose per-trial output is bit-identical to its
/// [`TrialFn`].
///
/// Only `kind == "exact_election"` qualifies today: its per-trial path is
/// the fast-exact engine, and `jle_engine::run_batch_uniform` is
/// bit-identical to it, so batched chunks and per-trial chunks address
/// the same cache entries. `cohort_election` is deliberately refused —
/// cohort bits are *not* fast-exact bits, and routing them through the
/// batch backend would cache different results under the same
/// fingerprint (silent poisoning).
pub fn build_batch_fn(params: &Value) -> Result<BatchFn, WorkError> {
    let kind = params
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| WorkError::Invalid("params: missing string `kind`".into()))?;
    match kind {
        "exact_election" => {
            let (config, adv, proto) = parse_election(params, "exact_election")?;
            Ok(match proto {
                ElectionProto::Lesk(eps) => Box::new(move |seeds: &[u64]| {
                    run_batch_uniform(&config, &adv, seeds, || LeskProtocol::new(eps))
                }),
                ElectionProto::Lesu => Box::new(move |seeds: &[u64]| {
                    run_batch_uniform(&config, &adv, seeds, LesuProtocol::new)
                }),
                ElectionProto::Backoff => Box::new(move |seeds: &[u64]| {
                    run_batch_uniform(&config, &adv, seeds, BackoffProtocol::new)
                }),
                ElectionProto::Willard => Box::new(move |seeds: &[u64]| {
                    run_batch_uniform(&config, &adv, seeds, WillardProtocol::new)
                }),
            })
        }
        "cohort_election" => Err(WorkError::Unsupported(
            "cohort_election has no batch backend: cohort bits are not fast-exact bits, and \
             aliasing them would poison the shared cache"
                .into(),
        )),
        other => Err(WorkError::Unsupported(format!("unknown work kind `{other}`"))),
    }
}

/// The orchestrator engine-mode tag under which a tree's results are
/// cached. `exact_election` results live under the `fast-exact` salt —
/// whether computed per-trial or batched, the bits are the fast-exact
/// engine's, so both routes share warm caches with fast-exact sweeps.
/// Everything else stays on the default salt, leaving existing cohort
/// caches untouched.
pub fn engine_mode_of(params: &Value) -> &'static str {
    match params.get("kind").and_then(Value::as_str) {
        Some("exact_election") => "fast-exact",
        _ => "exact",
    }
}

/// Whether a parameter tree names work this server type can execute —
/// the client-side routing predicate behind the bench CLIs' `--server`
/// mode (supported trees go to the service, the rest run locally).
pub fn is_supported(params: &Value) -> bool {
    build_trial_fn(params).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;
    use serde_json::json;

    fn params(proto: Value) -> Value {
        json!({
            "kind": "cohort_election",
            "n": 32u64,
            "cd": CdModel::Strong.to_json_value(),
            "adv": AdversarySpec::passive().to_json_value(),
            "max_slots": 100_000u64,
            "proto": proto,
        })
    }

    #[test]
    fn reconstructed_closure_matches_direct_run_bit_for_bit() {
        let f = build_trial_fn(&params(json!({"proto": "lesk", "eps": 0.5f64}))).unwrap();
        for seed in [1u64, 7, 99] {
            let direct = run_cohort(
                &SimConfig::new(32, CdModel::Strong).with_seed(seed).with_max_slots(100_000),
                &AdversarySpec::passive(),
                || LeskProtocol::new(0.5),
            );
            assert_eq!(
                serde_json::to_string(&f(seed)).unwrap(),
                serde_json::to_string(&direct).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn all_uniform_protocols_are_supported() {
        for proto in [
            json!({"proto": "lesk", "eps": 0.3f64}),
            json!({"proto": "lesu"}),
            json!({"proto": "backoff"}),
            json!({"proto": "willard"}),
        ] {
            let p = params(proto.clone());
            assert!(is_supported(&p), "{proto:?}");
            let f = build_trial_fn(&p).unwrap();
            let report = f(5);
            assert!(report.slots > 0);
        }
    }

    #[test]
    fn unknown_keys_are_unsupported_not_ignored() {
        // A warm-start knob the server does not know must not be
        // silently dropped — that would poison the shared cache.
        let p = params(json!({"proto": "lesk", "eps": 0.5f64, "u0": 6u64}));
        assert!(matches!(build_trial_fn(&p), Err(WorkError::Unsupported(_))));
        let mut top = params(json!({"proto": "lesu"}));
        if let Value::Map(m) = &mut top {
            m.push(("faults".into(), json!({"crash": 1u64})));
        }
        assert!(matches!(build_trial_fn(&top), Err(WorkError::Unsupported(_))));
    }

    fn exact_params(proto: Value) -> Value {
        json!({
            "kind": "exact_election",
            "n": 12u64,
            "cd": CdModel::Strong.to_json_value(),
            "adv": AdversarySpec::passive().to_json_value(),
            "max_slots": 4_000u64,
            "proto": proto,
        })
    }

    #[test]
    fn exact_election_batch_is_bit_identical_to_its_trial_fn() {
        // The routing contract: for every supported protocol, the batch
        // closure's per-seed reports equal the per-trial closure's — this
        // is what makes sharing cache entries between the two safe.
        for proto in [
            json!({"proto": "lesk", "eps": 0.3f64}),
            json!({"proto": "lesu"}),
            json!({"proto": "backoff"}),
            json!({"proto": "willard"}),
        ] {
            let p = exact_params(proto.clone());
            assert!(is_supported(&p), "{proto:?}");
            let trial_fn = build_trial_fn(&p).unwrap();
            let batch_fn = build_batch_fn(&p).unwrap();
            let seeds = [3u64, 41, 77, 500];
            let batched = batch_fn(&seeds);
            assert_eq!(batched.len(), seeds.len());
            for (seed, got) in seeds.iter().zip(batched.iter()) {
                assert_eq!(
                    serde_json::to_string(got).unwrap(),
                    serde_json::to_string(&trial_fn(*seed)).unwrap(),
                    "{proto:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn cohort_units_never_route_through_the_batch_backend() {
        // Cohort bits are not fast-exact bits; offering them a batch
        // path would cache wrong results under the cohort fingerprint.
        let p = params(json!({"proto": "lesu"}));
        assert!(matches!(build_batch_fn(&p), Err(WorkError::Unsupported(_))));
        assert_eq!(engine_mode_of(&p), "exact", "cohort caches keep their existing salt");
        assert_eq!(engine_mode_of(&exact_params(json!({"proto": "lesu"}))), "fast-exact");
    }

    #[test]
    fn exact_election_rejects_unknown_keys_like_cohort_does() {
        let p = exact_params(json!({"proto": "lesk", "eps": 0.5f64, "u0": 6u64}));
        assert!(matches!(build_trial_fn(&p), Err(WorkError::Unsupported(_))));
        assert!(matches!(build_batch_fn(&p), Err(WorkError::Unsupported(_))));
    }

    #[test]
    fn malformed_trees_are_invalid() {
        assert!(matches!(
            build_trial_fn(&json!({"kind": "cohort_election"})),
            Err(WorkError::Invalid(_))
        ));
        assert!(matches!(
            build_trial_fn(&json!({"kind": "estimation"})),
            Err(WorkError::Unsupported(_))
        ));
        assert!(matches!(
            build_trial_fn(&params(json!({"proto": "arss"}))),
            Err(WorkError::Unsupported(_))
        ));
    }
}
