//! Server-side work-kind registry: parameter tree → trial closure.
//!
//! A submitted [`jle_orchestrator::WorkSpec`] carries only data; the
//! closure that actually runs a trial must be reconstructed here from
//! `spec.params`. The contract with the cache is absolute — the
//! reconstructed closure must be **bit-identical in behaviour** to the
//! one the bench CLIs run locally for the same tree, because both sides
//! address the same [`jle_orchestrator::ResultStore`] entries.
//!
//! That is why parsing is deliberately strict: a parameter tree with an
//! unknown key (e.g. an experiment's private warm-start knob riding in
//! `proto`) is rejected as [`WorkError::Unsupported`] instead of being
//! ignored. Ignoring it would compute *something* under a fingerprint
//! that promises something else — silent cache poisoning. Clients fall
//! back to local computation for unsupported trees.

use jle_adversary::AdversarySpec;
use jle_engine::{run_cohort, RunReport, SimConfig};
use jle_protocols::{BackoffProtocol, LeskProtocol, LesuProtocol, WillardProtocol};
use jle_radio::CdModel;
use serde::{Deserialize, Value};

/// A reconstructed per-trial closure: seed → report.
pub type TrialFn = Box<dyn Fn(u64) -> RunReport + Send + Sync>;

/// Why a parameter tree could not be turned into runnable work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkError {
    /// The tree is well-formed but names work this server cannot
    /// faithfully reconstruct (unknown kind, unknown protocol, or an
    /// unrecognized key that may change behaviour). Clients should
    /// compute locally.
    Unsupported(String),
    /// The tree is malformed (missing/ill-typed required fields).
    Invalid(String),
}

impl std::fmt::Display for WorkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkError::Unsupported(msg) => write!(f, "unsupported work: {msg}"),
            WorkError::Invalid(msg) => write!(f, "invalid work: {msg}"),
        }
    }
}

impl std::error::Error for WorkError {}

fn keys_of(v: &Value) -> Vec<&str> {
    v.as_map().map(|m| m.iter().map(|(k, _)| k.as_str()).collect()).unwrap_or_default()
}

fn check_keys(v: &Value, what: &str, allowed: &[&str]) -> Result<(), WorkError> {
    for k in keys_of(v) {
        if !allowed.contains(&k) {
            return Err(WorkError::Unsupported(format!(
                "{what}: unrecognized key `{k}` (server cannot guarantee faithful reconstruction)"
            )));
        }
    }
    Ok(())
}

fn req_u64(v: &Value, k: &str, what: &str) -> Result<u64, WorkError> {
    v.get(k)
        .and_then(Value::as_u64)
        .ok_or_else(|| WorkError::Invalid(format!("{what}: missing u64 `{k}`")))
}

fn req_f64(v: &Value, k: &str, what: &str) -> Result<f64, WorkError> {
    v.get(k)
        .and_then(Value::as_f64)
        .ok_or_else(|| WorkError::Invalid(format!("{what}: missing f64 `{k}`")))
}

/// Turn a submitted parameter tree into a runnable trial closure.
///
/// Supported: `kind == "cohort_election"` trees as produced by
/// `jle_bench::election_params` — fields `n`, `cd`, `adv`, `max_slots`,
/// and a `proto` subtree naming one of the uniform cohort protocols:
///
/// * `{"proto": "lesk", "eps": ε}` — [`LeskProtocol::new`]
/// * `{"proto": "lesu"}` — [`LesuProtocol::new`]
/// * `{"proto": "backoff"}` — [`BackoffProtocol::new`]
/// * `{"proto": "willard"}` — [`WillardProtocol::new`]
///
/// Any extra key anywhere in the tree is [`WorkError::Unsupported`].
pub fn build_trial_fn(params: &Value) -> Result<TrialFn, WorkError> {
    let kind = params
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| WorkError::Invalid("params: missing string `kind`".into()))?;
    if kind != "cohort_election" {
        return Err(WorkError::Unsupported(format!("unknown work kind `{kind}`")));
    }
    check_keys(params, "cohort_election", &["kind", "n", "cd", "adv", "max_slots", "proto"])?;

    let n = req_u64(params, "n", "cohort_election")?;
    let max_slots = req_u64(params, "max_slots", "cohort_election")?;
    let cd_value = params
        .get("cd")
        .ok_or_else(|| WorkError::Invalid("cohort_election: missing `cd`".into()))?;
    let cd = CdModel::from_json_value(cd_value)
        .map_err(|e| WorkError::Invalid(format!("cohort_election: bad `cd`: {e}")))?;
    let adv_value = params
        .get("adv")
        .ok_or_else(|| WorkError::Invalid("cohort_election: missing `adv`".into()))?;
    let adv = AdversarySpec::from_json_value(adv_value)
        .map_err(|e| WorkError::Invalid(format!("cohort_election: bad `adv`: {e}")))?;
    let proto = params
        .get("proto")
        .ok_or_else(|| WorkError::Invalid("cohort_election: missing `proto`".into()))?;
    let name = proto
        .get("proto")
        .and_then(Value::as_str)
        .ok_or_else(|| WorkError::Invalid("proto: missing string `proto`".into()))?;

    let config = move |seed: u64| SimConfig::new(n, cd).with_seed(seed).with_max_slots(max_slots);
    match name {
        "lesk" => {
            check_keys(proto, "proto:lesk", &["proto", "eps"])?;
            let eps = req_f64(proto, "eps", "proto:lesk")?;
            Ok(Box::new(move |seed| run_cohort(&config(seed), &adv, || LeskProtocol::new(eps))))
        }
        "lesu" => {
            check_keys(proto, "proto:lesu", &["proto"])?;
            Ok(Box::new(move |seed| run_cohort(&config(seed), &adv, LesuProtocol::new)))
        }
        "backoff" => {
            check_keys(proto, "proto:backoff", &["proto"])?;
            Ok(Box::new(move |seed| run_cohort(&config(seed), &adv, BackoffProtocol::new)))
        }
        "willard" => {
            check_keys(proto, "proto:willard", &["proto"])?;
            Ok(Box::new(move |seed| run_cohort(&config(seed), &adv, WillardProtocol::new)))
        }
        other => Err(WorkError::Unsupported(format!("unknown cohort protocol `{other}`"))),
    }
}

/// Whether a parameter tree names work this server type can execute —
/// the client-side routing predicate behind the bench CLIs' `--server`
/// mode (supported trees go to the service, the rest run locally).
pub fn is_supported(params: &Value) -> bool {
    build_trial_fn(params).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;
    use serde_json::json;

    fn params(proto: Value) -> Value {
        json!({
            "kind": "cohort_election",
            "n": 32u64,
            "cd": CdModel::Strong.to_json_value(),
            "adv": AdversarySpec::passive().to_json_value(),
            "max_slots": 100_000u64,
            "proto": proto,
        })
    }

    #[test]
    fn reconstructed_closure_matches_direct_run_bit_for_bit() {
        let f = build_trial_fn(&params(json!({"proto": "lesk", "eps": 0.5f64}))).unwrap();
        for seed in [1u64, 7, 99] {
            let direct = run_cohort(
                &SimConfig::new(32, CdModel::Strong).with_seed(seed).with_max_slots(100_000),
                &AdversarySpec::passive(),
                || LeskProtocol::new(0.5),
            );
            assert_eq!(
                serde_json::to_string(&f(seed)).unwrap(),
                serde_json::to_string(&direct).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn all_uniform_protocols_are_supported() {
        for proto in [
            json!({"proto": "lesk", "eps": 0.3f64}),
            json!({"proto": "lesu"}),
            json!({"proto": "backoff"}),
            json!({"proto": "willard"}),
        ] {
            let p = params(proto.clone());
            assert!(is_supported(&p), "{proto:?}");
            let f = build_trial_fn(&p).unwrap();
            let report = f(5);
            assert!(report.slots > 0);
        }
    }

    #[test]
    fn unknown_keys_are_unsupported_not_ignored() {
        // A warm-start knob the server does not know must not be
        // silently dropped — that would poison the shared cache.
        let p = params(json!({"proto": "lesk", "eps": 0.5f64, "u0": 6u64}));
        assert!(matches!(build_trial_fn(&p), Err(WorkError::Unsupported(_))));
        let mut top = params(json!({"proto": "lesu"}));
        if let Value::Map(m) = &mut top {
            m.push(("faults".into(), json!({"crash": 1u64})));
        }
        assert!(matches!(build_trial_fn(&top), Err(WorkError::Unsupported(_))));
    }

    #[test]
    fn malformed_trees_are_invalid() {
        assert!(matches!(
            build_trial_fn(&json!({"kind": "cohort_election"})),
            Err(WorkError::Invalid(_))
        ));
        assert!(matches!(
            build_trial_fn(&json!({"kind": "estimation"})),
            Err(WorkError::Unsupported(_))
        ));
        assert!(matches!(
            build_trial_fn(&params(json!({"proto": "arss"}))),
            Err(WorkError::Unsupported(_))
        ));
    }
}
