//! The versioned JSONL wire protocol between sweep clients and the
//! service.
//!
//! One frame per line, UTF-8 JSON, newline-terminated. Every frame
//! carries `"v": 1` (the [`PROTOCOL_VERSION`] schema number) and an
//! `"op"` discriminator; client frames carry a client-chosen request id
//! `"id"` that the server echoes in every frame belonging to that
//! request, so a client can multiplex submissions over one connection.
//!
//! Design notes:
//!
//! * **Dedup is visible, not silent**: `accepted.dedup` tells a client
//!   its submission attached to an already-in-flight computation.
//! * **Backpressure is a first-class answer**: a full queue or an
//!   exhausted per-client share yields `rejected` with a non-zero
//!   `retry_after_ms` hint — never a dropped connection.
//! * **Results carry the payload**: `result.results` is the full JSON
//!   array of per-trial reports, rendered from one shared value so all
//!   subscribers of a deduped computation receive byte-identical
//!   payloads.

use jle_orchestrator::WorkSpec;
use jle_telemetry::TraceContext;
use serde::{Deserialize, Serialize, Value};
use std::sync::Arc;

/// Protocol name + schema version, announced in the `hello` frame.
pub const PROTOCOL_VERSION: &str = "jle-sweepd-v1";

/// Numeric schema version stamped into every frame as `"v"`.
pub const SCHEMA: u64 = 1;

/// Frames a client sends to the server.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Handshake: the client's first frame; the server answers `hello`.
    Hello { id: u64 },
    /// Submit a unit of work: `trials` trials of `spec`. Subscribes the
    /// connection to the job's progress and result. `trace` is an
    /// optional client-minted [`TraceContext`] — when present, the server
    /// records per-stage spans under it and returns them on the `result`
    /// frame. Absent on old clients; ignored by old servers.
    Submit { id: u64, spec: WorkSpec, trials: u64, trace: Option<TraceContext> },
    /// Attach to an in-flight job by fingerprint key without submitting.
    Subscribe { id: u64, key: String },
    /// One-shot state query for an in-flight job.
    Status { id: u64, key: String },
    /// Withdraw this connection's interest in a job; the computation is
    /// cancelled only when no other subscriber remains.
    Cancel { id: u64, key: String },
    /// Request server + per-connection metric snapshots.
    Metrics { id: u64 },
    /// Ask the server to drain and exit.
    Shutdown { id: u64 },
}

/// Frames the server sends to a client.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// Handshake answer: protocol version and scheduling limits.
    Hello { id: u64, proto: String, workers: u64, max_queue: u64, client_share: u64 },
    /// The submission was admitted. `dedup` marks attachment to an
    /// already-in-flight identical computation; `queue_depth` is the
    /// queue length after admission.
    Accepted { id: u64, key: String, trials: u64, dedup: bool, queue_depth: u64 },
    /// The submission was refused (bounded queue full, or the client's
    /// fair share is exhausted). Retry after `retry_after_ms`.
    Rejected { id: u64, reason: String, retry_after_ms: u64 },
    /// Throttled progress for a running job this connection subscribes
    /// to.
    Progress {
        id: u64,
        key: String,
        done_trials: u64,
        total_trials: u64,
        slots: u64,
        trials_per_sec: f64,
        eta_secs: f64,
    },
    /// Terminal: the job finished. `results` is the JSON array of
    /// per-trial reports in trial order. `spans` carries the server-side
    /// span events of the job (admission → queue → execute → deliver →
    /// per-run engine spans) when the submission carried a trace context,
    /// in [`jle_telemetry::SpanRecorder::export_events`] form.
    Result {
        id: u64,
        key: String,
        trials: u64,
        executed_trials: u64,
        cached_trials: u64,
        wall_secs: f64,
        results: Arc<Value>,
        spans: Option<Arc<Value>>,
    },
    /// Terminal: the job was cancelled before completion.
    Cancelled { id: u64, key: String, completed_trials: u64 },
    /// Terminal: the job failed (unsupported work kind, worker panic).
    Failed { id: u64, key: String, reason: String },
    /// Answer to `status`.
    Status {
        id: u64,
        key: String,
        state: String,
        done_trials: u64,
        total_trials: u64,
        subscribers: u64,
    },
    /// Answer to `metrics`: the shared server registry and this
    /// connection's private registry, both as `jle-metrics-v1`
    /// snapshots.
    Metrics { id: u64, server: Value, client: Value },
    /// Answer to `shutdown`.
    ShuttingDown { id: u64 },
    /// Protocol-level error (unparsable frame, unknown op, bad spec).
    Error { id: u64, reason: String },
}

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn frame(op: &str, id: u64, mut rest: Vec<(&str, Value)>) -> Value {
    let mut entries =
        vec![("v", Value::U64(SCHEMA)), ("op", Value::Str(op.to_string())), ("id", Value::U64(id))];
    entries.append(&mut rest);
    map(entries)
}

fn get_u64(v: &Value, k: &str) -> Result<u64, serde::Error> {
    v.get(k)
        .and_then(Value::as_u64)
        .ok_or_else(|| serde::Error::custom(format!("frame: missing u64 field `{k}`")))
}

fn get_f64(v: &Value, k: &str) -> Result<f64, serde::Error> {
    v.get(k)
        .and_then(Value::as_f64)
        .ok_or_else(|| serde::Error::custom(format!("frame: missing f64 field `{k}`")))
}

fn get_str(v: &Value, k: &str) -> Result<String, serde::Error> {
    v.get(k)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| serde::Error::custom(format!("frame: missing string field `{k}`")))
}

fn check_schema(v: &Value) -> Result<(), serde::Error> {
    match get_u64(v, "v")? {
        SCHEMA => Ok(()),
        other => Err(serde::Error::custom(format!("frame: unsupported schema v{other}"))),
    }
}

impl ClientFrame {
    /// The request id this frame carries.
    pub fn id(&self) -> u64 {
        match *self {
            ClientFrame::Hello { id }
            | ClientFrame::Submit { id, .. }
            | ClientFrame::Subscribe { id, .. }
            | ClientFrame::Status { id, .. }
            | ClientFrame::Cancel { id, .. }
            | ClientFrame::Metrics { id }
            | ClientFrame::Shutdown { id } => id,
        }
    }

    /// Serialize to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("frame serialization")
    }

    /// Parse one wire line.
    pub fn parse(line: &str) -> Result<Self, serde::Error> {
        serde_json::from_str(line)
    }
}

impl Serialize for ClientFrame {
    fn to_json_value(&self) -> Value {
        match self {
            ClientFrame::Hello { id } => frame("hello", *id, vec![]),
            ClientFrame::Submit { id, spec, trials, trace } => {
                let mut rest =
                    vec![("spec", spec.to_json_value()), ("trials", Value::U64(*trials))];
                if let Some(ctx) = trace {
                    rest.push(("trace", ctx.to_json_value()));
                }
                frame("submit", *id, rest)
            }
            ClientFrame::Subscribe { id, key } => {
                frame("subscribe", *id, vec![("key", Value::Str(key.clone()))])
            }
            ClientFrame::Status { id, key } => {
                frame("status", *id, vec![("key", Value::Str(key.clone()))])
            }
            ClientFrame::Cancel { id, key } => {
                frame("cancel", *id, vec![("key", Value::Str(key.clone()))])
            }
            ClientFrame::Metrics { id } => frame("metrics", *id, vec![]),
            ClientFrame::Shutdown { id } => frame("shutdown", *id, vec![]),
        }
    }
}

impl Deserialize for ClientFrame {
    fn from_json_value(v: &Value) -> Result<Self, serde::Error> {
        check_schema(v)?;
        let id = get_u64(v, "id")?;
        match get_str(v, "op")?.as_str() {
            "hello" => Ok(ClientFrame::Hello { id }),
            "submit" => {
                let spec_value =
                    v.get("spec").ok_or_else(|| serde::Error::custom("submit: missing `spec`"))?;
                let spec = WorkSpec::from_json_value(spec_value)?;
                let trials = get_u64(v, "trials")?;
                if trials == 0 {
                    return Err(serde::Error::custom("submit: `trials` must be ≥ 1"));
                }
                let trace = match v.get("trace") {
                    None | Some(Value::Null) => None,
                    Some(t) => Some(TraceContext::from_json_value(t)?),
                };
                Ok(ClientFrame::Submit { id, spec, trials, trace })
            }
            "subscribe" => Ok(ClientFrame::Subscribe { id, key: get_str(v, "key")? }),
            "status" => Ok(ClientFrame::Status { id, key: get_str(v, "key")? }),
            "cancel" => Ok(ClientFrame::Cancel { id, key: get_str(v, "key")? }),
            "metrics" => Ok(ClientFrame::Metrics { id }),
            "shutdown" => Ok(ClientFrame::Shutdown { id }),
            other => Err(serde::Error::custom(format!("unknown client op `{other}`"))),
        }
    }
}

impl ServerFrame {
    /// The request id this frame echoes.
    pub fn id(&self) -> u64 {
        match *self {
            ServerFrame::Hello { id, .. }
            | ServerFrame::Accepted { id, .. }
            | ServerFrame::Rejected { id, .. }
            | ServerFrame::Progress { id, .. }
            | ServerFrame::Result { id, .. }
            | ServerFrame::Cancelled { id, .. }
            | ServerFrame::Failed { id, .. }
            | ServerFrame::Status { id, .. }
            | ServerFrame::Metrics { id, .. }
            | ServerFrame::ShuttingDown { id }
            | ServerFrame::Error { id, .. } => id,
        }
    }

    /// Serialize to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("frame serialization")
    }

    /// Parse one wire line.
    pub fn parse(line: &str) -> Result<Self, serde::Error> {
        serde_json::from_str(line)
    }
}

impl Serialize for ServerFrame {
    fn to_json_value(&self) -> Value {
        match self {
            ServerFrame::Hello { id, proto, workers, max_queue, client_share } => frame(
                "hello",
                *id,
                vec![
                    ("proto", Value::Str(proto.clone())),
                    ("workers", Value::U64(*workers)),
                    ("max_queue", Value::U64(*max_queue)),
                    ("client_share", Value::U64(*client_share)),
                ],
            ),
            ServerFrame::Accepted { id, key, trials, dedup, queue_depth } => frame(
                "accepted",
                *id,
                vec![
                    ("key", Value::Str(key.clone())),
                    ("trials", Value::U64(*trials)),
                    ("dedup", Value::Bool(*dedup)),
                    ("queue_depth", Value::U64(*queue_depth)),
                ],
            ),
            ServerFrame::Rejected { id, reason, retry_after_ms } => frame(
                "rejected",
                *id,
                vec![
                    ("reason", Value::Str(reason.clone())),
                    ("retry_after_ms", Value::U64(*retry_after_ms)),
                ],
            ),
            ServerFrame::Progress {
                id,
                key,
                done_trials,
                total_trials,
                slots,
                trials_per_sec,
                eta_secs,
            } => frame(
                "progress",
                *id,
                vec![
                    ("key", Value::Str(key.clone())),
                    ("done_trials", Value::U64(*done_trials)),
                    ("total_trials", Value::U64(*total_trials)),
                    ("slots", Value::U64(*slots)),
                    ("trials_per_sec", Value::F64(*trials_per_sec)),
                    ("eta_secs", Value::F64(*eta_secs)),
                ],
            ),
            ServerFrame::Result {
                id,
                key,
                trials,
                executed_trials,
                cached_trials,
                wall_secs,
                results,
                spans,
            } => {
                let mut rest = vec![
                    ("key", Value::Str(key.clone())),
                    ("trials", Value::U64(*trials)),
                    ("executed_trials", Value::U64(*executed_trials)),
                    ("cached_trials", Value::U64(*cached_trials)),
                    ("wall_secs", Value::F64(*wall_secs)),
                    ("results", results.as_ref().clone()),
                ];
                if let Some(spans) = spans {
                    rest.push(("spans", spans.as_ref().clone()));
                }
                frame("result", *id, rest)
            }
            ServerFrame::Cancelled { id, key, completed_trials } => frame(
                "cancelled",
                *id,
                vec![
                    ("key", Value::Str(key.clone())),
                    ("completed_trials", Value::U64(*completed_trials)),
                ],
            ),
            ServerFrame::Failed { id, key, reason } => frame(
                "failed",
                *id,
                vec![("key", Value::Str(key.clone())), ("reason", Value::Str(reason.clone()))],
            ),
            ServerFrame::Status { id, key, state, done_trials, total_trials, subscribers } => {
                frame(
                    "status",
                    *id,
                    vec![
                        ("key", Value::Str(key.clone())),
                        ("state", Value::Str(state.clone())),
                        ("done_trials", Value::U64(*done_trials)),
                        ("total_trials", Value::U64(*total_trials)),
                        ("subscribers", Value::U64(*subscribers)),
                    ],
                )
            }
            ServerFrame::Metrics { id, server, client } => {
                frame("metrics", *id, vec![("server", server.clone()), ("client", client.clone())])
            }
            ServerFrame::ShuttingDown { id } => frame("shutting_down", *id, vec![]),
            ServerFrame::Error { id, reason } => {
                frame("error", *id, vec![("reason", Value::Str(reason.clone()))])
            }
        }
    }
}

impl Deserialize for ServerFrame {
    fn from_json_value(v: &Value) -> Result<Self, serde::Error> {
        check_schema(v)?;
        let id = get_u64(v, "id")?;
        match get_str(v, "op")?.as_str() {
            "hello" => Ok(ServerFrame::Hello {
                id,
                proto: get_str(v, "proto")?,
                workers: get_u64(v, "workers")?,
                max_queue: get_u64(v, "max_queue")?,
                client_share: get_u64(v, "client_share")?,
            }),
            "accepted" => Ok(ServerFrame::Accepted {
                id,
                key: get_str(v, "key")?,
                trials: get_u64(v, "trials")?,
                dedup: v
                    .get("dedup")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| serde::Error::custom("accepted: missing bool `dedup`"))?,
                queue_depth: get_u64(v, "queue_depth")?,
            }),
            "rejected" => Ok(ServerFrame::Rejected {
                id,
                reason: get_str(v, "reason")?,
                retry_after_ms: get_u64(v, "retry_after_ms")?,
            }),
            "progress" => Ok(ServerFrame::Progress {
                id,
                key: get_str(v, "key")?,
                done_trials: get_u64(v, "done_trials")?,
                total_trials: get_u64(v, "total_trials")?,
                slots: get_u64(v, "slots")?,
                trials_per_sec: get_f64(v, "trials_per_sec")?,
                eta_secs: get_f64(v, "eta_secs")?,
            }),
            "result" => Ok(ServerFrame::Result {
                id,
                key: get_str(v, "key")?,
                trials: get_u64(v, "trials")?,
                executed_trials: get_u64(v, "executed_trials")?,
                cached_trials: get_u64(v, "cached_trials")?,
                wall_secs: get_f64(v, "wall_secs")?,
                results: Arc::new(
                    v.get("results")
                        .ok_or_else(|| serde::Error::custom("result: missing `results`"))?
                        .clone(),
                ),
                spans: match v.get("spans") {
                    None | Some(Value::Null) => None,
                    Some(s) => Some(Arc::new(s.clone())),
                },
            }),
            "cancelled" => Ok(ServerFrame::Cancelled {
                id,
                key: get_str(v, "key")?,
                completed_trials: get_u64(v, "completed_trials")?,
            }),
            "failed" => Ok(ServerFrame::Failed {
                id,
                key: get_str(v, "key")?,
                reason: get_str(v, "reason")?,
            }),
            "status" => Ok(ServerFrame::Status {
                id,
                key: get_str(v, "key")?,
                state: get_str(v, "state")?,
                done_trials: get_u64(v, "done_trials")?,
                total_trials: get_u64(v, "total_trials")?,
                subscribers: get_u64(v, "subscribers")?,
            }),
            "metrics" => Ok(ServerFrame::Metrics {
                id,
                server: v
                    .get("server")
                    .ok_or_else(|| serde::Error::custom("metrics: missing `server`"))?
                    .clone(),
                client: v
                    .get("client")
                    .ok_or_else(|| serde::Error::custom("metrics: missing `client`"))?
                    .clone(),
            }),
            "shutting_down" => Ok(ServerFrame::ShuttingDown { id }),
            "error" => Ok(ServerFrame::Error { id, reason: get_str(v, "reason")? }),
            other => Err(serde::Error::custom(format!("unknown server op `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn spec() -> WorkSpec {
        WorkSpec::new("e15", "lesk/n=64", json!({"n": 64u64, "eps": 0.5f64}), 42)
    }

    #[test]
    fn client_frames_round_trip() {
        let frames = [
            ClientFrame::Hello { id: 1 },
            ClientFrame::Submit { id: 2, spec: spec(), trials: 8, trace: None },
            ClientFrame::Submit {
                id: 8,
                spec: spec(),
                trials: 8,
                trace: Some(TraceContext { trace_id: 0xdead_beef, parent_span: 3 }),
            },
            ClientFrame::Subscribe { id: 3, key: "ab".repeat(32) },
            ClientFrame::Status { id: 4, key: "cd".repeat(32) },
            ClientFrame::Cancel { id: 5, key: "ef".repeat(32) },
            ClientFrame::Metrics { id: 6 },
            ClientFrame::Shutdown { id: 7 },
        ];
        for f in frames {
            let line = f.to_line();
            assert!(!line.contains('\n'), "one frame per line: {line}");
            let back = ClientFrame::parse(&line).unwrap();
            assert_eq!(f, back, "{line}");
            assert_eq!(f.id(), back.id());
        }
    }

    #[test]
    fn server_frames_round_trip() {
        let frames = [
            ServerFrame::Hello {
                id: 0,
                proto: PROTOCOL_VERSION.into(),
                workers: 4,
                max_queue: 64,
                client_share: 8,
            },
            ServerFrame::Accepted {
                id: 1,
                key: "k".into(),
                trials: 8,
                dedup: true,
                queue_depth: 2,
            },
            ServerFrame::Rejected { id: 2, reason: "queue full".into(), retry_after_ms: 250 },
            ServerFrame::Progress {
                id: 3,
                key: "k".into(),
                done_trials: 16,
                total_trials: 64,
                slots: 12345,
                trials_per_sec: 100.5,
                eta_secs: 0.5,
            },
            ServerFrame::Result {
                id: 4,
                key: "k".into(),
                trials: 2,
                executed_trials: 2,
                cached_trials: 0,
                wall_secs: 0.25,
                results: Arc::new(json!([json!({"slots": 10u64}), json!({"slots": 12u64})])),
                spans: None,
            },
            ServerFrame::Result {
                id: 11,
                key: "k".into(),
                trials: 2,
                executed_trials: 2,
                cached_trials: 0,
                wall_secs: 0.25,
                results: Arc::new(json!([json!({"slots": 10u64}), json!({"slots": 12u64})])),
                spans: Some(Arc::new(json!([json!({"name": "execute", "ts": 5u64})]))),
            },
            ServerFrame::Cancelled { id: 5, key: "k".into(), completed_trials: 32 },
            ServerFrame::Failed { id: 6, key: "k".into(), reason: "unsupported".into() },
            ServerFrame::Status {
                id: 7,
                key: "k".into(),
                state: "running".into(),
                done_trials: 1,
                total_trials: 8,
                subscribers: 3,
            },
            ServerFrame::Metrics { id: 8, server: json!({"schema": 1u64}), client: json!({}) },
            ServerFrame::ShuttingDown { id: 9 },
            ServerFrame::Error { id: 10, reason: "bad frame".into() },
        ];
        for f in frames {
            let line = f.to_line();
            assert!(!line.contains('\n'), "one frame per line: {line}");
            let back = ServerFrame::parse(&line).unwrap();
            assert_eq!(f, back, "{line}");
        }
    }

    #[test]
    fn schema_violations_are_rejected() {
        assert!(ClientFrame::parse(r#"{"op":"hello","id":1}"#).is_err(), "missing v");
        assert!(ClientFrame::parse(r#"{"v":2,"op":"hello","id":1}"#).is_err(), "wrong v");
        assert!(ClientFrame::parse(r#"{"v":1,"op":"nope","id":1}"#).is_err(), "unknown op");
        assert!(ClientFrame::parse("not json").is_err());
        let no_trials = format!(
            r#"{{"v":1,"op":"submit","id":1,"spec":{},"trials":0}}"#,
            serde_json::to_string(&spec().to_value()).unwrap()
        );
        assert!(ClientFrame::parse(&no_trials).is_err(), "zero trials");
        let bad_trace = format!(
            r#"{{"v":1,"op":"submit","id":1,"spec":{},"trials":2,"trace":{{"trace_id":"xyz"}}}}"#,
            serde_json::to_string(&spec().to_value()).unwrap()
        );
        assert!(ClientFrame::parse(&bad_trace).is_err(), "malformed trace context");
    }

    #[test]
    fn absent_trace_and_spans_stay_off_the_wire() {
        // Old-client compatibility: a traceless submit serializes without
        // the `trace` key at all, and a spanless result without `spans`.
        let f = ClientFrame::Submit { id: 2, spec: spec(), trials: 8, trace: None };
        assert!(!f.to_line().contains("trace"), "got {}", f.to_line());
        let f = ServerFrame::Result {
            id: 4,
            key: "k".into(),
            trials: 1,
            executed_trials: 1,
            cached_trials: 0,
            wall_secs: 0.1,
            results: Arc::new(json!([])),
            spans: None,
        };
        assert!(!f.to_line().contains("spans"), "got {}", f.to_line());
    }

    #[test]
    fn submitted_spec_survives_the_wire_exactly() {
        // The fingerprint of the spec a client submits must equal the
        // fingerprint the server computes after parsing — otherwise
        // client and server would cache the same work under different
        // keys.
        use jle_orchestrator::{Fingerprint, DEFAULT_CODE_SALT};
        let f = ClientFrame::Submit { id: 1, spec: spec(), trials: 4, trace: None };
        let back = ClientFrame::parse(&f.to_line()).unwrap();
        let ClientFrame::Submit { spec: parsed, .. } = back else { panic!("wrong op") };
        let a = Fingerprint::of(&spec(), DEFAULT_CODE_SALT, "ty");
        let b = Fingerprint::of(&parsed, DEFAULT_CODE_SALT, "ty");
        assert_eq!(a, b);
    }
}
