//! # jle-sweepd
//!
//! A resident, multi-tenant experiment service over the
//! [`jle_orchestrator`] cache and scheduler — ROADMAP item 2's "serving
//! layer" for the paper reproduction's Monte-Carlo sweeps.
//!
//! Every experiment in the suite is a batch CLI invocation; wide LESK
//! sweeps under jamming are exactly the workload that benefits from
//! request coalescing instead. The service accepts work submissions over
//! a Unix or TCP socket using a versioned JSONL protocol
//! ([`protocol`]: `submit` / `subscribe` / `status` / `cancel` /
//! `metrics` / `shutdown` frames), schedules them across a shared worker
//! pool with per-client fair-share accounting and a bounded queue
//! (backpressure: reject-with-`retry_after_ms` when full), and dedupes
//! concurrent identical requests through the orchestrator's
//! content-addressed [`jle_orchestrator::Fingerprint`]: the same
//! `WorkSpec` submitted by many clients triggers **one** computation,
//! with every subscriber streaming the same throttled progress events
//! and receiving byte-identical results.
//!
//! The crate ships both halves plus a load harness:
//!
//! * [`server`] — the resident service ([`server::SweepServer`]), run by
//!   the `jle-sweepd` binary;
//! * [`client`] — the client library ([`client::SweepClient`]), used by
//!   the bench CLIs' `--server` mode and by tests;
//! * [`work`] — the server-side work-kind registry mapping a submitted
//!   parameter tree back to a trial closure (strictly: unknown keys are
//!   rejected so the server never mis-reconstructs a sweep variant);
//! * `sweep-soak` — a binary firing thousands of concurrent submissions
//!   with overlapping fingerprints and reporting dedup/cache-hit ratios
//!   and p50/p99 submission-to-first-chunk latency.
//!
//! Health surface: all `jle_sweepd_*` / `jle_orchestrator_*` counters
//! live on one shared [`jle_telemetry::MetricRegistry`]; a `metrics`
//! frame returns the `jle-metrics-v1` snapshot, and an HTTP-ish `GET`
//! on the same socket (or `--prom-dump`) serves the Prometheus text.

pub mod client;
pub mod protocol;
pub mod server;
pub mod work;

pub use client::{ClientError, SweepClient, SweepOutcome};
pub use protocol::{ClientFrame, ServerFrame, PROTOCOL_VERSION};
pub use server::{Endpoint, ServerConfig, ServerHandle, SweepServer};
pub use work::{build_trial_fn, is_supported, WorkError};
