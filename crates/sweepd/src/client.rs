//! The sweep-client library: connect, submit, stream, collect.
//!
//! [`SweepClient`] is a thin synchronous wrapper over one JSONL
//! connection. The bench CLIs' `--server` mode and the soak harness
//! both build on [`SweepClient::run_reports`], which retries through
//! backpressure (`rejected` frames carry a `retry_after_ms` hint),
//! waits out progress frames, and deserializes the terminal `result`
//! payload back into [`RunReport`]s — so a server round-trip is a
//! drop-in replacement for a local [`jle_orchestrator::Orchestrator`]
//! call on the same `WorkSpec`.

use crate::protocol::{ClientFrame, ServerFrame, PROTOCOL_VERSION};
use crate::server::{Endpoint, SweepStream};
use jle_engine::RunReport;
use jle_orchestrator::WorkSpec;
use jle_telemetry::{SpanGuard, SpanRecorder, TraceContext};
use serde::{Deserialize, Value};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::time::Duration;

/// Everything that can go wrong on the client side.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent something unparsable or out of protocol.
    Protocol(String),
    /// Backpressure: the submission was refused even after retries.
    Rejected {
        /// Server-provided reason.
        reason: String,
        /// Suggested wait before retrying.
        retry_after_ms: u64,
    },
    /// The server cannot run this work kind (compute locally instead).
    Unsupported(String),
    /// The job was cancelled before completion.
    Cancelled {
        /// Trials already checkpointed at cancellation.
        completed_trials: u64,
    },
    /// The job failed server-side.
    Failed(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ClientError::Rejected { reason, retry_after_ms } => {
                write!(f, "rejected: {reason} (retry after {retry_after_ms} ms)")
            }
            ClientError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            ClientError::Cancelled { completed_trials } => {
                write!(f, "cancelled after {completed_trials} trials")
            }
            ClientError::Failed(msg) => write!(f, "failed: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The server's `hello` answer.
#[derive(Debug, Clone)]
pub struct ServerInfo {
    /// Protocol version string (must be [`PROTOCOL_VERSION`]).
    pub proto: String,
    /// Worker pool size.
    pub workers: u64,
    /// Bounded queue length.
    pub max_queue: u64,
    /// Per-client fair share.
    pub client_share: u64,
}

/// A terminal `result` payload.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The unit's fingerprint key.
    pub key: String,
    /// Trials actually executed server-side (0 = fully cache-served).
    pub executed_trials: u64,
    /// Trials served from the store.
    pub cached_trials: u64,
    /// Submission-to-result wall time measured by the server.
    pub wall_secs: f64,
    /// The raw JSON array of per-trial results, in trial order.
    pub results: Value,
}

impl SweepOutcome {
    /// Deserialize the payload into typed reports.
    pub fn reports(&self) -> Result<Vec<RunReport>, ClientError> {
        let seq = self
            .results
            .as_seq()
            .ok_or_else(|| ClientError::Protocol("result payload is not an array".to_string()))?;
        seq.iter()
            .map(|v| {
                RunReport::from_json_value(v)
                    .map_err(|e| ClientError::Protocol(format!("bad report: {e}")))
            })
            .collect()
    }
}

/// A live submission: the ticket [`SweepClient::wait`] redeems.
#[derive(Debug, Clone)]
pub struct Submission {
    /// Request id the server echoes on every frame of this job.
    pub req_id: u64,
    /// The unit's fingerprint key.
    pub key: String,
    /// Whether the submission coalesced onto an in-flight computation.
    pub dedup: bool,
    /// Queue length at admission.
    pub queue_depth: u64,
}

/// Progress observed while waiting on a submission.
#[derive(Debug, Clone, Copy)]
pub struct ProgressUpdate {
    /// Trials finished so far.
    pub done_trials: u64,
    /// Total trials in the unit.
    pub total_trials: u64,
    /// Executed throughput.
    pub trials_per_sec: f64,
    /// Server's remaining-time estimate.
    pub eta_secs: f64,
}

/// One synchronous JSONL connection to a sweep service.
pub struct SweepClient {
    reader: BufReader<SweepStream>,
    writer: SweepStream,
    info: ServerInfo,
    next_id: u64,
    tracer: SpanRecorder,
    /// Open client-side submit spans, by request id; closed (dropped)
    /// when the request reaches a terminal frame.
    inflight_spans: HashMap<u64, SpanGuard>,
}

impl SweepClient {
    /// Connect and handshake.
    pub fn connect(endpoint: &Endpoint) -> Result<Self, ClientError> {
        let stream = SweepStream::connect(endpoint)?;
        let writer = stream.try_clone()?;
        let mut client = SweepClient {
            reader: BufReader::new(stream),
            writer,
            info: ServerInfo { proto: String::new(), workers: 0, max_queue: 0, client_share: 0 },
            next_id: 0,
            tracer: SpanRecorder::disabled(),
            inflight_spans: HashMap::new(),
        };
        let id = client.send(&ClientFrame::Hello { id: 0 })?;
        match client.read_frame()? {
            ServerFrame::Hello { id: got, proto, workers, max_queue, client_share }
                if got == id =>
            {
                if proto != PROTOCOL_VERSION {
                    return Err(ClientError::Protocol(format!(
                        "server speaks {proto}, client speaks {PROTOCOL_VERSION}"
                    )));
                }
                client.info = ServerInfo { proto, workers, max_queue, client_share };
                Ok(client)
            }
            other => Err(ClientError::Protocol(format!("expected hello, got {other:?}"))),
        }
    }

    /// The server's handshake parameters.
    pub fn server_info(&self) -> &ServerInfo {
        &self.info
    }

    /// Turn on distributed tracing: mints one [`TraceContext`] for this
    /// connection, records a client-cat span around every submission, and
    /// splices the server's per-stage spans (returned on `result` frames)
    /// into [`SweepClient::tracer`], so one Chrome-trace export shows the
    /// full submit→result critical path.
    pub fn enable_tracing(&mut self) {
        if self.tracer.is_enabled() {
            return;
        }
        self.tracer = SpanRecorder::with_trace(TraceContext::mint());
    }

    /// Builder form of [`SweepClient::enable_tracing`].
    pub fn with_tracing(mut self) -> Self {
        self.enable_tracing();
        self
    }

    /// The client-side span recorder (disabled unless
    /// [`SweepClient::enable_tracing`] was called).
    pub fn tracer(&self) -> &SpanRecorder {
        &self.tracer
    }

    /// Bound how long [`SweepClient::wait`] blocks on a silent server.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(dur)?;
        Ok(())
    }

    fn send(&mut self, frame: &ClientFrame) -> Result<u64, ClientError> {
        self.next_id += 1;
        let id = self.next_id;
        let frame = match frame.clone() {
            ClientFrame::Hello { .. } => ClientFrame::Hello { id },
            ClientFrame::Submit { spec, trials, trace, .. } => {
                ClientFrame::Submit { id, spec, trials, trace }
            }
            ClientFrame::Subscribe { key, .. } => ClientFrame::Subscribe { id, key },
            ClientFrame::Status { key, .. } => ClientFrame::Status { id, key },
            ClientFrame::Cancel { key, .. } => ClientFrame::Cancel { id, key },
            ClientFrame::Metrics { .. } => ClientFrame::Metrics { id },
            ClientFrame::Shutdown { .. } => ClientFrame::Shutdown { id },
        };
        self.writer.write_all(frame.to_line().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(id)
    }

    fn read_frame(&mut self) -> Result<ServerFrame, ClientError> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(ClientError::Protocol("server closed the connection".to_string()));
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            return ServerFrame::parse(trimmed)
                .map_err(|e| ClientError::Protocol(format!("bad server frame: {e}")));
        }
    }

    /// Submit one unit; does not wait for the result.
    pub fn submit(&mut self, spec: &WorkSpec, trials: u64) -> Result<Submission, ClientError> {
        let (trace, guard) = if self.tracer.is_enabled() {
            let guard =
                self.tracer.span("client", format!("submit:{}/{}", spec.experiment, spec.point));
            let ctx = self.tracer.trace().map(|c| c.with_parent(guard.id()));
            (ctx, Some(guard))
        } else {
            (None, None)
        };
        let id =
            self.send(&ClientFrame::Submit { id: 0, spec: clone_spec(spec), trials, trace })?;
        loop {
            match self.read_frame()? {
                ServerFrame::Accepted { id: got, key, dedup, queue_depth, .. } if got == id => {
                    if let Some(guard) = guard {
                        self.inflight_spans.insert(id, guard);
                    }
                    return Ok(Submission { req_id: id, key, dedup, queue_depth });
                }
                ServerFrame::Rejected { id: got, reason, retry_after_ms } if got == id => {
                    return Err(ClientError::Rejected { reason, retry_after_ms });
                }
                ServerFrame::Error { id: got, reason } if got == id => {
                    return Err(if reason.starts_with("unsupported work") {
                        ClientError::Unsupported(reason)
                    } else {
                        ClientError::Protocol(reason)
                    });
                }
                // Frames for other in-flight requests on this connection
                // (progress of an earlier submission) are fine to skip
                // here; `wait` is the consumer that cares.
                _ => continue,
            }
        }
    }

    /// Block until `submission` reaches a terminal frame, feeding
    /// progress updates to `on_progress`.
    pub fn wait(
        &mut self,
        submission: &Submission,
        mut on_progress: impl FnMut(&ProgressUpdate),
    ) -> Result<SweepOutcome, ClientError> {
        loop {
            match self.read_frame()? {
                ServerFrame::Progress {
                    id,
                    done_trials,
                    total_trials,
                    trials_per_sec,
                    eta_secs,
                    ..
                } if id == submission.req_id => {
                    on_progress(&ProgressUpdate {
                        done_trials,
                        total_trials,
                        trials_per_sec,
                        eta_secs,
                    });
                }
                ServerFrame::Result {
                    id,
                    key,
                    executed_trials,
                    cached_trials,
                    wall_secs,
                    results,
                    spans,
                    ..
                } if id == submission.req_id => {
                    if let Some(spans) = spans {
                        self.splice_server_spans(spans.as_ref());
                    }
                    self.inflight_spans.remove(&id);
                    return Ok(SweepOutcome {
                        key,
                        executed_trials,
                        cached_trials,
                        wall_secs,
                        results: results.as_ref().clone(),
                    });
                }
                ServerFrame::Cancelled { id, completed_trials, .. } if id == submission.req_id => {
                    self.inflight_spans.remove(&id);
                    return Err(ClientError::Cancelled { completed_trials });
                }
                ServerFrame::Failed { id, reason, .. } if id == submission.req_id => {
                    self.inflight_spans.remove(&id);
                    return Err(ClientError::Failed(reason));
                }
                _ => continue,
            }
        }
    }

    /// Splice server-side span events into the client tracer, rebased so
    /// the server block *ends* now — i.e. it nests inside the client's
    /// still-open submit span instead of trailing past it (server and
    /// client clocks share no epoch; the result frame's arrival is the
    /// one instant both sides witness).
    fn splice_server_spans(&mut self, events: &Value) {
        if !self.tracer.is_enabled() {
            return;
        }
        let width = events
            .as_seq()
            .map(|seq| {
                let ts = |e: &Value| e.get("ts").and_then(Value::as_u64);
                let end =
                    |e: &Value| Some(ts(e)? + e.get("dur").and_then(Value::as_u64).unwrap_or(0));
                let min = seq.iter().filter_map(ts).min().unwrap_or(0);
                let max = seq.iter().filter_map(end).max().unwrap_or(min);
                max - min
            })
            .unwrap_or(0);
        let at = self.tracer.now_us().saturating_sub(width);
        self.tracer.import_events(events, at);
    }

    /// Submit with bounded backpressure retries, then wait.
    pub fn submit_and_wait(
        &mut self,
        spec: &WorkSpec,
        trials: u64,
        max_retries: u32,
        on_progress: impl FnMut(&ProgressUpdate),
    ) -> Result<SweepOutcome, ClientError> {
        let mut attempt = 0u32;
        let submission = loop {
            match self.submit(spec, trials) {
                Ok(s) => break s,
                Err(ClientError::Rejected { reason, retry_after_ms }) => {
                    if attempt >= max_retries {
                        return Err(ClientError::Rejected { reason, retry_after_ms });
                    }
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms.clamp(10, 2_000)));
                }
                Err(e) => return Err(e),
            }
        };
        self.wait(&submission, on_progress)
    }

    /// The full round trip: submit (with retries), wait, deserialize.
    pub fn run_reports(
        &mut self,
        spec: &WorkSpec,
        trials: u64,
    ) -> Result<Vec<RunReport>, ClientError> {
        self.submit_and_wait(spec, trials, 32, |_| {})?.reports()
    }

    /// Withdraw interest in an in-flight key.
    pub fn cancel(&mut self, key: &str) -> Result<(), ClientError> {
        let id = self.send(&ClientFrame::Cancel { id: 0, key: key.to_string() })?;
        loop {
            match self.read_frame()? {
                ServerFrame::Cancelled { id: got, .. } if got == id => return Ok(()),
                ServerFrame::Error { id: got, reason } if got == id => {
                    return Err(ClientError::Protocol(reason));
                }
                _ => continue,
            }
        }
    }

    /// One-shot job state by key.
    pub fn status(&mut self, key: &str) -> Result<ServerFrame, ClientError> {
        let id = self.send(&ClientFrame::Status { id: 0, key: key.to_string() })?;
        loop {
            match self.read_frame()? {
                f @ ServerFrame::Status { .. } if f.id() == id => return Ok(f),
                ServerFrame::Error { id: got, reason } if got == id => {
                    return Err(ClientError::Protocol(reason));
                }
                _ => continue,
            }
        }
    }

    /// Fetch `(server, this-connection)` metric snapshots
    /// (`jle-metrics-v1` JSON values).
    pub fn metrics(&mut self) -> Result<(Value, Value), ClientError> {
        let id = self.send(&ClientFrame::Metrics { id: 0 })?;
        loop {
            match self.read_frame()? {
                ServerFrame::Metrics { id: got, server, client } if got == id => {
                    return Ok((server, client));
                }
                _ => continue,
            }
        }
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let id = self.send(&ClientFrame::Shutdown { id: 0 })?;
        loop {
            match self.read_frame() {
                Ok(ServerFrame::ShuttingDown { id: got }) if got == id => return Ok(()),
                Ok(_) => continue,
                // The server may close the socket right after acking.
                Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }
}

fn clone_spec(spec: &WorkSpec) -> WorkSpec {
    WorkSpec {
        experiment: spec.experiment.clone(),
        point: spec.point.clone(),
        params: spec.params.clone(),
        base_seed: spec.base_seed,
    }
}

/// Lookup a counter value in a `jle-metrics-v1` snapshot JSON value.
pub fn snapshot_counter(snapshot: &Value, name: &str) -> Option<u64> {
    let metrics = snapshot.get("metrics")?.as_seq()?;
    metrics
        .iter()
        .find(|m| m.get("name").and_then(Value::as_str) == Some(name))
        .and_then(|m| m.get("value"))
        .and_then(Value::as_u64)
}
