//! The resident sweep service: socket accept loop, fair-share scheduler,
//! in-flight dedup, and the shared telemetry surface.
//!
//! Architecture (one process):
//!
//! ```text
//!  conn threads (1/client)      job table (Mutex)         worker pool
//!  ───────────────────────      ────────────────────      ───────────────
//!  read JSONL frames  ───────►  dedup by fingerprint      pop fairest job
//!  write via mpsc queue  ◄────  bounded FIFO queue   ───► per-job
//!  per-conn MetricRegistry      per-client shares         Orchestrator
//! ```
//!
//! Every job runs through its own cheap [`Orchestrator`] over the one
//! shared [`ResultStore`] and the one shared [`MetricRegistry`], so
//! `jle_orchestrator_*` counters aggregate across clients while the
//! store's chunk claims (PR 7 satellite) keep concurrent writers of one
//! fingerprint race-free. Scheduling is fair-share: the queue is FIFO
//! *within* a client but the next job always goes to the submitter with
//! the fewest jobs currently running.
//!
//! Dedup is **in-flight only**: a submission whose fingerprint matches a
//! queued or running job attaches as an additional subscriber (one
//! computation, many byte-identical result frames). Re-submission after
//! completion instead hits the warm store through the orchestrator — a
//! unit cache hit, served in one chunk-load pass.

use crate::protocol::{ClientFrame, ServerFrame, PROTOCOL_VERSION};
use crate::work::build_trial_fn;
use jle_engine::RunReport;
use jle_orchestrator::{
    CancelToken, Event, Fingerprint, Interrupted, Orchestrator, Reporter, ResultStore, WorkSpec,
    DEFAULT_CHUNK_SIZE, DEFAULT_CODE_SALT,
};
use jle_telemetry::{
    Counter, Gauge, Histogram, MetricRegistry, SpanGuard, SpanRecorder, TraceContext,
};
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Where the service listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address like `127.0.0.1:7677`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parse a CLI spelling: `tcp:ADDR`, `unix:PATH`, a bare path
    /// (contains `/`), or a bare TCP address.
    pub fn parse(s: &str) -> Result<Self, String> {
        if let Some(rest) = s.strip_prefix("tcp:") {
            Ok(Endpoint::Tcp(rest.to_string()))
        } else if let Some(rest) = s.strip_prefix("unix:") {
            Ok(Endpoint::Unix(PathBuf::from(rest)))
        } else if s.contains('/') {
            Ok(Endpoint::Unix(PathBuf::from(s)))
        } else if s.contains(':') {
            Ok(Endpoint::Tcp(s.to_string()))
        } else {
            Err(format!("endpoint `{s}`: expected tcp:HOST:PORT, unix:PATH, or a socket path"))
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// A connected socket of either family.
#[derive(Debug)]
pub enum SweepStream {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl SweepStream {
    /// Connect to a service endpoint.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Self> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr.as_str())?;
                // Frames are small and latency-sensitive; Nagle + delayed
                // ACK would add ~40 ms per round trip.
                stream.set_nodelay(true)?;
                Ok(SweepStream::Tcp(stream))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => UnixStream::connect(path).map(SweepStream::Unix),
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            )),
        }
    }

    /// A second handle to the same connection (for split read/write).
    pub fn try_clone(&self) -> io::Result<Self> {
        match self {
            SweepStream::Tcp(s) => s.try_clone().map(SweepStream::Tcp),
            #[cfg(unix)]
            SweepStream::Unix(s) => s.try_clone().map(SweepStream::Unix),
        }
    }

    /// Bound blocking reads (None = wait forever).
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            SweepStream::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            SweepStream::Unix(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for SweepStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            SweepStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            SweepStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for SweepStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            SweepStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            SweepStream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            SweepStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            SweepStream::Unix(s) => s.flush(),
        }
    }
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Result-store root (`None` = ephemeral, nothing persists).
    pub cache_dir: Option<PathBuf>,
    /// Worker threads executing jobs (`0` = half the cores, min 1).
    pub workers: usize,
    /// Monte-Carlo parallelism *within* one job (`0` = rayon default).
    /// Keep `workers * mc_jobs` near the core count.
    pub mc_jobs: usize,
    /// Bounded queue length; submissions beyond it are rejected with a
    /// `retry_after_ms` hint.
    pub max_queue: usize,
    /// Max distinct in-flight jobs one client may have submitted.
    pub client_share: usize,
    /// Orchestrator checkpoint chunk size.
    pub chunk_size: u64,
    /// Cache-key salt (must match the CLIs for cache sharing).
    pub salt: String,
    /// Minimum interval between progress frames per job.
    pub progress_every: Duration,
    /// Periodically write the Prometheus rendering here.
    pub prom_dump: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cache_dir: None,
            workers: 0,
            mc_jobs: 1,
            max_queue: 64,
            client_share: 8,
            chunk_size: DEFAULT_CHUNK_SIZE,
            salt: DEFAULT_CODE_SALT.to_string(),
            progress_every: Duration::from_millis(100),
            prom_dump: None,
        }
    }
}

impl ServerConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism().map(|n| n.get() / 2).unwrap_or(1).max(1)
    }
}

/// What phase a job is in.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    Queued,
    Running,
    Done,
    Cancelled,
    Failed,
}

impl Phase {
    fn label(&self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done => "done",
            Phase::Cancelled => "cancelled",
            Phase::Failed => "failed",
        }
    }
}

/// One connection's interest in one job.
struct Subscriber {
    client: u64,
    req_id: u64,
    tx: mpsc::Sender<String>,
    progress_ctr: Counter,
    terminal_ctr: Counter,
}

struct JobInner {
    phase: Phase,
    done_trials: u64,
    subs: Vec<Subscriber>,
    latency_observed: bool,
    last_progress: Option<Instant>,
}

/// One deduped unit of in-flight work.
struct Job {
    key: String,
    spec: WorkSpec,
    trials: u64,
    /// Primary submitter, for fair-share accounting.
    client: u64,
    cancel: CancelToken,
    submitted: Instant,
    executed_trials: AtomicU64,
    cached_trials: AtomicU64,
    /// Per-job span recorder: stamped with the submitter's
    /// [`TraceContext`] when the submission carried one, disabled
    /// otherwise (every span call is then a no-op).
    tracer: SpanRecorder,
    /// The open queue-wait span; the worker closes it at pickup.
    queue_span: Mutex<Option<SpanGuard>>,
    inner: Mutex<JobInner>,
}

impl Job {
    fn send_to_subs(subs: &[Subscriber], make: impl Fn(u64) -> ServerFrame, terminal: bool) {
        for sub in subs {
            let frame = make(sub.req_id);
            if sub.tx.send(format!("{}\n", frame.to_line())).is_ok() {
                if terminal {
                    sub.terminal_ctr.inc();
                } else {
                    sub.progress_ctr.inc();
                }
            }
        }
    }
}

/// The `jle_sweepd_*` metric family, on the shared registry.
#[derive(Clone)]
struct Metrics {
    submissions: Counter,
    dedup_hits: Counter,
    rejected_queue_full: Counter,
    rejected_fair_share: Counter,
    jobs_completed: Counter,
    jobs_cancelled: Counter,
    jobs_failed: Counter,
    unit_cache_hits: Counter,
    connections: Counter,
    queue_depth: Gauge,
    active_jobs: Gauge,
    first_chunk_latency_us: Histogram,
    queue_wait_us: Histogram,
    dedup_shortcircuit_us: Histogram,
    execute_us: Histogram,
    deliver_us: Histogram,
}

impl Metrics {
    fn new(reg: &MetricRegistry) -> Self {
        Metrics {
            submissions: reg
                .counter("jle_sweepd_submissions_total", "work submissions accepted or deduped"),
            dedup_hits: reg.counter(
                "jle_sweepd_dedup_hits_total",
                "submissions coalesced onto an in-flight identical computation",
            ),
            rejected_queue_full: reg.counter(
                "jle_sweepd_rejected_queue_full_total",
                "submissions rejected because the bounded queue was full",
            ),
            rejected_fair_share: reg.counter(
                "jle_sweepd_rejected_fair_share_total",
                "submissions rejected because the client's fair share was exhausted",
            ),
            jobs_completed: reg.counter("jle_sweepd_jobs_completed_total", "jobs finished"),
            jobs_cancelled: reg.counter("jle_sweepd_jobs_cancelled_total", "jobs cancelled"),
            jobs_failed: reg.counter("jle_sweepd_jobs_failed_total", "jobs failed"),
            unit_cache_hits: reg.counter(
                "jle_sweepd_unit_cache_hits_total",
                "jobs answered entirely from the warm result store",
            ),
            connections: reg.counter("jle_sweepd_connections_total", "client connections accepted"),
            queue_depth: reg.gauge("jle_sweepd_queue_depth", "jobs waiting for a worker"),
            active_jobs: reg.gauge("jle_sweepd_active_jobs", "jobs currently executing"),
            first_chunk_latency_us: reg.histogram(
                "jle_sweepd_first_chunk_latency_us",
                "submission-to-first-chunk (or cache-answer) latency, microseconds",
            ),
            queue_wait_us: reg.histogram(
                "jle_sweepd_queue_wait_us",
                "admission-to-worker-pickup wait per job, microseconds",
            ),
            dedup_shortcircuit_us: reg.histogram(
                "jle_sweepd_dedup_shortcircuit_us",
                "admission latency of submissions coalesced onto in-flight work, microseconds",
            ),
            execute_us: reg.histogram(
                "jle_sweepd_execute_us",
                "orchestrator execution time per job, microseconds",
            ),
            deliver_us: reg.histogram(
                "jle_sweepd_deliver_us",
                "result rendering + subscriber fan-out time per job, microseconds",
            ),
        }
    }
}

/// Per-connection counters, on the connection's private registry.
#[derive(Clone)]
struct ConnMetrics {
    submissions: Counter,
    dedup: Counter,
    rejected: Counter,
    progress_frames: Counter,
    results: Counter,
}

impl ConnMetrics {
    fn new(reg: &MetricRegistry) -> Self {
        ConnMetrics {
            submissions: reg
                .counter("jle_sweepd_client_submissions_total", "submissions on this connection"),
            dedup: reg.counter(
                "jle_sweepd_client_dedup_total",
                "this connection's submissions coalesced onto in-flight work",
            ),
            rejected: reg.counter(
                "jle_sweepd_client_rejected_total",
                "this connection's submissions rejected (backpressure)",
            ),
            progress_frames: reg.counter(
                "jle_sweepd_client_progress_frames_total",
                "progress frames streamed to this connection",
            ),
            results: reg.counter(
                "jle_sweepd_client_results_total",
                "terminal frames delivered to this connection",
            ),
        }
    }
}

struct State {
    /// In-flight (queued or running) jobs by fingerprint hex.
    jobs: HashMap<String, Arc<Job>>,
    queue: VecDeque<Arc<Job>>,
    inflight_per_client: HashMap<u64, u64>,
    running_per_client: HashMap<u64, u64>,
    running: u64,
}

struct Core {
    config: ServerConfig,
    store: Option<ResultStore>,
    registry: MetricRegistry,
    m: Metrics,
    state: Mutex<State>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    next_client: AtomicU64,
}

impl Core {
    fn fingerprint(&self, spec: &WorkSpec) -> String {
        Fingerprint::of(spec, &self.config.salt, std::any::type_name::<RunReport>())
            .hex()
            .to_string()
    }

    fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Fire every in-flight job's token and flush queued jobs with a
        // terminal frame: no subscriber is left waiting forever.
        let drained: Vec<Arc<Job>> = {
            let mut st = self.state.lock().expect("sweepd state");
            let queued: Vec<Arc<Job>> = st.queue.drain(..).collect();
            for job in st.jobs.values() {
                job.cancel.cancel();
            }
            for job in &queued {
                st.jobs.remove(&job.key);
                dec(&mut st.inflight_per_client, job.client);
            }
            self.m.queue_depth.set(st.queue.len() as f64);
            queued
        };
        for job in drained {
            let subs = {
                let mut inner = job.inner.lock().expect("job inner");
                inner.phase = Phase::Failed;
                std::mem::take(&mut inner.subs)
            };
            let key = job.key.clone();
            Job::send_to_subs(
                &subs,
                |req_id| ServerFrame::Failed {
                    id: req_id,
                    key: key.clone(),
                    reason: "server shutting down".to_string(),
                },
                true,
            );
            self.m.jobs_failed.inc();
        }
        self.work_cv.notify_all();
    }

    /// Admission control: dedup → queue bound → fair share.
    ///
    /// Returns `None` when the `accepted` frame was already pushed into
    /// `tx` — delivery order matters there: the frame must enter the
    /// writer queue *before* the subscriber becomes visible to a worker,
    /// or a warm-cache `result` can overtake its own `accepted` and the
    /// client (which reads frames in order) discards it as stray.
    #[allow(clippy::too_many_arguments)]
    fn submit(
        &self,
        client: u64,
        req_id: u64,
        tx: &mpsc::Sender<String>,
        cm: &ConnMetrics,
        spec: WorkSpec,
        trials: u64,
        trace: Option<TraceContext>,
    ) -> Option<ServerFrame> {
        let admitted_at = Instant::now();
        if self.shutdown.load(Ordering::SeqCst) {
            cm.rejected.inc();
            return Some(ServerFrame::Rejected {
                id: req_id,
                reason: "server shutting down".to_string(),
                retry_after_ms: 0,
            });
        }
        if let Err(e) = build_trial_fn(&spec.params) {
            return Some(ServerFrame::Error { id: req_id, reason: e.to_string() });
        }
        let key = self.fingerprint(&spec);
        let tracer = match trace {
            Some(ctx) => SpanRecorder::with_trace(ctx),
            None => SpanRecorder::disabled(),
        };
        let admission_span = tracer.span("sweepd", "admission");
        let mut st = self.state.lock().expect("sweepd state");
        if let Some(job) = st.jobs.get(&key) {
            if job.trials != trials {
                cm.rejected.inc();
                return Some(ServerFrame::Rejected {
                    id: req_id,
                    reason: format!(
                        "key {key} is in flight with {} trials (requested {trials})",
                        job.trials
                    ),
                    retry_after_ms: 500,
                });
            }
            let job = Arc::clone(job);
            let queue_depth = st.queue.len() as u64;
            drop(st);
            let attached = {
                let mut inner = job.inner.lock().expect("job inner");
                // A terminal phase means the worker is mid-delivery; the
                // race window is tiny, so just ask the client to retry
                // (the store is warm by then — the retry is a cache hit).
                if matches!(inner.phase, Phase::Queued | Phase::Running) {
                    // `accepted` first, subscriber second: the worker
                    // delivering the terminal frame takes this same inner
                    // lock, so once the subscriber is visible its result
                    // frame is guaranteed to queue behind this one.
                    let _ = tx.send(format!(
                        "{}\n",
                        ServerFrame::Accepted {
                            id: req_id,
                            key: key.clone(),
                            trials,
                            dedup: true,
                            queue_depth,
                        }
                        .to_line()
                    ));
                    inner.subs.push(Subscriber {
                        client,
                        req_id,
                        tx: tx.clone(),
                        progress_ctr: cm.progress_frames.clone(),
                        terminal_ctr: cm.results.clone(),
                    });
                    true
                } else {
                    false
                }
            };
            if !attached {
                cm.rejected.inc();
                return Some(ServerFrame::Rejected {
                    id: req_id,
                    reason: format!("key {key} just completed; retry hits the warm cache"),
                    retry_after_ms: 20,
                });
            }
            self.m.submissions.inc();
            self.m.dedup_hits.inc();
            self.m.dedup_shortcircuit_us.observe(admitted_at.elapsed().as_micros() as u64);
            cm.submissions.inc();
            cm.dedup.inc();
            return None;
        }
        if st.queue.len() >= self.config.max_queue {
            self.m.rejected_queue_full.inc();
            cm.rejected.inc();
            let retry_after_ms = 100 + 25 * st.queue.len() as u64;
            return Some(ServerFrame::Rejected {
                id: req_id,
                reason: format!("queue full ({} jobs)", st.queue.len()),
                retry_after_ms,
            });
        }
        let inflight = st.inflight_per_client.get(&client).copied().unwrap_or(0);
        if inflight >= self.config.client_share as u64 {
            self.m.rejected_fair_share.inc();
            cm.rejected.inc();
            return Some(ServerFrame::Rejected {
                id: req_id,
                reason: format!("fair share exhausted ({inflight} jobs in flight)"),
                retry_after_ms: 200,
            });
        }
        // Close the admission span and open the queue-wait span, which
        // stays open until worker pickup.
        drop(admission_span);
        let queue_span = tracer.span("sweepd", "queue-wait");
        let job = Arc::new(Job {
            key: key.clone(),
            spec,
            trials,
            client,
            cancel: CancelToken::new(),
            submitted: Instant::now(),
            executed_trials: AtomicU64::new(0),
            cached_trials: AtomicU64::new(0),
            tracer,
            queue_span: Mutex::new(Some(queue_span)),
            inner: Mutex::new(JobInner {
                phase: Phase::Queued,
                done_trials: 0,
                subs: vec![Subscriber {
                    client,
                    req_id,
                    tx: tx.clone(),
                    progress_ctr: cm.progress_frames.clone(),
                    terminal_ctr: cm.results.clone(),
                }],
                latency_observed: false,
                last_progress: None,
            }),
        });
        let queue_depth = st.queue.len() as u64 + 1;
        // Still under the state lock, so no worker can pop the job (and
        // race its `result` ahead of this frame) until after we enqueue.
        let _ = tx.send(format!(
            "{}\n",
            ServerFrame::Accepted {
                id: req_id,
                key: key.clone(),
                trials,
                dedup: false,
                queue_depth
            }
            .to_line()
        ));
        st.jobs.insert(key.clone(), Arc::clone(&job));
        st.queue.push_back(job);
        *st.inflight_per_client.entry(client).or_insert(0) += 1;
        self.m.queue_depth.set(queue_depth as f64);
        drop(st);
        self.m.submissions.inc();
        cm.submissions.inc();
        self.work_cv.notify_one();
        None
    }

    fn subscribe(
        &self,
        client: u64,
        req_id: u64,
        tx: &mpsc::Sender<String>,
        cm: &ConnMetrics,
        key: &str,
    ) -> Option<ServerFrame> {
        let st = self.state.lock().expect("sweepd state");
        let Some(job) = st.jobs.get(key) else {
            return Some(ServerFrame::Error {
                id: req_id,
                reason: format!("key {key} is not in flight"),
            });
        };
        let job = Arc::clone(job);
        let queue_depth = st.queue.len() as u64;
        drop(st);
        let mut inner = job.inner.lock().expect("job inner");
        if !matches!(inner.phase, Phase::Queued | Phase::Running) {
            return Some(ServerFrame::Error {
                id: req_id,
                reason: format!("key {key} already finished"),
            });
        }
        // Same delivery-order rule as `submit`: `accepted` enters the
        // writer queue before the subscriber can receive any frame.
        let _ = tx.send(format!(
            "{}\n",
            ServerFrame::Accepted {
                id: req_id,
                key: key.to_string(),
                trials: job.trials,
                dedup: true,
                queue_depth,
            }
            .to_line()
        ));
        inner.subs.push(Subscriber {
            client,
            req_id,
            tx: tx.clone(),
            progress_ctr: cm.progress_frames.clone(),
            terminal_ctr: cm.results.clone(),
        });
        None
    }

    fn status(&self, req_id: u64, key: &str) -> ServerFrame {
        let st = self.state.lock().expect("sweepd state");
        let Some(job) = st.jobs.get(key) else {
            return ServerFrame::Status {
                id: req_id,
                key: key.to_string(),
                state: "unknown".to_string(),
                done_trials: 0,
                total_trials: 0,
                subscribers: 0,
            };
        };
        let job = Arc::clone(job);
        drop(st);
        let inner = job.inner.lock().expect("job inner");
        ServerFrame::Status {
            id: req_id,
            key: key.to_string(),
            state: inner.phase.label().to_string(),
            done_trials: inner.done_trials,
            total_trials: job.trials,
            subscribers: inner.subs.len() as u64,
        }
    }

    /// Withdraw `client`'s interest in `key`; the computation is
    /// cancelled only when nobody else still wants it.
    fn cancel(&self, client: u64, req_id: u64, key: &str) -> ServerFrame {
        let st = self.state.lock().expect("sweepd state");
        let Some(job) = st.jobs.get(key) else {
            return ServerFrame::Error {
                id: req_id,
                reason: format!("key {key} is not in flight"),
            };
        };
        let job = Arc::clone(job);
        drop(st);
        let completed_trials = {
            let mut inner = job.inner.lock().expect("job inner");
            inner.subs.retain(|s| s.client != client);
            if inner.subs.is_empty() {
                job.cancel.cancel();
            }
            inner.done_trials
        };
        self.work_cv.notify_all();
        ServerFrame::Cancelled { id: req_id, key: key.to_string(), completed_trials }
    }

    /// A connection went away: drop its subscriptions everywhere and
    /// cancel computations nobody is left waiting for.
    fn drop_client(&self, client: u64) {
        let jobs: Vec<Arc<Job>> = {
            let st = self.state.lock().expect("sweepd state");
            st.jobs.values().map(Arc::clone).collect()
        };
        for job in jobs {
            let mut inner = job.inner.lock().expect("job inner");
            inner.subs.retain(|s| s.client != client);
            if inner.subs.is_empty() && matches!(inner.phase, Phase::Queued | Phase::Running) {
                job.cancel.cancel();
            }
        }
    }

    /// Pop the fairest runnable job: FIFO position among jobs whose
    /// submitter currently has the fewest running jobs.
    fn pick_next(&self, st: &mut State) -> Option<Arc<Job>> {
        let mut best: Option<(u64, usize)> = None;
        for (i, job) in st.queue.iter().enumerate() {
            let running = st.running_per_client.get(&job.client).copied().unwrap_or(0);
            if best.is_none_or(|(r, _)| running < r) {
                best = Some((running, i));
                if running == 0 {
                    break;
                }
            }
        }
        let (_, i) = best?;
        let job = st.queue.remove(i).expect("index in bounds");
        *st.running_per_client.entry(job.client).or_insert(0) += 1;
        st.running += 1;
        self.m.queue_depth.set(st.queue.len() as f64);
        self.m.active_jobs.set(st.running as f64);
        Some(job)
    }

    fn worker_loop(self: &Arc<Self>) {
        loop {
            let job = {
                let mut st = self.state.lock().expect("sweepd state");
                loop {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    if let Some(job) = self.pick_next(&mut st) {
                        break job;
                    }
                    st = self.work_cv.wait(st).expect("sweepd state");
                }
            };
            self.run_job(&job);
        }
    }

    fn run_job(self: &Arc<Self>, job: &Arc<Job>) {
        {
            let mut inner = job.inner.lock().expect("job inner");
            inner.phase = Phase::Running;
        }
        // Close the queue-wait span (open since admission) and record the
        // wait — observed for every job, traced or not.
        self.m.queue_wait_us.observe(job.submitted.elapsed().as_micros() as u64);
        drop(job.queue_span.lock().expect("queue span").take());
        let execute_span = job.tracer.span("sweepd", "execute");
        let execute_span_id = execute_span.id();
        let executed_at = Instant::now();
        let orch = match &self.store {
            Some(store) => Orchestrator::with_store(store.clone()),
            None => Orchestrator::ephemeral(),
        }
        .chunk_size(self.config.chunk_size)
        .jobs(self.config.mc_jobs)
        .salt(self.config.salt.clone())
        .engine_mode(crate::work::engine_mode_of(&job.spec.params))
        .cancel_token(job.cancel.clone())
        .metrics_registry(&self.registry)
        .tracer(job.tracer.clone())
        .reporter(JobReporter {
            job: Arc::clone(job),
            m: self.m.clone(),
            progress_every: self.config.progress_every,
        });
        let run_tracer = job.tracer.clone();
        let outcome =
            build_trial_fn(&job.spec.params).map_err(|e| e.to_string()).and_then(|trial_fn| {
                // Kinds with a bit-identical batch backend run whole seed
                // batches per slot-loop pass; everything else stays on the
                // per-trial path. Either way the chunk layout, seeding,
                // and fingerprints are identical, so results land in the
                // same cache entries.
                let batch_fn = crate::work::build_batch_fn(&job.spec.params).ok();
                catch_unwind(AssertUnwindSafe(|| match &batch_fn {
                    Some(batch_fn) => orch.try_run_trials_batched::<RunReport, _>(
                        &job.spec,
                        job.trials,
                        |seeds| {
                            let _run_span = run_tracer.child_span(
                                "engine",
                                format!("batch:{} seeds", seeds.len()),
                                execute_span_id,
                            );
                            batch_fn(seeds)
                        },
                    ),
                    None => orch.try_run_trials::<RunReport, _>(&job.spec, job.trials, |seed| {
                        let _run_span = run_tracer.child_span(
                            "engine",
                            format!("run:seed={seed}"),
                            execute_span_id,
                        );
                        trial_fn(seed)
                    }),
                }))
                .map_err(|panic| {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "worker panicked".to_string());
                    format!("trial panicked: {msg}")
                })
            });
        self.m.execute_us.observe(executed_at.elapsed().as_micros() as u64);
        drop(execute_span);
        let wall_secs = job.submitted.elapsed().as_secs_f64();

        // Remove from the in-flight table *before* taking the subscriber
        // list (state → inner lock order, matching submit), so a
        // re-submission races toward the warm cache, never a stale entry.
        let subs = {
            let mut st = self.state.lock().expect("sweepd state");
            st.jobs.remove(&job.key);
            dec(&mut st.inflight_per_client, job.client);
            dec(&mut st.running_per_client, job.client);
            st.running -= 1;
            self.m.active_jobs.set(st.running as f64);
            drop(st);
            let mut inner = job.inner.lock().expect("job inner");
            inner.phase = match &outcome {
                Ok(Ok(_)) => Phase::Done,
                Ok(Err(_)) => Phase::Cancelled,
                Err(_) => Phase::Failed,
            };
            std::mem::take(&mut inner.subs)
        };
        let key = job.key.clone();
        match outcome {
            Ok(Ok(results)) => {
                let delivered_at = Instant::now();
                let executed_trials = job.executed_trials.load(Ordering::Relaxed);
                let cached_trials = job.cached_trials.load(Ordering::Relaxed);
                let payload: Arc<serde::Value> = Arc::new(serde::Value::Seq(
                    results.iter().map(Serialize::to_json_value).collect(),
                ));
                // The deliver span is open while the export happens, so it
                // reaches the client truncated-at-export — present in the
                // merged trace, its tail not observable by construction.
                let deliver_span = job.tracer.span("sweepd", "deliver");
                let spans = job.tracer.is_enabled().then(|| Arc::new(job.tracer.export_events()));
                Job::send_to_subs(
                    &subs,
                    |req_id| ServerFrame::Result {
                        id: req_id,
                        key: key.clone(),
                        trials: job.trials,
                        executed_trials,
                        cached_trials,
                        wall_secs,
                        results: Arc::clone(&payload),
                        spans: spans.clone(),
                    },
                    true,
                );
                drop(deliver_span);
                self.m.deliver_us.observe(delivered_at.elapsed().as_micros() as u64);
                self.m.jobs_completed.inc();
            }
            Ok(Err(interrupted)) => {
                let completed_trials = interrupted.completed_trials();
                // Interrupted::ChunkBudgetExhausted cannot happen (no
                // budget is set); fold it into cancellation regardless.
                debug_assert!(matches!(interrupted, Interrupted::Cancelled { .. }));
                Job::send_to_subs(
                    &subs,
                    |req_id| ServerFrame::Cancelled {
                        id: req_id,
                        key: key.clone(),
                        completed_trials,
                    },
                    true,
                );
                self.m.jobs_cancelled.inc();
            }
            Err(reason) => {
                Job::send_to_subs(
                    &subs,
                    |req_id| ServerFrame::Failed {
                        id: req_id,
                        key: key.clone(),
                        reason: reason.clone(),
                    },
                    true,
                );
                self.m.jobs_failed.inc();
            }
        }
    }
}

fn dec(map: &mut HashMap<u64, u64>, client: u64) {
    if let Some(v) = map.get_mut(&client) {
        *v = v.saturating_sub(1);
        if *v == 0 {
            map.remove(&client);
        }
    }
}

/// Bridges orchestrator events into subscriber progress frames and the
/// service latency/cache metrics.
struct JobReporter {
    job: Arc<Job>,
    m: Metrics,
    progress_every: Duration,
}

impl JobReporter {
    fn observe_first_event(&self, inner: &mut JobInner) {
        if !inner.latency_observed {
            inner.latency_observed = true;
            self.m.first_chunk_latency_us.observe(self.job.submitted.elapsed().as_micros() as u64);
        }
    }
}

impl Reporter for JobReporter {
    fn report(&self, event: &Event<'_>) {
        match *event {
            Event::UnitStarted { trials, cached_trials, .. } => {
                self.job.cached_trials.store(cached_trials, Ordering::Relaxed);
                if cached_trials >= trials {
                    // Fully warm unit: the store answers in one pass.
                    self.m.unit_cache_hits.inc();
                    let mut inner = self.job.inner.lock().expect("job inner");
                    inner.done_trials = trials;
                    self.observe_first_event(&mut inner);
                }
            }
            Event::ChunkFinished { end, slots, trials_per_sec, eta_secs, .. } => {
                let mut inner = self.job.inner.lock().expect("job inner");
                inner.done_trials = inner.done_trials.max(end);
                self.observe_first_event(&mut inner);
                let due = inner.last_progress.is_none_or(|t| t.elapsed() >= self.progress_every);
                if !due {
                    return;
                }
                inner.last_progress = Some(Instant::now());
                let done_trials = inner.done_trials;
                let key = self.job.key.clone();
                Job::send_to_subs(
                    &inner.subs,
                    |req_id| ServerFrame::Progress {
                        id: req_id,
                        key: key.clone(),
                        done_trials,
                        total_trials: self.job.trials,
                        slots,
                        trials_per_sec,
                        eta_secs,
                    },
                    false,
                );
            }
            Event::UnitFinished { executed_trials, cached_trials, .. } => {
                self.job.executed_trials.store(executed_trials, Ordering::Relaxed);
                self.job.cached_trials.store(cached_trials, Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

enum ListenerKind {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// The bound, ready-to-serve service.
pub struct SweepServer {
    core: Arc<Core>,
    listener: ListenerKind,
    workers: Vec<std::thread::JoinHandle<()>>,
    prom: Option<std::thread::JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl SweepServer {
    /// Bind `endpoint`, open the store, and start the worker pool. The
    /// accept loop itself runs in [`SweepServer::serve`] /
    /// [`SweepServer::spawn`].
    pub fn bind(endpoint: &Endpoint, config: ServerConfig) -> io::Result<Self> {
        let store = match &config.cache_dir {
            Some(dir) => Some(ResultStore::open(dir)?),
            None => None,
        };
        let registry = MetricRegistry::new();
        let m = Metrics::new(&registry);
        let core = Arc::new(Core {
            store,
            registry,
            m,
            state: Mutex::new(State {
                jobs: HashMap::new(),
                queue: VecDeque::new(),
                inflight_per_client: HashMap::new(),
                running_per_client: HashMap::new(),
                running: 0,
            }),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_client: AtomicU64::new(0),
            config,
        });
        let (listener, tcp_addr, unix_path) = match endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                let local = l.local_addr()?;
                (ListenerKind::Tcp(l), Some(local), None)
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                (ListenerKind::Unix(l), None, Some(path.clone()))
            }
            #[cfg(not(unix))]
            Endpoint::Unix(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are not available on this platform",
                ))
            }
        };
        let workers = (0..core.config.effective_workers())
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("sweepd-worker-{i}"))
                    .spawn(move || core.worker_loop())
                    .expect("spawn worker")
            })
            .collect();
        let prom = core.config.prom_dump.clone().map(|path| {
            let core = Arc::clone(&core);
            std::thread::Builder::new()
                .name("sweepd-prom-dump".to_string())
                .spawn(move || {
                    loop {
                        let _ = core.registry.write_prometheus(&path);
                        if core.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(500));
                    }
                    let _ = core.registry.write_prometheus(&path);
                })
                .expect("spawn prom dump")
        });
        Ok(SweepServer { core, listener, workers, prom, tcp_addr, unix_path })
    }

    /// The bound TCP address (for `Endpoint::Tcp(..:0)` tests).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The shared metric registry (server side).
    pub fn registry(&self) -> MetricRegistry {
        self.core.registry.clone()
    }

    /// Accept connections until a `shutdown` frame arrives, then drain
    /// and exit. Consumes the server.
    pub fn serve(self) -> io::Result<()> {
        let SweepServer { core, listener, workers, prom, unix_path, .. } = self;
        loop {
            let accepted: Option<SweepStream> = match &listener {
                ListenerKind::Tcp(l) => match l.accept() {
                    Ok((s, _)) => {
                        let _ = s.set_nodelay(true);
                        Some(SweepStream::Tcp(s))
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(e) => return Err(e),
                },
                #[cfg(unix)]
                ListenerKind::Unix(l) => match l.accept() {
                    Ok((s, _)) => Some(SweepStream::Unix(s)),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(e) => return Err(e),
                },
            };
            match accepted {
                Some(stream) => {
                    let core = Arc::clone(&core);
                    std::thread::Builder::new()
                        .name("sweepd-conn".to_string())
                        .spawn(move || handle_conn(&core, stream))
                        .expect("spawn connection handler");
                }
                None => {
                    if core.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        core.work_cv.notify_all();
        for w in workers {
            let _ = w.join();
        }
        if let Some(p) = prom {
            let _ = p.join();
        }
        if let Some(path) = unix_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }

    /// Run [`SweepServer::serve`] on a background thread.
    pub fn spawn(self) -> ServerHandle {
        let core = Arc::clone(&self.core);
        let join = std::thread::Builder::new()
            .name("sweepd-accept".to_string())
            .spawn(move || self.serve())
            .expect("spawn accept loop");
        ServerHandle { core, join }
    }
}

/// Handle to a background [`SweepServer::spawn`] instance.
pub struct ServerHandle {
    core: Arc<Core>,
    join: std::thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The shared metric registry (server side).
    pub fn registry(&self) -> MetricRegistry {
        self.core.registry.clone()
    }

    /// Request shutdown and wait for the accept loop to drain.
    pub fn shutdown(self) -> io::Result<()> {
        self.core.request_shutdown();
        self.join.join().unwrap_or_else(|_| Err(io::Error::other("accept loop panicked")))
    }
}

fn handle_conn(core: &Arc<Core>, stream: SweepStream) {
    let client = core.next_client.fetch_add(1, Ordering::Relaxed) + 1;
    core.m.connections.inc();
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<String>();
    let writer = std::thread::Builder::new()
        .name("sweepd-conn-writer".to_string())
        .spawn(move || {
            let mut out = write_half;
            for chunk in rx {
                if out.write_all(chunk.as_bytes()).and_then(|()| out.flush()).is_err() {
                    break;
                }
            }
        })
        .expect("spawn connection writer");

    let conn_registry = MetricRegistry::new();
    let cm = ConnMetrics::new(&conn_registry);
    let send_frame = |frame: &ServerFrame| {
        let _ = tx.send(format!("{}\n", frame.to_line()));
    };

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut first = true;
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        // HTTP-ish health surface: a plain `GET <path> HTTP/1.x` first
        // line gets the Prometheus text and the connection closes —
        // curl-compatible without an HTTP stack.
        if first && trimmed.starts_with("GET ") {
            let body = core.registry.render_prometheus();
            let _ = tx.send(format!(
                "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len(),
            ));
            break;
        }
        first = false;
        let frame = match ClientFrame::parse(trimmed) {
            Ok(f) => f,
            Err(e) => {
                send_frame(&ServerFrame::Error { id: 0, reason: format!("bad frame: {e}") });
                continue;
            }
        };
        match frame {
            ClientFrame::Hello { id } => send_frame(&ServerFrame::Hello {
                id,
                proto: PROTOCOL_VERSION.to_string(),
                workers: core.config.effective_workers() as u64,
                max_queue: core.config.max_queue as u64,
                client_share: core.config.client_share as u64,
            }),
            ClientFrame::Submit { id, spec, trials, trace } => {
                if let Some(reply) = core.submit(client, id, &tx, &cm, spec, trials, trace) {
                    send_frame(&reply);
                }
            }
            ClientFrame::Subscribe { id, key } => {
                if let Some(reply) = core.subscribe(client, id, &tx, &cm, &key) {
                    send_frame(&reply);
                }
            }
            ClientFrame::Status { id, key } => send_frame(&core.status(id, &key)),
            ClientFrame::Cancel { id, key } => send_frame(&core.cancel(client, id, &key)),
            ClientFrame::Metrics { id } => send_frame(&ServerFrame::Metrics {
                id,
                server: core.registry.snapshot().to_json_value(),
                client: conn_registry.snapshot().to_json_value(),
            }),
            ClientFrame::Shutdown { id } => {
                send_frame(&ServerFrame::ShuttingDown { id });
                core.request_shutdown();
                break;
            }
        }
    }
    core.drop_client(client);
    drop(tx);
    let _ = writer.join();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parse_spellings() {
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:7677"),
            Ok(Endpoint::Tcp("127.0.0.1:7677".into()))
        );
        assert_eq!(Endpoint::parse("127.0.0.1:0"), Ok(Endpoint::Tcp("127.0.0.1:0".into())));
        assert_eq!(
            Endpoint::parse("unix:/tmp/sweepd.sock"),
            Ok(Endpoint::Unix(PathBuf::from("/tmp/sweepd.sock")))
        );
        assert_eq!(
            Endpoint::parse("/tmp/sweepd.sock"),
            Ok(Endpoint::Unix(PathBuf::from("/tmp/sweepd.sock")))
        );
        assert!(Endpoint::parse("nonsense").is_err());
    }

    #[test]
    fn config_defaults_are_sane() {
        let c = ServerConfig::default();
        assert!(c.effective_workers() >= 1);
        assert!(c.max_queue > 0);
        assert!(c.client_share > 0);
        assert_eq!(c.salt, DEFAULT_CODE_SALT);
    }
}
