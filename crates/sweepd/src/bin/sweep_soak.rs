//! `sweep-soak` — load harness for the sweep service.
//!
//! Fires thousands of concurrent submissions with deliberately
//! overlapping fingerprints (a small distinct-spec pool shared by many
//! clients), then reports the dedup ratio, the warm-cache hit ratio,
//! and p50/p99 submission-to-first-event latency. Exits non-zero if any
//! submission drops a frame (no terminal answer, or a short payload) —
//! the CI `service-smoke` invariant.
//!
//! ```text
//! sweep-soak --in-process --submissions 1000 --clients 16
//! sweep-soak --server tcp:127.0.0.1:7677 --submissions 200
//! ```

use jle_adversary::AdversarySpec;
use jle_orchestrator::WorkSpec;
use jle_radio::CdModel;
use jle_sweepd::client::{snapshot_counter, ClientError, SweepClient};
use jle_sweepd::{Endpoint, ServerConfig, SweepServer};
use serde::{Serialize, Value};
use serde_json::json;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

const USAGE: &str = "\
sweep-soak: load/soak harness for jle-sweepd

USAGE:
  sweep-soak (--in-process | --server ENDPOINT) [OPTIONS]

OPTIONS:
  --in-process        Spawn a private server on 127.0.0.1:0 with a temp cache
  --server ENDPOINT   Target an already-running service (tcp:ADDR | unix:PATH)
  --submissions N     Total submissions to fire (default: 1000)
  --clients C         Concurrent client connections (default: 16)
  --distinct K        Distinct fingerprints in the spec pool (default: 24)
  --trials T          Trials per unit (default: 8)
  --n N               Cohort size per trial (default: 64)
  --max-slots M       Per-trial slot cap (default: 100000)
  --workers W         In-process server worker threads (default: 4)
  --report PATH       Write the JSON report here
  -h, --help          This text
";

fn fail(msg: &str) -> ! {
    eprintln!("sweep-soak: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

#[derive(Default)]
struct Tally {
    ok: u64,
    dedup: u64,
    cache_served: u64,
    rejected_retries: u64,
    dropped: u64,
    first_event_ms: Vec<f64>,
    result_ms: Vec<f64>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut server_endpoint: Option<Endpoint> = None;
    let mut in_process = false;
    let mut submissions: u64 = 1000;
    let mut clients: u64 = 16;
    let mut distinct: u64 = 24;
    let mut trials: u64 = 8;
    let mut n: u64 = 64;
    let mut max_slots: u64 = 100_000;
    let mut workers: usize = 4;
    let mut report_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--in-process" => in_process = true,
            "--server" => {
                server_endpoint =
                    Some(Endpoint::parse(value("--server")).unwrap_or_else(|e| fail(&e)))
            }
            "--submissions" => {
                submissions =
                    value("--submissions").parse().unwrap_or_else(|_| fail("bad --submissions"))
            }
            "--clients" => {
                clients = value("--clients").parse().unwrap_or_else(|_| fail("bad --clients"))
            }
            "--distinct" => {
                distinct = value("--distinct").parse().unwrap_or_else(|_| fail("bad --distinct"))
            }
            "--trials" => {
                trials = value("--trials").parse().unwrap_or_else(|_| fail("bad --trials"))
            }
            "--n" => n = value("--n").parse().unwrap_or_else(|_| fail("bad --n")),
            "--max-slots" => {
                max_slots = value("--max-slots").parse().unwrap_or_else(|_| fail("bad --max-slots"))
            }
            "--workers" => {
                workers = value("--workers").parse().unwrap_or_else(|_| fail("bad --workers"))
            }
            "--report" => report_path = Some(PathBuf::from(value("--report"))),
            "-h" | "--help" => {
                print!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument `{other}`")),
        }
    }
    if clients == 0 || distinct == 0 || submissions == 0 {
        fail("--submissions, --clients and --distinct must be ≥ 1");
    }

    // Spin up (or target) the service.
    let mut temp_cache: Option<PathBuf> = None;
    let (endpoint, handle) = if in_process {
        let cache = std::env::temp_dir().join(format!("jle-sweepd-soak-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache);
        let config = ServerConfig {
            cache_dir: Some(cache.clone()),
            workers,
            max_queue: 256,
            client_share: 64,
            ..ServerConfig::default()
        };
        temp_cache = Some(cache);
        let server = SweepServer::bind(&Endpoint::Tcp("127.0.0.1:0".into()), config)
            .unwrap_or_else(|e| fail(&format!("cannot bind in-process server: {e}")));
        let addr = server.tcp_addr().expect("tcp bind");
        (Endpoint::Tcp(addr.to_string()), Some(server.spawn()))
    } else {
        let Some(ep) = server_endpoint else { fail("one of --in-process or --server is required") };
        (ep, None)
    };

    // The spec pool: `distinct` small LESK units; many submissions per
    // fingerprint → high in-flight overlap early, warm-cache hits late.
    let specs: Vec<WorkSpec> = (0..distinct)
        .map(|k| {
            WorkSpec::new(
                "soak",
                format!("lesk/clean/k={k}"),
                json!({
                    "kind": "cohort_election",
                    "n": n,
                    "cd": CdModel::Strong.to_json_value(),
                    "adv": AdversarySpec::passive().to_json_value(),
                    "max_slots": max_slots,
                    "proto": {"proto": "lesk", "eps": 0.5f64},
                }),
                10_000 + k * 1_000,
            )
        })
        .collect();

    eprintln!(
        "sweep-soak: {submissions} submissions × {clients} clients over {distinct} fingerprints → {endpoint}"
    );
    let tally = Mutex::new(Tally::default());
    let started = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let specs = &specs;
            let tally = &tally;
            let endpoint = endpoint.clone();
            let lo = submissions * c / clients;
            let hi = submissions * (c + 1) / clients;
            scope.spawn(move || {
                let mut client = match SweepClient::connect(&endpoint) {
                    Ok(cl) => cl,
                    Err(e) => {
                        eprintln!("sweep-soak: client {c}: connect failed: {e}");
                        tally.lock().unwrap().dropped += hi - lo;
                        return;
                    }
                };
                let _ = client.set_read_timeout(Some(Duration::from_secs(120)));
                for i in lo..hi {
                    // Deterministic, interleaved pool walk: concurrent
                    // clients keep colliding on the same fingerprints.
                    let spec = &specs[((i * 7 + c * 3) % distinct) as usize];
                    let sub_started = Instant::now();
                    let mut retries = 0u64;
                    let submission = loop {
                        match client.submit(spec, trials) {
                            Ok(s) => break Ok(s),
                            Err(ClientError::Rejected { retry_after_ms, .. }) => {
                                retries += 1;
                                std::thread::sleep(Duration::from_millis(
                                    retry_after_ms.clamp(5, 1_000),
                                ));
                            }
                            Err(e) => break Err(e),
                        }
                    };
                    let mut first_event: Option<f64> = None;
                    let outcome = submission.and_then(|s| {
                        client
                            .wait(&s, |_| {
                                first_event.get_or_insert_with(|| {
                                    sub_started.elapsed().as_secs_f64() * 1e3
                                });
                            })
                            .map(|o| (s, o))
                    });
                    let mut t = tally.lock().unwrap();
                    t.rejected_retries += retries;
                    match outcome {
                        Ok((s, o)) => {
                            let result_ms = sub_started.elapsed().as_secs_f64() * 1e3;
                            let len = o.results.as_seq().map(<[Value]>::len).unwrap_or(0) as u64;
                            if len != trials {
                                eprintln!(
                                    "sweep-soak: short payload for {}: {len}/{trials}",
                                    s.key
                                );
                                t.dropped += 1;
                                continue;
                            }
                            t.ok += 1;
                            if s.dedup {
                                t.dedup += 1;
                            }
                            if o.executed_trials == 0 {
                                t.cache_served += 1;
                            }
                            t.first_event_ms.push(first_event.unwrap_or(result_ms));
                            t.result_ms.push(result_ms);
                        }
                        Err(e) => {
                            eprintln!("sweep-soak: client {c} submission {i} lost: {e}");
                            t.dropped += 1;
                        }
                    }
                }
            });
        }
    });
    let wall_secs = started.elapsed().as_secs_f64();

    // Server-side counters for the dedup/cache story.
    let server_metrics: Option<Value> = SweepClient::connect(&endpoint)
        .ok()
        .and_then(|mut c| c.metrics().ok())
        .map(|(server, _)| server);
    let counter =
        |name: &str| server_metrics.as_ref().and_then(|s| snapshot_counter(s, name)).unwrap_or(0);
    let srv_submissions = counter("jle_sweepd_submissions_total");
    let srv_dedup = counter("jle_sweepd_dedup_hits_total");
    let srv_cache_hits = counter("jle_sweepd_unit_cache_hits_total");
    let srv_completed = counter("jle_sweepd_jobs_completed_total");
    let srv_executed_trials = counter("jle_orchestrator_executed_trials");
    let srv_cached_trials = counter("jle_orchestrator_cached_trials");

    if let Some(h) = handle {
        if let Ok(mut c) = SweepClient::connect(&endpoint) {
            let _ = c.shutdown();
        }
        let _ = h.shutdown();
    }
    if let Some(cache) = temp_cache {
        let _ = std::fs::remove_dir_all(cache);
    }

    let mut t = tally.into_inner().unwrap();
    t.first_event_ms.sort_by(f64::total_cmp);
    t.result_ms.sort_by(f64::total_cmp);
    let dedup_ratio = t.dedup as f64 / submissions as f64;
    let cache_ratio = t.cache_served as f64 / submissions as f64;
    let report = json!({
        "schema": "jle-sweep-soak-v1",
        "endpoint": endpoint.to_string(),
        "submissions": submissions,
        "clients": clients,
        "distinct_fingerprints": distinct,
        "trials_per_unit": trials,
        "n": n,
        "ok": t.ok,
        "dropped_frames": t.dropped,
        "rejected_retries": t.rejected_retries,
        "client_dedup_submissions": t.dedup,
        "client_cache_served": t.cache_served,
        "dedup_ratio": dedup_ratio,
        "cache_hit_ratio": cache_ratio,
        "first_event_ms": {
            "p50": percentile(&t.first_event_ms, 0.50),
            "p90": percentile(&t.first_event_ms, 0.90),
            "p99": percentile(&t.first_event_ms, 0.99),
        },
        "result_ms": {
            "p50": percentile(&t.result_ms, 0.50),
            "p90": percentile(&t.result_ms, 0.90),
            "p99": percentile(&t.result_ms, 0.99),
        },
        "wall_secs": wall_secs,
        "throughput_per_sec": t.ok as f64 / wall_secs.max(1e-9),
        "server": {
            "submissions": srv_submissions,
            "dedup_hits": srv_dedup,
            "unit_cache_hits": srv_cache_hits,
            "jobs_completed": srv_completed,
            "executed_trials": srv_executed_trials,
            "cached_trials": srv_cached_trials,
        },
    });
    let rendered = serde_json::to_string_pretty(&report).expect("report rendering");
    if let Some(path) = &report_path {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(path, format!("{rendered}\n"))
            .unwrap_or_else(|e| fail(&format!("cannot write report: {e}")));
        eprintln!("sweep-soak: report written to {}", path.display());
    }
    println!("{rendered}");
    eprintln!(
        "sweep-soak: {}/{} ok, {} dropped, dedup {:.1}%, cache-served {:.1}%, p99 first-event {:.1} ms, {:.1}s wall",
        t.ok,
        submissions,
        t.dropped,
        100.0 * dedup_ratio,
        100.0 * cache_ratio,
        percentile(&t.first_event_ms, 0.99),
        wall_secs,
    );
    if t.dropped > 0 || t.ok != submissions {
        eprintln!("sweep-soak: FAIL — dropped frames detected");
        std::process::exit(1);
    }
}
