//! `jle-sweepd` — run the resident sweep service.
//!
//! ```text
//! jle-sweepd --socket /tmp/sweepd.sock --cache-dir results/.cache
//! jle-sweepd --listen 127.0.0.1:7677 --workers 2 --prom-dump /tmp/sweepd.prom
//! ```
//!
//! The service answers the JSONL protocol on the socket; an HTTP-ish
//! `GET` on the same socket (e.g. `curl http://127.0.0.1:7677/metrics`)
//! returns the Prometheus export.

use jle_sweepd::{Endpoint, ServerConfig, SweepServer};
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "\
jle-sweepd: resident multi-tenant experiment service

USAGE:
  jle-sweepd (--socket PATH | --listen ADDR) [OPTIONS]

OPTIONS:
  --socket PATH       Listen on a Unix-domain socket
  --listen ADDR       Listen on a TCP address (e.g. 127.0.0.1:7677)
  --cache-dir DIR     Result-store root (default: in-memory only)
  --workers N         Worker threads (default: half the cores)
  --mc-jobs N         Monte-Carlo threads per job (default: 1)
  --max-queue N       Bounded queue length (default: 64)
  --client-share N    Max in-flight jobs per client (default: 8)
  --chunk-size N      Checkpoint chunk size (default: 32)
  --salt S            Cache-key salt (default: jle-sim-v1)
  --progress-ms N     Min ms between progress frames (default: 100)
  --prom-dump PATH    Periodically write the Prometheus text here
  -h, --help          This text
";

fn fail(msg: &str) -> ! {
    eprintln!("jle-sweepd: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut endpoint: Option<Endpoint> = None;
    let mut config = ServerConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--socket" => endpoint = Some(Endpoint::Unix(PathBuf::from(value("--socket")))),
            "--listen" => endpoint = Some(Endpoint::Tcp(value("--listen").to_string())),
            "--cache-dir" => config.cache_dir = Some(PathBuf::from(value("--cache-dir"))),
            "--workers" => {
                config.workers =
                    value("--workers").parse().unwrap_or_else(|_| fail("bad --workers"))
            }
            "--mc-jobs" => {
                config.mc_jobs =
                    value("--mc-jobs").parse().unwrap_or_else(|_| fail("bad --mc-jobs"))
            }
            "--max-queue" => {
                config.max_queue =
                    value("--max-queue").parse().unwrap_or_else(|_| fail("bad --max-queue"))
            }
            "--client-share" => {
                config.client_share =
                    value("--client-share").parse().unwrap_or_else(|_| fail("bad --client-share"))
            }
            "--chunk-size" => {
                config.chunk_size =
                    value("--chunk-size").parse().unwrap_or_else(|_| fail("bad --chunk-size"))
            }
            "--salt" => config.salt = value("--salt").to_string(),
            "--progress-ms" => {
                config.progress_every = Duration::from_millis(
                    value("--progress-ms").parse().unwrap_or_else(|_| fail("bad --progress-ms")),
                )
            }
            "--prom-dump" => config.prom_dump = Some(PathBuf::from(value("--prom-dump"))),
            "-h" | "--help" => {
                print!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument `{other}`")),
        }
    }
    let Some(endpoint) = endpoint else { fail("one of --socket or --listen is required") };

    let server = match SweepServer::bind(&endpoint, config.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("jle-sweepd: cannot bind {endpoint}: {e}");
            std::process::exit(1);
        }
    };
    match server.tcp_addr() {
        Some(addr) => eprintln!("jle-sweepd: listening on tcp:{addr}"),
        None => eprintln!("jle-sweepd: listening on {endpoint}"),
    }
    if let Some(dir) = &config.cache_dir {
        eprintln!("jle-sweepd: result store at {}", dir.display());
    }
    if let Err(e) = server.serve() {
        eprintln!("jle-sweepd: accept loop failed: {e}");
        std::process::exit(1);
    }
    eprintln!("jle-sweepd: drained, bye");
}
