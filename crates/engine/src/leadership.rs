//! Leadership tracking: who believes they are leader, right now?
//!
//! In the paper's closed world a run ends the moment a leader emerges, so
//! "the set of current leaders" is only ever inspected once, at the end.
//! Open-world runs (churn + leader leases) keep going: leaders step down,
//! depart, get re-elected — and, under jamming, two stations can
//! transiently *both* believe they lead (split brain). This module
//! provides the engine-side instrumentation for that regime:
//!
//! * [`LeaderLedger`] — a shared registry where protocol instances assert
//!   and renounce leadership beliefs. Entries carry the slot of their
//!   last assertion and expire after a TTL, so a believer that churns out
//!   (and therefore never renounces) stops counting once its lease would
//!   have lapsed — exactly the lease semantics real systems use.
//! * [`SplitBrainObserver`] — a passive [`SlotObserver`] that samples the
//!   ledger every slot, flags windows with ≥2 concurrent believers,
//!   measures time-to-resolution, and deposits
//!   [`SplitBrainStats`](crate::report::SplitBrainStats) on the report.
//!
//! The observer is strictly passive (golden-seed pinned): it reads the
//! ledger and writes report fields, never the simulation state.

use crate::core::SlotActions;
use crate::observer::SlotObserver;
use crate::report::{RunReport, SplitBrainStats};
use jle_radio::SlotTruth;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A shared registry of live leadership beliefs (see the module docs).
///
/// Cheap to clone behind an [`Arc`]; protocol instances hold one handle
/// each and the observer another. All methods take `&self`.
#[derive(Debug)]
pub struct LeaderLedger {
    /// station → slot of its last leadership assertion.
    beliefs: Mutex<BTreeMap<u64, u64>>,
    reelections: AtomicU64,
    ttl: u64,
}

impl LeaderLedger {
    /// A ledger whose beliefs expire `ttl` slots after their last
    /// assertion (a leader must re-assert at least that often to keep
    /// counting as a believer).
    ///
    /// # Panics
    /// Panics if `ttl` is zero.
    pub fn new(ttl: u64) -> Arc<Self> {
        assert!(ttl > 0, "belief TTL must be positive");
        Arc::new(LeaderLedger {
            beliefs: Mutex::new(BTreeMap::new()),
            reelections: AtomicU64::new(0),
            ttl,
        })
    }

    /// The belief TTL in slots.
    pub fn ttl(&self) -> u64 {
        self.ttl
    }

    /// Station `station` asserts (or refreshes) its leadership belief at
    /// `slot`.
    pub fn assert_leader(&self, station: u64, slot: u64) {
        self.beliefs.lock().unwrap().insert(station, slot);
    }

    /// Station `station` explicitly steps down.
    pub fn renounce(&self, station: u64) {
        self.beliefs.lock().unwrap().remove(&station);
    }

    /// Record one re-election (a station re-entering election after lease
    /// loss).
    pub fn note_reelection(&self) {
        self.reelections.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of re-elections recorded so far.
    pub fn reelections(&self) -> u64 {
        self.reelections.load(Ordering::Relaxed)
    }

    /// Number of live (unexpired as of `slot`) believers. Expired entries
    /// are pruned as a side effect.
    pub fn live_count(&self, slot: u64) -> usize {
        let mut beliefs = self.beliefs.lock().unwrap();
        beliefs.retain(|_, last| slot.saturating_sub(*last) <= self.ttl);
        beliefs.len()
    }

    /// The sorted station ids of live believers as of `slot`.
    pub fn live_believers(&self, slot: u64) -> Vec<u64> {
        let mut beliefs = self.beliefs.lock().unwrap();
        beliefs.retain(|_, last| slot.saturating_sub(*last) <= self.ttl);
        beliefs.keys().copied().collect()
    }
}

/// A resolved (or still-open) split-brain interval, for flight-recorder
/// postmortems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitInterval {
    /// First slot with ≥2 concurrent believers.
    pub from: u64,
    /// First slot back at ≤1 believer, or `None` if still split when the
    /// run ended.
    pub until: Option<u64>,
    /// Peak number of concurrent believers inside the interval.
    pub peak: u64,
}

impl SplitInterval {
    /// Length in slots, counting to `end` when the interval is open.
    pub fn len(&self, end: u64) -> u64 {
        self.until.unwrap_or(end).saturating_sub(self.from)
    }
}

/// Samples a [`LeaderLedger`] every slot and deposits
/// [`SplitBrainStats`](crate::report::SplitBrainStats) — see the module
/// docs.
#[derive(Debug)]
pub struct SplitBrainObserver {
    ledger: Arc<LeaderLedger>,
    intervals: Vec<SplitInterval>,
    split_slots: u64,
    end_slot: u64,
}

impl SplitBrainObserver {
    /// Observe `ledger`.
    pub fn new(ledger: Arc<LeaderLedger>) -> Self {
        SplitBrainObserver { ledger, intervals: Vec::new(), split_slots: 0, end_slot: 0 }
    }

    /// The recorded split intervals (open last interval ⇒ unresolved).
    pub fn intervals(&self) -> &[SplitInterval] {
        &self.intervals
    }
}

impl SlotObserver for SplitBrainObserver {
    fn on_slot(&mut self, slot: u64, _: &SlotTruth, _: &SlotActions, _: Option<f64>) {
        self.end_slot = slot + 1;
        let count = self.ledger.live_count(slot) as u64;
        if count >= 2 {
            self.split_slots += 1;
            match self.intervals.last_mut() {
                Some(open) if open.until.is_none() => open.peak = open.peak.max(count),
                _ => self.intervals.push(SplitInterval { from: slot, until: None, peak: count }),
            }
        } else if let Some(open) = self.intervals.last_mut() {
            if open.until.is_none() {
                open.until = Some(slot);
            }
        }
    }

    fn finish(&mut self, report: &mut RunReport) {
        let end = self.end_slot;
        report.split_brain = SplitBrainStats {
            tracked: true,
            windows: self.intervals.len() as u64,
            split_slots: self.split_slots,
            longest_split: self.intervals.iter().map(|w| w.len(end)).max().unwrap_or(0),
            max_believers: self.intervals.iter().map(|w| w.peak).max().unwrap_or(0),
            believers: self.ledger.live_believers(end.saturating_sub(1)),
            reelections: self.ledger.reelections(),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(obs: &mut SplitBrainObserver, slot: u64) {
        obs.on_slot(slot, &SlotTruth::IDLE, &SlotActions::default(), None);
    }

    #[test]
    fn ledger_tracks_and_expires_beliefs() {
        let ledger = LeaderLedger::new(10);
        ledger.assert_leader(3, 0);
        ledger.assert_leader(7, 5);
        assert_eq!(ledger.live_believers(5), vec![3, 7]);
        // Station 3 never re-asserts: its belief lapses after slot 10.
        assert_eq!(ledger.live_believers(11), vec![7]);
        ledger.renounce(7);
        assert_eq!(ledger.live_count(12), 0);
    }

    #[test]
    fn observer_measures_split_windows() {
        let ledger = LeaderLedger::new(100);
        let mut obs = SplitBrainObserver::new(Arc::clone(&ledger));
        ledger.assert_leader(0, 0);
        for s in 0..4 {
            tick(&mut obs, s);
        }
        // Second believer appears at slot 4, resolves at slot 7.
        ledger.assert_leader(1, 4);
        for s in 4..7 {
            tick(&mut obs, s);
        }
        ledger.renounce(1);
        for s in 7..10 {
            tick(&mut obs, s);
        }
        let mut report = RunReport::default();
        obs.finish(&mut report);
        let sb = &report.split_brain;
        assert!(sb.tracked);
        assert_eq!(sb.windows, 1);
        assert_eq!(sb.split_slots, 3);
        assert_eq!(sb.longest_split, 3);
        assert_eq!(sb.max_believers, 2);
        assert_eq!(sb.believers, vec![0], "converged back to one leader");
        assert_eq!(obs.intervals(), &[SplitInterval { from: 4, until: Some(7), peak: 2 }]);
    }

    #[test]
    fn open_window_counts_to_the_end() {
        let ledger = LeaderLedger::new(100);
        let mut obs = SplitBrainObserver::new(Arc::clone(&ledger));
        ledger.assert_leader(0, 0);
        ledger.assert_leader(1, 0);
        for s in 0..5 {
            tick(&mut obs, s);
        }
        let mut report = RunReport::default();
        obs.finish(&mut report);
        assert_eq!(report.split_brain.windows, 1);
        assert_eq!(report.split_brain.longest_split, 5);
        assert_eq!(report.split_brain.believers, vec![0, 1], "unresolved at the end");
    }

    #[test]
    fn no_split_leaves_zeroed_stats_but_tracked() {
        let ledger = LeaderLedger::new(100);
        let mut obs = SplitBrainObserver::new(Arc::clone(&ledger));
        ledger.assert_leader(2, 0);
        for s in 0..8 {
            tick(&mut obs, s);
        }
        let mut report = RunReport::default();
        obs.finish(&mut report);
        assert!(report.split_brain.tracked);
        assert_eq!(report.split_brain.windows, 0);
        assert_eq!(report.split_brain.believers, vec![2]);
    }
}
