//! Per-run results.

use jle_radio::history::StateCounts;
use jle_radio::Trace;
use serde::{Deserialize, Serialize};

/// Energy accounting: total station-slot expenditures across the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyStats {
    /// Station-slots spent transmitting.
    pub transmissions: u64,
    /// Station-slots spent listening.
    pub listens: u64,
}

impl EnergyStats {
    /// Total station-slots of activity.
    pub fn total(&self) -> u64 {
        self.transmissions + self.listens
    }
}

/// The outcome of one simulated run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Slots consumed (= index after the last played slot).
    pub slots: u64,
    /// Slot index of the first unjammed `Single`, if one occurred.
    pub resolved_at: Option<u64>,
    /// Index of the station that transmitted the first clean `Single`.
    pub winner: Option<u64>,
    /// Stations that terminated with `Leader` status (exact engine only;
    /// correctness demands this has length ≤ 1, and exactly 1 on success
    /// under `StopRule::AllTerminated`).
    pub leaders: Vec<u64>,
    /// Whether every station terminated (meaningful for
    /// `StopRule::AllTerminated`).
    pub all_terminated: bool,
    /// Whether the run hit the `max_slots` cap.
    pub timed_out: bool,
    /// Channel statistics over the whole run (`counts.jammed` includes
    /// noise-corrupted slots — they are indistinguishable on the air).
    pub counts: StateCounts,
    /// Slots corrupted by environmental noise (see
    /// `SimConfig::noise_prob`); subset of `counts.jammed`.
    pub noise_slots: u64,
    /// Energy accounting.
    pub energy: EnergyStats,
    /// Full trace if requested.
    #[serde(skip)]
    pub trace: Option<Trace>,
}

impl RunReport {
    /// Whether a leader was successfully determined.
    ///
    /// * Under `FirstCleanSingle`: the first clean Single identifies the
    ///   leader (strong-CD semantics / selection resolution).
    /// * Under `AllTerminated`: exactly one station holds `Leader`.
    pub fn leader_elected(&self) -> bool {
        if self.timed_out {
            return false;
        }
        if self.all_terminated || !self.leaders.is_empty() {
            return self.leaders.len() == 1;
        }
        self.resolved_at.is_some()
    }

    /// Fraction of slots the adversary jammed.
    pub fn jam_fraction(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.counts.jammed as f64 / self.slots as f64
        }
    }

    /// Mean transmissions per station (energy normalized by `n`).
    pub fn tx_per_station(&self, n: u64) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.energy.transmissions as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leader_elected_rules() {
        let mut r = RunReport::default();
        assert!(!r.leader_elected());
        r.resolved_at = Some(10);
        assert!(r.leader_elected());
        r.timed_out = true;
        assert!(!r.leader_elected());
        r.timed_out = false;
        r.all_terminated = true;
        assert!(!r.leader_elected(), "all terminated but no leader");
        r.leaders = vec![3];
        assert!(r.leader_elected());
        r.leaders = vec![3, 5];
        assert!(!r.leader_elected(), "two leaders is a correctness failure");
    }

    #[test]
    fn fractions() {
        let mut r = RunReport { slots: 100, ..Default::default() };
        r.counts.jammed = 25;
        assert!((r.jam_fraction() - 0.25).abs() < 1e-12);
        r.energy.transmissions = 50;
        assert!((r.tx_per_station(10) - 5.0).abs() < 1e-12);
        assert_eq!(RunReport::default().jam_fraction(), 0.0);
        assert_eq!(r.tx_per_station(0), 0.0);
    }

    #[test]
    fn energy_total() {
        let e = EnergyStats { transmissions: 3, listens: 7 };
        assert_eq!(e.total(), 10);
    }
}
