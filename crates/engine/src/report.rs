//! Per-run results.

use jle_radio::history::StateCounts;
use jle_radio::Trace;
use serde::{Deserialize, Serialize};

/// How many channel slots a per-trial result represents — the unit behind
/// the orchestrator's "slots simulated per second" telemetry.
///
/// Projected results (a median, a boolean, a tuple of scalars) default to
/// `0`: throughput accounting is best-effort and only counts results that
/// actually carry a slot total, like [`RunReport`]. Tuples sum their
/// elements, so `(RunReport, extra)` still reports the run's slots.
pub trait SlotCost {
    /// Channel slots this result accounts for.
    fn simulated_slots(&self) -> u64 {
        0
    }
}

macro_rules! impl_slot_cost_zero {
    ($($t:ty),*) => {$(
        impl SlotCost for $t {}
    )*};
}
impl_slot_cost_zero!(bool, u32, u64, usize, i32, i64, f32, f64, String, &str, ());

impl<T: SlotCost> SlotCost for Option<T> {
    fn simulated_slots(&self) -> u64 {
        self.as_ref().map_or(0, SlotCost::simulated_slots)
    }
}

impl<T: SlotCost> SlotCost for Vec<T> {
    fn simulated_slots(&self) -> u64 {
        self.iter().map(SlotCost::simulated_slots).sum()
    }
}

macro_rules! impl_slot_cost_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: SlotCost),+> SlotCost for ($($name,)+) {
            fn simulated_slots(&self) -> u64 {
                0 $(+ self.$idx.simulated_slots())+
            }
        }
    )*};
}
impl_slot_cost_tuple! {
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
}

impl SlotCost for RunReport {
    fn simulated_slots(&self) -> u64 {
        self.slots
    }
}

impl<R: SlotCost> SlotCost for crate::runner::TrialOutcome<R> {
    fn simulated_slots(&self) -> u64 {
        match self {
            crate::runner::TrialOutcome::Ok(r) => r.simulated_slots(),
            crate::runner::TrialOutcome::Panicked(_) => 0,
        }
    }
}

/// Energy accounting: total station-slot expenditures across the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyStats {
    /// Station-slots spent transmitting.
    pub transmissions: u64,
    /// Station-slots spent listening.
    pub listens: u64,
}

impl EnergyStats {
    /// Total station-slots of activity.
    pub fn total(&self) -> u64 {
        self.transmissions + self.listens
    }
}

/// Degradation taxonomy: how a run ended, beyond binary success/failure.
///
/// The paper's model only distinguishes "leader elected" from "not yet";
/// once stations can crash, oversleep, or mis-sense (see
/// [`crate::faults`]), failures split into qualitatively different modes
/// that experiments need to tell apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// A leader was validly determined (see [`RunReport::leader_elected`]).
    Elected,
    /// A leader was determined but is crashed at the end of the run — the
    /// network is once again leaderless.
    LeaderCrashed,
    /// More than one station holds `Leader`: a validity violation.
    MultiLeader,
    /// Leadership beliefs were tracked (see [`crate::leadership`]) and ≥2
    /// stations still believe they lead at the end of the run: an
    /// *unresolved* split brain. Transient splits that converged back to
    /// one believer classify as [`Outcome::Elected`]; their extent is in
    /// [`RunReport::split_brain`].
    SplitBrain,
    /// The run consumed its entire `max_slots` budget without satisfying
    /// its stop rule.
    DeadlineExceeded,
    /// The run ended (stop rule or protocol finished) without any leader.
    NoLeader,
}

impl Outcome {
    /// All outcomes, in taxonomy order (for table columns).
    pub const ALL: [Outcome; 6] = [
        Outcome::Elected,
        Outcome::LeaderCrashed,
        Outcome::MultiLeader,
        Outcome::SplitBrain,
        Outcome::DeadlineExceeded,
        Outcome::NoLeader,
    ];

    /// Short column label.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Elected => "elected",
            Outcome::LeaderCrashed => "leader-crashed",
            Outcome::MultiLeader => "multi-leader",
            Outcome::SplitBrain => "split-brain",
            Outcome::DeadlineExceeded => "deadline",
            Outcome::NoLeader => "no-leader",
        }
    }
}

/// Split-brain accounting, deposited by
/// [`SplitBrainObserver`](crate::leadership::SplitBrainObserver). All
/// zeros (with `tracked == false`) for runs without leadership tracking,
/// so the field is invisible to the closed-world taxonomy.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SplitBrainStats {
    /// Whether a leadership ledger was attached to the run at all. Only
    /// tracked runs can classify as [`Outcome::SplitBrain`].
    #[serde(default)]
    pub tracked: bool,
    /// Number of maximal slot windows with ≥2 concurrent believers.
    #[serde(default)]
    pub windows: u64,
    /// Total slots spent with ≥2 concurrent believers.
    #[serde(default)]
    pub split_slots: u64,
    /// Longest single split window, in slots (open windows count to the
    /// end of the run) — the time-to-resolution bound.
    #[serde(default)]
    pub longest_split: u64,
    /// Peak number of concurrent believers.
    #[serde(default)]
    pub max_believers: u64,
    /// Stations still believing they lead when the run ended (sorted).
    #[serde(default)]
    pub believers: Vec<u64>,
    /// Re-elections triggered over the run (lease losses).
    #[serde(default)]
    pub reelections: u64,
}

impl SplitBrainStats {
    /// Whether the run ended split (≥2 live believers).
    pub fn split_at_end(&self) -> bool {
        self.believers.len() >= 2
    }

    /// Whether the run ended converged on exactly one believer.
    pub fn converged(&self) -> bool {
        self.tracked && self.believers.len() == 1
    }
}

/// Per-cluster election outcome of a multi-hop run (see
/// [`crate::multihop`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusterOutcome {
    /// Cluster index (from the run's cluster assignment).
    pub cluster: u32,
    /// Number of stations assigned to the cluster.
    pub size: u64,
    /// First slot at which every member of the cluster knew its cluster
    /// leader, if that happened.
    pub resolved_at: Option<u64>,
    /// The station leading the cluster at the end of the run.
    pub leader: Option<u64>,
}

/// Topology-aware accounting for multi-hop runs, deposited by
/// [`crate::multihop::MultihopStations::finalize`]. Absent (`None` on
/// [`RunReport::multihop`]) for single-channel runs — including
/// complete-topology multi-hop runs without a cluster assignment, which
/// are bit-identical to the single-channel engine and must serialize
/// identically.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MultihopReport {
    /// Canonical topology descriptor (`Topology::descriptor`).
    pub topology: String,
    /// Connected interference components in the topology.
    pub components: u32,
    /// Per-cluster resolution outcomes (empty when no cluster assignment
    /// was provided).
    pub clusters: Vec<ClusterOutcome>,
    /// First slot from which *every* station reported the same network
    /// leader through the end of the run.
    pub converged_at: Option<u64>,
    /// The network-wide leader every station agreed on, if converged.
    pub network_leader: Option<u64>,
    /// Node-slot events where a station's local channel read `Collision`
    /// although its own cluster contributed at most one transmitter and
    /// the slot was unjammed — collisions manufactured by *foreign*
    /// clusters, the multi-hop analogue of jamming.
    pub cross_cluster_interference: u64,
}

impl MultihopReport {
    /// Whether every cluster resolved a leader.
    pub fn all_clusters_resolved(&self) -> bool {
        !self.clusters.is_empty() && self.clusters.iter().all(|c| c.resolved_at.is_some())
    }

    /// The slowest cluster's resolution slot, if all resolved.
    pub fn last_cluster_resolution(&self) -> Option<u64> {
        self.clusters.iter().map(|c| c.resolved_at).collect::<Option<Vec<_>>>()?.into_iter().max()
    }
}

/// The outcome of one simulated run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Slots consumed (= index after the last played slot).
    pub slots: u64,
    /// Slot index of the first unjammed `Single`, if one occurred.
    pub resolved_at: Option<u64>,
    /// Index of the station that transmitted the first clean `Single`.
    pub winner: Option<u64>,
    /// Stations that terminated with `Leader` status (exact engine only;
    /// correctness demands this has length ≤ 1, and exactly 1 on success
    /// under `StopRule::AllTerminated`).
    pub leaders: Vec<u64>,
    /// Whether every station terminated (meaningful for
    /// `StopRule::AllTerminated`).
    pub all_terminated: bool,
    /// Whether the run ended without satisfying its stop rule (under
    /// `FirstCleanSingle`: no clean `Single`; under `AllTerminated`: not
    /// everyone terminated).
    pub timed_out: bool,
    /// Whether the run consumed its entire `max_slots` budget without the
    /// stop rule firing. Distinct from `timed_out`: a run whose protocol
    /// `finished()` early is a timeout but not a cap hit, and cap-hit is
    /// the condition that maps to [`Outcome::DeadlineExceeded`].
    #[serde(default)]
    pub cap_hit: bool,
    /// Whether the elected leader is crashed at the end of the run (set
    /// by [`crate::faults::run_exact_faulty`]).
    #[serde(default)]
    pub leader_crashed: bool,
    /// Split-brain accounting for leadership-tracked (open-world) runs;
    /// all-default otherwise.
    #[serde(default)]
    pub split_brain: SplitBrainStats,
    /// Topology-aware accounting for multi-hop runs; `None` for
    /// single-channel runs (and skipped from serialization so existing
    /// fixtures and cached results are unaffected).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub multihop: Option<MultihopReport>,
    /// Channel statistics over the whole run (`counts.jammed` includes
    /// noise-corrupted slots — they are indistinguishable on the air).
    pub counts: StateCounts,
    /// Slots corrupted by environmental noise (see
    /// `SimConfig::noise_prob`); subset of `counts.jammed`.
    pub noise_slots: u64,
    /// Energy accounting.
    pub energy: EnergyStats,
    /// Fraction of the adversary's jamming allowance actually spent over
    /// the run (`total jams / ⌊(1−ε)·max(slots, T)⌋`). Telemetry-only:
    /// excluded from serialization so cached results and golden fixtures
    /// are unaffected; consumed by `jle_telemetry` gauges.
    #[serde(skip)]
    pub adv_budget_spent: f64,
    /// Full trace if requested.
    #[serde(skip)]
    pub trace: Option<Trace>,
}

impl RunReport {
    /// Whether a leader was successfully determined.
    ///
    /// * Under `FirstCleanSingle`: the first clean Single identifies the
    ///   leader (strong-CD semantics / selection resolution).
    /// * Under `AllTerminated`: exactly one station holds `Leader`.
    pub fn leader_elected(&self) -> bool {
        if self.timed_out {
            return false;
        }
        if self.all_terminated || !self.leaders.is_empty() {
            return self.leaders.len() == 1;
        }
        self.resolved_at.is_some()
    }

    /// Classify the run into the degradation taxonomy.
    ///
    /// Precedence: a validity violation (`MultiLeader`) dominates, then
    /// liveness-after-election failure (`LeaderCrashed`), then success,
    /// then the budget-exhaustion/no-result split.
    ///
    /// Leadership-tracked (open-world) runs are judged by the ledger
    /// instead: the terminal-status fields never settle in a run that is
    /// designed to keep going, so the set of live believers at the end is
    /// the verdict — split, converged, or leaderless.
    pub fn outcome(&self) -> Outcome {
        if self.leaders.len() > 1 {
            return Outcome::MultiLeader;
        }
        if self.split_brain.tracked {
            return match self.split_brain.believers.len() {
                0 if self.leader_crashed => Outcome::LeaderCrashed,
                0 => Outcome::NoLeader,
                1 => Outcome::Elected,
                _ => Outcome::SplitBrain,
            };
        }
        if self.leader_crashed {
            return Outcome::LeaderCrashed;
        }
        if self.leader_elected() {
            return Outcome::Elected;
        }
        if self.cap_hit {
            return Outcome::DeadlineExceeded;
        }
        Outcome::NoLeader
    }

    /// Fraction of slots the adversary jammed.
    pub fn jam_fraction(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.counts.jammed as f64 / self.slots as f64
        }
    }

    /// Mean transmissions per station (energy normalized by `n`).
    pub fn tx_per_station(&self, n: u64) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.energy.transmissions as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leader_elected_rules() {
        let mut r = RunReport::default();
        assert!(!r.leader_elected());
        r.resolved_at = Some(10);
        assert!(r.leader_elected());
        r.timed_out = true;
        assert!(!r.leader_elected());
        r.timed_out = false;
        r.all_terminated = true;
        assert!(!r.leader_elected(), "all terminated but no leader");
        r.leaders = vec![3];
        assert!(r.leader_elected());
        r.leaders = vec![3, 5];
        assert!(!r.leader_elected(), "two leaders is a correctness failure");
    }

    #[test]
    fn fractions() {
        let mut r = RunReport { slots: 100, ..Default::default() };
        r.counts.jammed = 25;
        assert!((r.jam_fraction() - 0.25).abs() < 1e-12);
        r.energy.transmissions = 50;
        assert!((r.tx_per_station(10) - 5.0).abs() < 1e-12);
        assert_eq!(RunReport::default().jam_fraction(), 0.0);
        assert_eq!(r.tx_per_station(0), 0.0);
    }

    #[test]
    fn energy_total() {
        let e = EnergyStats { transmissions: 3, listens: 7 };
        assert_eq!(e.total(), 10);
    }

    #[test]
    fn outcome_taxonomy_precedence() {
        let mut r = RunReport::default();
        assert_eq!(r.outcome(), Outcome::NoLeader);
        r.cap_hit = true;
        r.timed_out = true;
        assert_eq!(r.outcome(), Outcome::DeadlineExceeded);
        r.timed_out = false;
        r.cap_hit = false;
        r.resolved_at = Some(10);
        assert_eq!(r.outcome(), Outcome::Elected);
        r.leader_crashed = true;
        assert_eq!(r.outcome(), Outcome::LeaderCrashed, "a dead leader is not a success");
        r.leaders = vec![1, 2];
        assert_eq!(r.outcome(), Outcome::MultiLeader, "validity violation dominates");
    }

    #[test]
    fn cap_hit_never_counts_as_elected() {
        // The satellite regression: a run that exhausted max_slots must
        // never be aggregated as a successful election, whatever partial
        // progress it recorded.
        let mut r = RunReport { slots: 1000, timed_out: true, cap_hit: true, ..Default::default() };
        assert!(!r.leader_elected());
        assert_eq!(r.outcome(), Outcome::DeadlineExceeded);
        // Even a recorded resolution slot does not rescue a timed-out run
        // (AllTerminated runs can resolve yet fail to terminate).
        r.resolved_at = Some(500);
        assert!(!r.leader_elected());
        assert_ne!(r.outcome(), Outcome::Elected);
    }

    #[test]
    fn outcome_labels_cover_all() {
        let labels: Vec<&str> = Outcome::ALL.iter().map(|o| o.label()).collect();
        assert_eq!(labels.len(), 6);
        assert!(labels.contains(&"deadline"));
        assert!(labels.contains(&"split-brain"));
    }

    #[test]
    fn tracked_runs_are_judged_by_the_ledger() {
        // An open-world (Horizon) run: no terminal statuses, a resolution
        // slot from some election along the way.
        let mut r = RunReport { resolved_at: Some(10), ..Default::default() };
        r.split_brain.tracked = true;
        assert_eq!(r.outcome(), Outcome::NoLeader, "nobody believes: leaderless");
        r.split_brain.believers = vec![4];
        assert_eq!(r.outcome(), Outcome::Elected);
        assert!(r.split_brain.converged());
        r.split_brain.believers = vec![4, 9];
        assert_eq!(r.outcome(), Outcome::SplitBrain);
        assert!(r.split_brain.split_at_end());
        // The original winner having churned out does not matter once the
        // cohort converged on a (possibly different) believer.
        r.split_brain.believers = vec![9];
        r.leader_crashed = true;
        assert_eq!(r.outcome(), Outcome::Elected);
        r.split_brain.believers = vec![];
        assert_eq!(r.outcome(), Outcome::LeaderCrashed);
        // A terminal-status validity violation still dominates.
        r.leaders = vec![1, 2];
        assert_eq!(r.outcome(), Outcome::MultiLeader);
    }
}
