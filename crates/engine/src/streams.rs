//! Counter-based per-station random streams for the fast exact backend.
//!
//! The legacy exact backend draws every station's randomness from **one**
//! sequential `SmallRng`, in station-index order — correct, but it welds
//! the draw order to the iteration order: skip a sleeping station and
//! every later draw shifts. [`StationRng`] removes that coupling by
//! deriving each draw as a pure function of its *coordinates*:
//!
//! ```text
//!     draw = mix(slot_state(run_key(seed, station), slot) + f(draw_index))
//! ```
//!
//! where `mix` is the SplitMix64 finalizer (the same one `rand`'s
//! `seed_from_u64` and the fault-plan generators use). Station `i`'s
//! draws in slot `t` are therefore identical no matter which other
//! stations act, in what order, or on which thread — the property the
//! active-set slot loop and its sharded action phase are built on (see
//! DESIGN.md §12).
//!
//! # The fast-backend draw contract
//!
//! * Every `(seed, station, slot, draw_index)` tuple yields one fixed
//!   64-bit value; the `draw_index` advances once per `next_u64`
//!   (`next_u32` and `gen_bool` consume exactly one).
//! * Streams for different stations, different slots, and different run
//!   seeds are mutually independent by construction (three rounds of
//!   SplitMix64 finalization between the key material and the output).
//! * The values are **intentionally unrelated** to the legacy backend's
//!   sequential stream: `FastExactStations` is locked by its *own*
//!   golden fixtures, and cross-backend agreement is statistical, not
//!   bit-level.

use rand::RngCore;

/// SplitMix64 finalizer: a bijective avalanche mix on `u64`.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The golden-ratio increment SplitMix64 walks its state by.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Domain tags keeping the station/slot key material disjoint from every
/// other derived stream in the workspace (adversary stream, fault-plan
/// generators).
const STATION_TAG: u64 = 0x5741_4B45_5354_4154; // "WAKESTAT"
const SLOT_TAG: u64 = 0x534C_4F54_5354_524D; // "SLOTSTRM"

/// Per-run, per-station stream key. Compute once per station and reuse
/// across slots ([`FastExactStations`](crate::fast::FastExactStations)
/// caches one per station).
#[inline]
pub fn station_key(run_seed: u64, station: u64) -> u64 {
    mix64(run_seed ^ mix64(station.wrapping_mul(GOLDEN) ^ STATION_TAG))
}

/// Premixed slot key material: `mix64(slot·GOLDEN ^ SLOT_TAG)`, the part
/// of [`StationRng::for_slot`] that depends only on the slot. The batch
/// backend computes it once per slot and reuses it across every
/// `(station, trial)` stream of that slot via
/// [`StationRng::with_slot_material`].
#[inline]
pub fn slot_material(slot: u64) -> u64 {
    mix64(slot.wrapping_mul(GOLDEN) ^ SLOT_TAG)
}

/// Batch-width draw derivation: `out[k]` receives draw `draw_index` of
/// the stream `(seeds[k], station, slot)` — bit-identical to advancing an
/// independent [`StationRng::new`] per seed, but with the `mix64` key
/// material shared across the batch (`station` and `slot` mixes plus the
/// counter offset) hoisted out of the loop, so a 64-trial block costs two
/// mixes per trial instead of four.
///
/// # Panics
/// Panics if `out` is shorter than `seeds`.
pub fn fill_block(seeds: &[u64], station: u64, slot: u64, draw_index: u64, out: &mut [u64]) {
    assert!(out.len() >= seeds.len(), "output block shorter than the seed batch");
    let station_mat = mix64(station.wrapping_mul(GOLDEN) ^ STATION_TAG);
    let slot_mat = slot_material(slot);
    let ctr_mat = draw_index.wrapping_mul(GOLDEN);
    for (o, &seed) in out.iter_mut().zip(seeds.iter()) {
        let key = mix64(seed ^ station_mat);
        let state = mix64(key ^ slot_mat);
        *o = mix64(state.wrapping_add(ctr_mat));
    }
}

/// A counter-based generator over one station's draws in one slot.
///
/// Implements [`RngCore`], so it slots into
/// [`Protocol::act`](crate::Protocol::act) unchanged: the fast backend
/// hands each station a fresh `StationRng` per slot instead of the shared
/// sequential engine stream.
#[derive(Debug, Clone)]
pub struct StationRng {
    state: u64,
    ctr: u64,
}

impl StationRng {
    /// The stream for `(key, slot)` where `key` came from
    /// [`station_key`]. `draw_index` starts at 0.
    #[inline]
    pub fn for_slot(key: u64, slot: u64) -> Self {
        StationRng { state: mix64(key ^ mix64(slot.wrapping_mul(GOLDEN) ^ SLOT_TAG)), ctr: 0 }
    }

    /// Like [`StationRng::for_slot`], with the slot's key material
    /// already mixed ([`slot_material`]) — the batch backend hoists that
    /// mix out of its per-station loop since one slot serves every
    /// `(station, trial)` stream.
    #[inline]
    pub fn with_slot_material(key: u64, slot_mat: u64) -> Self {
        StationRng { state: mix64(key ^ slot_mat), ctr: 0 }
    }

    /// Convenience: derive the key and position in one call.
    #[inline]
    pub fn new(run_seed: u64, station: u64, slot: u64) -> Self {
        Self::for_slot(station_key(run_seed, station), slot)
    }

    /// How many 64-bit draws have been consumed.
    #[inline]
    pub fn draws(&self) -> u64 {
        self.ctr
    }
}

impl RngCore for StationRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let v = mix64(self.state.wrapping_add(self.ctr.wrapping_mul(GOLDEN)));
        self.ctr += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn pure_function_of_coordinates() {
        let a: Vec<u64> = (0..8).map(|i| StationRng::new(7, 3, 5).nth(i)).collect();
        let b: Vec<u64> = {
            let mut r = StationRng::new(7, 3, 5);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b, "draw k is independent of how the stream was advanced");
    }

    impl StationRng {
        fn nth(&mut self, k: u64) -> u64 {
            for _ in 0..k {
                self.next_u64();
            }
            self.next_u64()
        }
    }

    #[test]
    fn coordinates_decorrelate() {
        let base: Vec<u64> = {
            let mut r = StationRng::new(1, 2, 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        for (seed, station, slot) in [(2, 2, 3), (1, 3, 3), (1, 2, 4)] {
            let mut r = StationRng::new(seed, station, slot);
            let other: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
            assert_ne!(base, other, "({seed},{station},{slot}) must differ from (1,2,3)");
        }
    }

    #[test]
    fn gen_bool_consumes_one_draw_and_tracks_rate() {
        let mut hits = 0u32;
        for station in 0..10_000u64 {
            let mut r = StationRng::new(99, station, 0);
            if r.gen_bool(0.25) {
                hits += 1;
            }
            assert_eq!(r.draws(), 1);
        }
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn uniform_across_slots_for_one_station() {
        // One station's first draw across many slots behaves uniformly.
        let key = station_key(5, 17);
        let mean: f64 = (0..10_000u64)
            .map(|slot| {
                let mut r = StationRng::for_slot(key, slot);
                (r.next_u64() >> 11) as f64 / (1u64 << 53) as f64
            })
            .sum::<f64>()
            / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut r = StationRng::new(4, 4, 4);
        let dynr: &mut dyn RngCore = &mut r;
        let hits = (0..1000).filter(|_| dynr.gen_bool(0.5)).count();
        assert!((400..600).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_block_matches_64_independent_station_rngs() {
        // The batch helper must be a pure re-bracketing of the scalar
        // derivation: same bits as 64 independent `StationRng::new`
        // streams advanced to the same draw index.
        let seeds: Vec<u64> = (0..64u64).map(|k| mix64(k ^ 0xDEAD_BEEF)).collect();
        for (station, slot, draw_index) in [(0u64, 0u64, 0u64), (3, 17, 0), (11, 2, 5), (7, 9, 1)] {
            let mut block = vec![0u64; seeds.len()];
            fill_block(&seeds, station, slot, draw_index, &mut block);
            for (k, &seed) in seeds.iter().enumerate() {
                let mut r = StationRng::new(seed, station, slot);
                for _ in 0..draw_index {
                    r.next_u64();
                }
                assert_eq!(
                    block[k],
                    r.next_u64(),
                    "trial {k} at (station {station}, slot {slot}, draw {draw_index})"
                );
            }
        }
    }

    #[test]
    fn with_slot_material_equals_for_slot() {
        for (seed, station, slot) in [(1u64, 2u64, 3u64), (9, 0, 0), (42, 63, 1_000_000)] {
            let key = station_key(seed, station);
            let mut a = StationRng::for_slot(key, slot);
            let mut b = StationRng::with_slot_material(key, slot_material(slot));
            for _ in 0..4 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    #[test]
    fn mix64_is_bijective_on_samples() {
        // Spot-check injectivity over a structured sample set.
        let mut seen: Vec<u64> = (0..10_000u64).map(mix64).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 10_000);
    }
}
