//! Rayon-parallel Monte-Carlo runner.
//!
//! Every "with high probability" statement in the paper is validated by
//! repetition: [`MonteCarlo`] runs a seeded closure over a trial range in
//! parallel and hands the per-trial results to `jle-analysis`. Trials are
//! seeded deterministically (`base_seed + trial_index`) so every
//! experiment in `EXPERIMENTS.md` is exactly reproducible regardless of
//! the thread schedule.

use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The result of one trial under [`MonteCarlo::run_caught`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrialOutcome<R> {
    /// The trial completed normally.
    Ok(R),
    /// The trial panicked; the payload is rendered to a string. The panic
    /// was caught *inside* the trial closure, so the rest of the sweep is
    /// unaffected.
    Panicked(String),
}

impl<R> TrialOutcome<R> {
    /// The result, if the trial completed.
    pub fn ok(self) -> Option<R> {
        match self {
            TrialOutcome::Ok(r) => Some(r),
            TrialOutcome::Panicked(_) => None,
        }
    }

    /// A reference to the result, if the trial completed.
    pub fn as_ok(&self) -> Option<&R> {
        match self {
            TrialOutcome::Ok(r) => Some(r),
            TrialOutcome::Panicked(_) => None,
        }
    }

    /// Whether the trial panicked.
    pub fn is_panicked(&self) -> bool {
        matches!(self, TrialOutcome::Panicked(_))
    }

    /// The panic message, if the trial panicked.
    pub fn panic_message(&self) -> Option<&str> {
        match self {
            TrialOutcome::Ok(_) => None,
            TrialOutcome::Panicked(m) => Some(m),
        }
    }
}

/// Number of panicked trials in a [`MonteCarlo::run_caught`] result.
pub fn panic_count<R>(outcomes: &[TrialOutcome<R>]) -> u64 {
    outcomes.iter().filter(|o| o.is_panicked()).count() as u64
}

fn panic_payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A deterministic, parallel Monte-Carlo driver.
///
/// # Examples
///
/// ```
/// use jle_engine::MonteCarlo;
///
/// let mc = MonteCarlo::new(100, 7);
/// // Results come back in trial order regardless of thread scheduling.
/// let doubled = mc.run(|seed| seed * 2);
/// assert_eq!(doubled[0], 14);
/// assert_eq!(mc.success_rate(|seed| seed % 2 == 0), 0.5);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    /// Number of independent trials.
    pub trials: u64,
    /// Seed of trial 0; trial `i` uses `base_seed + i`.
    pub base_seed: u64,
}

impl MonteCarlo {
    /// Create a driver.
    pub fn new(trials: u64, base_seed: u64) -> Self {
        MonteCarlo { trials, base_seed }
    }

    /// Run `f(seed)` for every trial in parallel; results are returned in
    /// trial order.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(u64) -> R + Sync,
    {
        (0..self.trials).into_par_iter().map(|i| f(self.base_seed + i)).collect()
    }

    /// Like [`MonteCarlo::run`], but a panicking trial is isolated: the
    /// panic is caught inside the per-trial closure (before it can reach
    /// a worker-thread join) and recorded as [`TrialOutcome::Panicked`],
    /// so one poisoned seed cannot take down a million-trial sweep.
    ///
    /// The standard panic hook still runs (expect one stderr line per
    /// caught panic); results stay in trial order.
    pub fn run_caught<R, F>(&self, f: F) -> Vec<TrialOutcome<R>>
    where
        R: Send,
        F: Fn(u64) -> R + Sync,
    {
        self.run(|seed| match catch_unwind(AssertUnwindSafe(|| f(seed))) {
            Ok(r) => TrialOutcome::Ok(r),
            Err(payload) => TrialOutcome::Panicked(panic_payload_message(payload)),
        })
    }

    /// Run and keep only a projected scalar per trial.
    pub fn collect_f64<F>(&self, f: F) -> Vec<f64>
    where
        F: Fn(u64) -> f64 + Sync,
    {
        self.run(f)
    }

    /// Fraction of trials for which the predicate holds.
    pub fn success_rate<F>(&self, f: F) -> f64
    where
        F: Fn(u64) -> bool + Sync,
    {
        if self.trials == 0 {
            return 0.0;
        }
        let ok: u64 = self.run(|s| f(s) as u64).into_iter().sum();
        ok as f64 / self.trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    #[test]
    fn results_in_trial_order_and_deterministic() {
        let mc = MonteCarlo::new(64, 100);
        let a = mc.run(|seed| seed * 2);
        let b = mc.run(|seed| seed * 2);
        assert_eq!(a, b);
        assert_eq!(a[0], 200);
        assert_eq!(a[63], (100 + 63) * 2);
    }

    #[test]
    fn success_rate_counts() {
        let mc = MonteCarlo::new(100, 0);
        let rate = mc.success_rate(|seed| seed % 4 == 0);
        assert!((rate - 0.25).abs() < 1e-12);
        assert_eq!(MonteCarlo::new(0, 0).success_rate(|_| true), 0.0);
    }

    #[test]
    fn panicking_trial_is_isolated() {
        // A deliberately panicking trial closure: the sweep must complete,
        // the panic must be counted, and every other trial must succeed.
        let mc = MonteCarlo::new(32, 0);
        let outcomes = mc.run_caught(|seed| {
            assert!(seed != 13, "poisoned seed");
            seed * 3
        });
        assert_eq!(outcomes.len(), 32);
        assert_eq!(panic_count(&outcomes), 1);
        assert!(outcomes[13].is_panicked());
        assert!(outcomes[13].panic_message().unwrap().contains("poisoned seed"));
        assert_eq!(outcomes[12].as_ok(), Some(&36));
        let ok: Vec<u64> = outcomes.into_iter().filter_map(TrialOutcome::ok).collect();
        assert_eq!(ok.len(), 31);
    }

    #[test]
    fn run_caught_without_panics_matches_run() {
        let mc = MonteCarlo::new(16, 5);
        let plain = mc.run(|s| s + 1);
        let caught: Vec<u64> =
            mc.run_caught(|s| s + 1).into_iter().filter_map(TrialOutcome::ok).collect();
        assert_eq!(plain, caught);
    }

    #[test]
    fn non_string_payloads_are_rendered() {
        let mc = MonteCarlo::new(1, 0);
        let outcomes = mc.run_caught(|_| -> u64 { std::panic::panic_any(42i32) });
        assert_eq!(outcomes[0].panic_message(), Some("<non-string panic payload>"));
    }

    #[test]
    fn parallel_rng_streams_are_independent() {
        let mc = MonteCarlo::new(256, 7);
        let xs = mc.collect_f64(|seed| SmallRng::seed_from_u64(seed).gen::<f64>());
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.08, "mean {mean}");
        // No two adjacent seeds collide.
        assert!(xs.windows(2).all(|w| w[0] != w[1]));
    }
}
