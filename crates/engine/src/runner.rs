//! Rayon-parallel Monte-Carlo runner.
//!
//! Every "with high probability" statement in the paper is validated by
//! repetition: [`MonteCarlo`] runs a seeded closure over a trial range in
//! parallel and hands the per-trial results to `jle-analysis`. Trials are
//! seeded deterministically (`base_seed + trial_index`) so every
//! experiment in `EXPERIMENTS.md` is exactly reproducible regardless of
//! the thread schedule.

use rayon::prelude::*;

/// A deterministic, parallel Monte-Carlo driver.
///
/// # Examples
///
/// ```
/// use jle_engine::MonteCarlo;
///
/// let mc = MonteCarlo::new(100, 7);
/// // Results come back in trial order regardless of thread scheduling.
/// let doubled = mc.run(|seed| seed * 2);
/// assert_eq!(doubled[0], 14);
/// assert_eq!(mc.success_rate(|seed| seed % 2 == 0), 0.5);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    /// Number of independent trials.
    pub trials: u64,
    /// Seed of trial 0; trial `i` uses `base_seed + i`.
    pub base_seed: u64,
}

impl MonteCarlo {
    /// Create a driver.
    pub fn new(trials: u64, base_seed: u64) -> Self {
        MonteCarlo { trials, base_seed }
    }

    /// Run `f(seed)` for every trial in parallel; results are returned in
    /// trial order.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(u64) -> R + Sync,
    {
        (0..self.trials)
            .into_par_iter()
            .map(|i| f(self.base_seed + i))
            .collect()
    }

    /// Run and keep only a projected scalar per trial.
    pub fn collect_f64<F>(&self, f: F) -> Vec<f64>
    where
        F: Fn(u64) -> f64 + Sync,
    {
        self.run(f)
    }

    /// Fraction of trials for which the predicate holds.
    pub fn success_rate<F>(&self, f: F) -> f64
    where
        F: Fn(u64) -> bool + Sync,
    {
        if self.trials == 0 {
            return 0.0;
        }
        let ok: u64 = self.run(|s| f(s) as u64).into_iter().sum();
        ok as f64 / self.trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    #[test]
    fn results_in_trial_order_and_deterministic() {
        let mc = MonteCarlo::new(64, 100);
        let a = mc.run(|seed| seed * 2);
        let b = mc.run(|seed| seed * 2);
        assert_eq!(a, b);
        assert_eq!(a[0], 200);
        assert_eq!(a[63], (100 + 63) * 2);
    }

    #[test]
    fn success_rate_counts() {
        let mc = MonteCarlo::new(100, 0);
        let rate = mc.success_rate(|seed| seed % 4 == 0);
        assert!((rate - 0.25).abs() < 1e-12);
        assert_eq!(MonteCarlo::new(0, 0).success_rate(|_| true), 0.0);
    }

    #[test]
    fn parallel_rng_streams_are_independent() {
        let mc = MonteCarlo::new(256, 7);
        let xs = mc.collect_f64(|seed| SmallRng::seed_from_u64(seed).gen::<f64>());
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.08, "mean {mean}");
        // No two adjacent seeds collide.
        assert!(xs.windows(2).all(|w| w[0] != w[1]));
    }
}
