//! Rayon-parallel Monte-Carlo runner.
//!
//! Every "with high probability" statement in the paper is validated by
//! repetition: [`MonteCarlo`] runs a seeded closure over a trial range in
//! parallel and hands the per-trial results to `jle-analysis`. Trials are
//! seeded deterministically (`base_seed + trial_index`) so every
//! experiment in `EXPERIMENTS.md` is exactly reproducible regardless of
//! the thread schedule.

use rayon::prelude::*;
use serde::{value::Error, Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, OnceLock};

/// Process-wide cache of explicitly sized worker pools, one per width.
///
/// Building a rayon pool is not free (under real rayon it spawns OS
/// threads), and [`MonteCarlo::run`] used to rebuild one on *every* call
/// when `jobs` was set — pure overhead for orchestrator shards that run
/// thousands of small sweeps at a fixed width. Pools carry no
/// sweep-specific state, so one per width can serve the whole process;
/// they are leaked intentionally (a handful of widths over a process
/// lifetime, reclaimed at exit).
fn sized_pool(jobs: usize) -> &'static rayon::ThreadPool {
    static POOLS: OnceLock<Mutex<HashMap<usize, &'static rayon::ThreadPool>>> = OnceLock::new();
    let mut pools =
        POOLS.get_or_init(|| Mutex::new(HashMap::new())).lock().expect("pool cache poisoned");
    pools.entry(jobs).or_insert_with(|| {
        Box::leak(Box::new(
            rayon::ThreadPoolBuilder::new().num_threads(jobs).build().expect("sized thread pool"),
        ))
    })
}

/// The result of one trial under [`MonteCarlo::run_caught`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrialOutcome<R> {
    /// The trial completed normally.
    Ok(R),
    /// The trial panicked; the payload is rendered to a string. The panic
    /// was caught *inside* the trial closure, so the rest of the sweep is
    /// unaffected.
    Panicked(String),
}

impl<R> TrialOutcome<R> {
    /// The result, if the trial completed.
    pub fn ok(self) -> Option<R> {
        match self {
            TrialOutcome::Ok(r) => Some(r),
            TrialOutcome::Panicked(_) => None,
        }
    }

    /// A reference to the result, if the trial completed.
    pub fn as_ok(&self) -> Option<&R> {
        match self {
            TrialOutcome::Ok(r) => Some(r),
            TrialOutcome::Panicked(_) => None,
        }
    }

    /// Whether the trial panicked.
    pub fn is_panicked(&self) -> bool {
        matches!(self, TrialOutcome::Panicked(_))
    }

    /// The panic message, if the trial panicked.
    pub fn panic_message(&self) -> Option<&str> {
        match self {
            TrialOutcome::Ok(_) => None,
            TrialOutcome::Panicked(m) => Some(m),
        }
    }
}

// Externally-tagged representation ({"Ok": ...} / {"Panicked": "msg"}),
// written by hand because the vendored derive does not handle generics.
impl<R: Serialize> Serialize for TrialOutcome<R> {
    fn to_json_value(&self) -> Value {
        match self {
            TrialOutcome::Ok(r) => Value::Map(vec![("Ok".to_string(), r.to_json_value())]),
            TrialOutcome::Panicked(m) => {
                Value::Map(vec![("Panicked".to_string(), Value::Str(m.clone()))])
            }
        }
    }
}

impl<R: Deserialize> Deserialize for TrialOutcome<R> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        if let Some(inner) = v.get("Ok") {
            return R::from_json_value(inner).map(TrialOutcome::Ok);
        }
        if let Some(inner) = v.get("Panicked") {
            return match inner.as_str() {
                Some(m) => Ok(TrialOutcome::Panicked(m.to_string())),
                None => Err(Error::custom("TrialOutcome::Panicked payload must be a string")),
            };
        }
        Err(Error::custom(format!("expected TrialOutcome object, found {}", v.kind())))
    }
}

/// Number of panicked trials in a [`MonteCarlo::run_caught`] result.
pub fn panic_count<R>(outcomes: &[TrialOutcome<R>]) -> u64 {
    outcomes.iter().filter(|o| o.is_panicked()).count() as u64
}

/// Run one trial closure with panic isolation: a panic is caught and
/// rendered as [`TrialOutcome::Panicked`] instead of unwinding into the
/// caller. This is the single-trial building block under
/// [`MonteCarlo::run_caught`], exposed so schedulers that drive their own
/// trial loops get identical isolation semantics.
pub fn catch_trial<R>(f: impl FnOnce() -> R) -> TrialOutcome<R> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => TrialOutcome::Ok(r),
        Err(payload) => TrialOutcome::Panicked(panic_payload_message(payload)),
    }
}

fn panic_payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A deterministic, parallel Monte-Carlo driver.
///
/// # Examples
///
/// ```
/// use jle_engine::MonteCarlo;
///
/// let mc = MonteCarlo::new(100, 7);
/// // Results come back in trial order regardless of thread scheduling.
/// let doubled = mc.run(|seed| seed * 2);
/// assert_eq!(doubled[0], 14);
/// assert_eq!(mc.success_rate(|seed| seed % 2 == 0), 0.5);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    /// Number of independent trials.
    pub trials: u64,
    /// Seed of trial 0; trial `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Explicit worker-thread count; `None` uses all available
    /// parallelism. Set with [`MonteCarlo::with_jobs`].
    pub jobs: Option<usize>,
}

impl MonteCarlo {
    /// Create a driver.
    pub fn new(trials: u64, base_seed: u64) -> Self {
        MonteCarlo { trials, base_seed, jobs: None }
    }

    /// Run on an explicitly sized thread pool of `jobs` workers instead of
    /// the global default (`jobs = 0` restores the default). Trial order
    /// and seeding are unaffected — only the fan-out width changes.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = if jobs == 0 { None } else { Some(jobs) };
        self
    }

    /// The number of worker threads [`MonteCarlo::run`] will fan out to.
    pub fn effective_jobs(&self) -> usize {
        self.jobs.unwrap_or_else(rayon::current_num_threads).max(1)
    }

    /// Run `f(seed)` for every trial in parallel; results are returned in
    /// trial order.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(u64) -> R + Sync,
    {
        let body = || (0..self.trials).into_par_iter().map(|i| f(self.base_seed + i)).collect();
        match self.jobs {
            Some(j) => sized_pool(j).install(body),
            None => body(),
        }
    }

    /// Run trials in contiguous seed batches of `width`, in parallel over
    /// batches: `f` receives the seed slice of one batch and must return
    /// one result per seed, in seed order. Trial `i` still has seed
    /// `base_seed + i` and results come back in trial order, so a batch
    /// backend whose per-trial output is bit-identical to the per-trial
    /// engine (see [`crate::batch`]) is a drop-in replacement for
    /// [`MonteCarlo::run`] — same results, one slot-loop pass per batch
    /// instead of one per trial.
    ///
    /// # Panics
    /// Panics if `width` is zero or `f` returns a result count different
    /// from its seed count.
    pub fn run_batched<R, F>(&self, width: u64, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&[u64]) -> Vec<R> + Sync,
    {
        assert!(width > 0, "batch width must be positive");
        let batches = self.trials.div_ceil(width);
        let body = || {
            (0..batches)
                .into_par_iter()
                .map(|b| {
                    let start = self.base_seed + b * width;
                    let len = width.min(self.trials - b * width);
                    let seeds: Vec<u64> = (start..start + len).collect();
                    let out = f(&seeds);
                    assert_eq!(
                        out.len(),
                        seeds.len(),
                        "batch closure must return one result per seed"
                    );
                    out
                })
                .collect::<Vec<Vec<R>>>()
        };
        let nested = match self.jobs {
            Some(j) => sized_pool(j).install(body),
            None => body(),
        };
        nested.into_iter().flatten().collect()
    }

    /// Like [`MonteCarlo::run`], but a panicking trial is isolated: the
    /// panic is caught inside the per-trial closure (before it can reach
    /// a worker-thread join) and recorded as [`TrialOutcome::Panicked`],
    /// so one poisoned seed cannot take down a million-trial sweep.
    ///
    /// The standard panic hook still runs (expect one stderr line per
    /// caught panic); results stay in trial order.
    pub fn run_caught<R, F>(&self, f: F) -> Vec<TrialOutcome<R>>
    where
        R: Send,
        F: Fn(u64) -> R + Sync,
    {
        self.run(|seed| match catch_unwind(AssertUnwindSafe(|| f(seed))) {
            Ok(r) => TrialOutcome::Ok(r),
            Err(payload) => TrialOutcome::Panicked(panic_payload_message(payload)),
        })
    }

    /// Run and keep only a projected scalar per trial.
    pub fn collect_f64<F>(&self, f: F) -> Vec<f64>
    where
        F: Fn(u64) -> f64 + Sync,
    {
        self.run(f)
    }

    /// Fraction of trials for which the predicate holds.
    pub fn success_rate<F>(&self, f: F) -> f64
    where
        F: Fn(u64) -> bool + Sync,
    {
        if self.trials == 0 {
            return 0.0;
        }
        let ok: u64 = self.run(|s| f(s) as u64).into_iter().sum();
        ok as f64 / self.trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    #[test]
    fn results_in_trial_order_and_deterministic() {
        let mc = MonteCarlo::new(64, 100);
        let a = mc.run(|seed| seed * 2);
        let b = mc.run(|seed| seed * 2);
        assert_eq!(a, b);
        assert_eq!(a[0], 200);
        assert_eq!(a[63], (100 + 63) * 2);
    }

    #[test]
    fn run_batched_matches_run_in_trial_order() {
        let mc = MonteCarlo::new(100, 7);
        let per_trial = mc.run(|seed| seed.wrapping_mul(3));
        // 100 trials over width-32 batches: three full batches plus a
        // ragged tail of 4.
        let batched = mc.run_batched(32, |seeds| {
            assert!(seeds.len() == 32 || seeds.len() == 4, "ragged tail only");
            seeds.iter().map(|s| s.wrapping_mul(3)).collect()
        });
        assert_eq!(per_trial, batched);
        // Width larger than the sweep: one batch.
        let one = mc.run_batched(1000, |seeds| {
            assert_eq!(seeds.len(), 100);
            seeds.iter().map(|s| s.wrapping_mul(3)).collect()
        });
        assert_eq!(per_trial, one);
        assert!(MonteCarlo::new(0, 0).run_batched(8, |_| Vec::<u64>::new()).is_empty());
    }

    #[test]
    #[should_panic(expected = "one result per seed")]
    fn run_batched_rejects_miscounted_batches() {
        MonteCarlo::new(8, 0).run_batched(4, |_| vec![0u64; 3]);
    }

    #[test]
    fn success_rate_counts() {
        let mc = MonteCarlo::new(100, 0);
        let rate = mc.success_rate(|seed| seed % 4 == 0);
        assert!((rate - 0.25).abs() < 1e-12);
        assert_eq!(MonteCarlo::new(0, 0).success_rate(|_| true), 0.0);
    }

    #[test]
    fn panicking_trial_is_isolated() {
        // A deliberately panicking trial closure: the sweep must complete,
        // the panic must be counted, and every other trial must succeed.
        let mc = MonteCarlo::new(32, 0);
        let outcomes = mc.run_caught(|seed| {
            assert!(seed != 13, "poisoned seed");
            seed * 3
        });
        assert_eq!(outcomes.len(), 32);
        assert_eq!(panic_count(&outcomes), 1);
        assert!(outcomes[13].is_panicked());
        assert!(outcomes[13].panic_message().unwrap().contains("poisoned seed"));
        assert_eq!(outcomes[12].as_ok(), Some(&36));
        let ok: Vec<u64> = outcomes.into_iter().filter_map(TrialOutcome::ok).collect();
        assert_eq!(ok.len(), 31);
    }

    #[test]
    fn run_caught_without_panics_matches_run() {
        let mc = MonteCarlo::new(16, 5);
        let plain = mc.run(|s| s + 1);
        let caught: Vec<u64> =
            mc.run_caught(|s| s + 1).into_iter().filter_map(TrialOutcome::ok).collect();
        assert_eq!(plain, caught);
    }

    #[test]
    fn explicit_jobs_change_width_not_results() {
        let wide = MonteCarlo::new(128, 9);
        let narrow = MonteCarlo::new(128, 9).with_jobs(1);
        assert_eq!(narrow.effective_jobs(), 1);
        assert_eq!(MonteCarlo::new(1, 0).with_jobs(0).jobs, None);
        let a = wide.run(|seed| seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let b = narrow.run(|seed| seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        assert_eq!(a, b);
    }

    #[test]
    fn sized_pools_are_built_once_per_width() {
        let a = sized_pool(3);
        let b = sized_pool(3);
        assert!(std::ptr::eq(a, b), "same width must reuse the cached pool");
        assert_eq!(a.current_num_threads(), 3);
        let c = sized_pool(5);
        assert!(!std::ptr::eq(a, c), "distinct widths get distinct pools");
        assert_eq!(c.current_num_threads(), 5);
    }

    #[test]
    fn trial_outcome_serde_roundtrip() {
        use serde::{Deserialize, Serialize};
        let ok: TrialOutcome<u64> = TrialOutcome::Ok(17);
        let bad: TrialOutcome<u64> = TrialOutcome::Panicked("boom".into());
        for o in [ok, bad] {
            let v = o.to_json_value();
            assert_eq!(TrialOutcome::<u64>::from_json_value(&v).unwrap(), o);
        }
        assert!(TrialOutcome::<u64>::from_json_value(&serde::Value::Null).is_err());
    }

    #[test]
    fn catch_trial_matches_run_caught() {
        assert_eq!(catch_trial(|| 5u64), TrialOutcome::Ok(5));
        let p = catch_trial(|| -> u64 { panic!("kaboom") });
        assert_eq!(p.panic_message(), Some("kaboom"));
    }

    #[test]
    fn non_string_payloads_are_rendered() {
        let mc = MonteCarlo::new(1, 0);
        let outcomes = mc.run_caught(|_| -> u64 { std::panic::panic_any(42i32) });
        assert_eq!(outcomes[0].panic_message(), Some("<non-string panic payload>"));
    }

    #[test]
    fn parallel_rng_streams_are_independent() {
        let mc = MonteCarlo::new(256, 7);
        let xs = mc.collect_f64(|seed| SmallRng::seed_from_u64(seed).gen::<f64>());
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.08, "mean {mean}");
        // No two adjacent seeds collide.
        assert!(xs.windows(2).all(|w| w[0] != w[1]));
    }
}
