//! Station-side protocol interfaces.
//!
//! Two levels of abstraction:
//!
//! * [`Protocol`] — a fully general per-station state machine, driven by
//!   the exact simulator ([`crate::exact`]). Needed for protocols whose
//!   stations play *different roles* (the paper's `Notification`
//!   transformation, where the C1 winner diverges from the rest).
//! * [`UniformProtocol`] — the paper's *uniform algorithm* class
//!   (Section 1.1: "each station transmits with the same probability,
//!   … the probability may depend on the history of the channel").
//!   Because all stations share one state, the cohort simulator
//!   ([`crate::cohort`]) tracks a single copy and samples the number of
//!   transmitters binomially — O(1) work per slot regardless of `n`.
//!
//! Any `UniformProtocol` can be run per-station through the
//! [`PerStation`] adapter, which is how the exact engine cross-validates
//! the cohort engine (experiment E15).

use jle_radio::{ChannelState, Observation};
use rand::{Rng, RngCore};

/// What one station does in one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Transmit on the shared channel.
    Transmit,
    /// Sense (listen to) the channel.
    Listen,
    /// Power down for the slot: no transmission, no observation, no
    /// energy spent. The paper's model has every non-transmitter listen;
    /// `Sleep` exists for the energy-aware extension (E23, following the
    /// authors' energy-efficiency line of work, their ref [13]) and is
    /// only meaningful on the exact engine.
    Sleep,
}

/// Election status of one station.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Still participating.
    Running,
    /// Terminated knowing it is the leader.
    Leader,
    /// Terminated knowing it is not the leader.
    NonLeader,
}

impl Status {
    /// Whether the station has terminated.
    #[inline]
    pub fn terminal(self) -> bool {
        !matches!(self, Status::Running)
    }
}

/// A per-station protocol state machine.
///
/// The exact simulator calls [`Protocol::act`] for every running station,
/// resolves the slot, then calls [`Protocol::feedback`] with the
/// station-specific [`Observation`] (which already encodes the CD model:
/// a weak-CD transmitter receives [`Observation::TxAssumedCollision`]).
pub trait Protocol: Send {
    /// Decide the action for the slot about to be played.
    fn act(&mut self, slot: u64, rng: &mut dyn RngCore) -> Action;

    /// Receive the end-of-slot observation. `transmitted` repeats whether
    /// this station transmitted (it also follows from the observation
    /// under weak-CD, but not under strong-CD).
    fn feedback(&mut self, slot: u64, transmitted: bool, obs: Observation);

    /// Current election status.
    fn status(&self) -> Status;

    /// Whether the station finished its computation without terminating
    /// as `Leader`/`NonLeader` (e.g. an `Estimation` station that has its
    /// answer). Mirrors [`UniformProtocol::finished`]: the exact engine
    /// stops once some station reports `finished()` and every station is
    /// either terminal or finished. Defaults to `false`, which preserves
    /// run-to-the-cap behavior for election protocols.
    fn finished(&self) -> bool {
        false
    }

    /// Optional protocol-internal scalar (LESK's estimate `u`) for
    /// trajectory traces.
    fn estimate(&self) -> Option<f64> {
        None
    }

    /// Current protocol-internal state as a `(label, scalar)` pair for
    /// replay timelines ([`crate::StateProbe`]): a static state label of
    /// the protocol's choosing plus an optional scalar (LESK returns its
    /// estimate `u`, a lease protocol its epoch). Sampled after feedback,
    /// only when an observer opted in via
    /// [`crate::SlotObserver::wants_probes`] — the default path costs
    /// nothing. Must not mutate state or draw randomness.
    fn state_probe(&self) -> Option<(&'static str, Option<f64>)> {
        None
    }

    /// Wake hint for the active-set backend: the next slot this station
    /// wants [`Protocol::act`] called, given that it just returned
    /// [`Action::Sleep`] for `slot`. Only consulted by
    /// [`crate::FastExactStations`]; the legacy exact backend calls `act`
    /// every slot regardless.
    ///
    /// The default (`slot + 1`, wake every slot) is always correct.
    /// Implementations returning a later slot `w` promise that for every
    /// slot `t` in `(slot, w)` the station would have returned
    /// [`Action::Sleep`] *without consuming randomness and without
    /// changing state* — i.e. skipping those `act` calls is unobservable.
    /// Return [`u64::MAX`] for "never again" (a permanently withdrawn
    /// station). Violating the promise skews simulation results (the
    /// station misses slots it would have played) but is memory-safe.
    fn wake_hint(&self, slot: u64) -> u64 {
        slot + 1
    }

    /// Restore this station *in place* to the initial state it was
    /// constructed with, returning `true` on success. [`crate::SimArena`]
    /// uses this to recycle station boxes across runs instead of
    /// re-allocating `n` of them per trial: a run via
    /// [`crate::run_exact_in`] reuses the previous run's stations only
    /// when **every** one of them resets successfully, and rebuilds the
    /// whole set from the factory otherwise.
    ///
    /// The default is `false` (never recycled), which is always correct.
    /// Implementations returning `true` must erase *all* run state —
    /// after `reset()`, the station must behave bit-for-bit like a
    /// freshly constructed one. Because a recycled box resurrects its
    /// *own* construction-time parameters, an arena must only be shared
    /// across runs whose factories build equivalently-initialized
    /// stations.
    fn reset(&mut self) -> bool {
        false
    }
}

/// Boxed protocols are protocols: forwarding impl so generic station
/// containers (`BatchExactStations<P>`) can be instantiated with
/// `P = Box<dyn Protocol>` — the boxed-factory shims reuse the same
/// generic slot loop the monomorphized bench path compiles down from.
impl<P: Protocol + ?Sized> Protocol for Box<P> {
    fn act(&mut self, slot: u64, rng: &mut dyn RngCore) -> Action {
        (**self).act(slot, rng)
    }

    fn feedback(&mut self, slot: u64, transmitted: bool, obs: Observation) {
        (**self).feedback(slot, transmitted, obs)
    }

    fn status(&self) -> Status {
        (**self).status()
    }

    fn finished(&self) -> bool {
        (**self).finished()
    }

    fn estimate(&self) -> Option<f64> {
        (**self).estimate()
    }

    fn state_probe(&self) -> Option<(&'static str, Option<f64>)> {
        (**self).state_probe()
    }

    fn wake_hint(&self, slot: u64) -> u64 {
        (**self).wake_hint(slot)
    }

    fn reset(&mut self) -> bool {
        (**self).reset()
    }
}

/// A uniform protocol: one shared state, one transmission probability per
/// slot, identical updates at every station.
///
/// The state update receives the *listener-observed* channel state. This
/// is faithful for every CD model the engine runs it under:
///
/// * strong-CD — everyone sees the true state anyway;
/// * weak-CD — a transmitter assumes `Collision`; in any slot with a
///   transmitter the true listener state is `Single` or `Collision`, and
///   the cohort engine stops at the first clean `Single`, so in every
///   *continuing* slot the transmitter's assumed `Collision` equals the
///   listeners' observation and the cohort stays lockstep;
/// * no-CD — the engine collapses `Null` to `Collision` before calling
///   [`UniformProtocol::on_state`] (listeners cannot tell them apart).
pub trait UniformProtocol: Send {
    /// Per-member transmission probability for the coming slot, in `[0,1]`.
    fn tx_prob(&mut self, slot: u64) -> f64;

    /// Shared state update with the (listener-view) channel state of the
    /// slot just played. Not called for the run-ending clean `Single`.
    fn on_state(&mut self, slot: u64, state: ChannelState);

    /// Whether the protocol has given up / finished without a `Single`
    /// (e.g. `Estimation` returning its round). The engine stops when
    /// this turns `true`.
    fn finished(&self) -> bool {
        false
    }

    /// Optional protocol-internal scalar (LESK's `u`) for traces.
    fn estimate(&self) -> Option<f64> {
        None
    }

    /// Current state as a `(label, scalar)` pair for replay timelines;
    /// mirrors [`Protocol::state_probe`] (which [`PerStation`] forwards
    /// here while the station is running).
    fn state_probe(&self) -> Option<(&'static str, Option<f64>)> {
        None
    }

    /// Restore the shared state to its construction-time initial value,
    /// returning `true` on success. Mirrors [`Protocol::reset`] (which
    /// [`PerStation`] forwards here): it lets [`crate::SimArena`] recycle
    /// per-station boxes across exact-engine runs. Default `false`.
    fn reset(&mut self) -> bool {
        false
    }
}

/// Adapter running one private copy of a [`UniformProtocol`] as a
/// per-station [`Protocol`].
///
/// Termination semantics follow the paper's selection-resolution reading:
/// on hearing a clean `Single` a listener knows the election resolved and
/// becomes [`Status::NonLeader`]; a transmitter that *observes its own*
/// `Single` (strong-CD) becomes [`Status::Leader`]. A weak-CD transmitter
/// learns nothing and keeps running — exactly the gap `Notification`
/// closes.
#[derive(Debug, Clone)]
pub struct PerStation<U> {
    inner: U,
    status: Status,
}

impl<U: UniformProtocol> PerStation<U> {
    /// Wrap a uniform protocol state.
    pub fn new(inner: U) -> Self {
        PerStation { inner, status: Status::Running }
    }

    /// Access the wrapped protocol.
    pub fn inner(&self) -> &U {
        &self.inner
    }
}

impl<U: UniformProtocol + Send> Protocol for PerStation<U> {
    fn act(&mut self, slot: u64, rng: &mut dyn RngCore) -> Action {
        let p = self.inner.tx_prob(slot).clamp(0.0, 1.0);
        if p > 0.0 && rng.gen_bool(p) {
            Action::Transmit
        } else {
            Action::Listen
        }
    }

    fn feedback(&mut self, slot: u64, transmitted: bool, obs: Observation) {
        match obs {
            Observation::State(ChannelState::Single) => {
                if transmitted {
                    // Strong-CD: the transmitter sees its own Single.
                    self.status = Status::Leader;
                } else {
                    self.status = Status::NonLeader;
                }
            }
            Observation::State(state) => self.inner.on_state(slot, state),
            Observation::NoCd(nocd) => {
                if obs.heard_single() {
                    self.status = Status::NonLeader;
                } else {
                    let _ = nocd;
                    self.inner.on_state(slot, ChannelState::Collision);
                }
            }
            Observation::TxAssumedCollision => self.inner.on_state(slot, ChannelState::Collision),
        }
    }

    fn status(&self) -> Status {
        self.status
    }

    fn finished(&self) -> bool {
        self.inner.finished()
    }

    fn estimate(&self) -> Option<f64> {
        self.inner.estimate()
    }

    fn state_probe(&self) -> Option<(&'static str, Option<f64>)> {
        // A terminated station's state is its verdict; while running the
        // wrapped uniform protocol speaks for itself.
        match self.status {
            Status::Leader => Some(("leader", None)),
            Status::NonLeader => Some(("non_leader", None)),
            Status::Running => self.inner.state_probe(),
        }
    }

    fn reset(&mut self) -> bool {
        if self.inner.reset() {
            self.status = Status::Running;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    /// Transmits with fixed probability, counts states.
    #[derive(Debug, Clone, Default)]
    struct FixedProb {
        p: f64,
        nulls: u32,
        collisions: u32,
    }

    impl UniformProtocol for FixedProb {
        fn tx_prob(&mut self, _: u64) -> f64 {
            self.p
        }
        fn on_state(&mut self, _: u64, state: ChannelState) {
            match state {
                ChannelState::Null => self.nulls += 1,
                ChannelState::Collision => self.collisions += 1,
                ChannelState::Single => unreachable!("engine handles Single"),
            }
        }
    }

    #[test]
    fn act_respects_probability_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut never = PerStation::new(FixedProb { p: 0.0, ..Default::default() });
        let mut always = PerStation::new(FixedProb { p: 1.0, ..Default::default() });
        for slot in 0..64 {
            assert_eq!(never.act(slot, &mut rng), Action::Listen);
            assert_eq!(always.act(slot, &mut rng), Action::Transmit);
        }
    }

    #[test]
    fn strong_cd_winner_becomes_leader() {
        let mut st = PerStation::new(FixedProb { p: 1.0, ..Default::default() });
        st.feedback(0, true, Observation::State(ChannelState::Single));
        assert_eq!(st.status(), Status::Leader);
    }

    #[test]
    fn listener_hearing_single_becomes_nonleader() {
        let mut st = PerStation::new(FixedProb { p: 0.0, ..Default::default() });
        st.feedback(0, false, Observation::State(ChannelState::Single));
        assert_eq!(st.status(), Status::NonLeader);
    }

    #[test]
    fn weak_cd_winner_keeps_running() {
        let mut st = PerStation::new(FixedProb { p: 1.0, ..Default::default() });
        st.feedback(0, true, Observation::TxAssumedCollision);
        assert_eq!(st.status(), Status::Running);
        assert_eq!(st.inner().collisions, 1, "assumed Collision must reach the state");
    }

    #[test]
    fn null_and_collision_reach_inner_state() {
        let mut st = PerStation::new(FixedProb { p: 0.5, ..Default::default() });
        st.feedback(0, false, Observation::State(ChannelState::Null));
        st.feedback(1, false, Observation::State(ChannelState::Collision));
        assert_eq!((st.inner().nulls, st.inner().collisions), (1, 1));
        assert_eq!(st.status(), Status::Running);
    }

    #[test]
    fn no_cd_null_collapses_to_collision() {
        use jle_radio::NoCdState;
        let mut st = PerStation::new(FixedProb { p: 0.5, ..Default::default() });
        st.feedback(0, false, Observation::NoCd(NoCdState::NoSingle));
        assert_eq!(st.inner().collisions, 1);
        st.feedback(1, false, Observation::NoCd(NoCdState::Single));
        assert_eq!(st.status(), Status::NonLeader);
    }

    #[test]
    fn status_terminal() {
        assert!(!Status::Running.terminal());
        assert!(Status::Leader.terminal());
        assert!(Status::NonLeader.terminal());
    }
}
