//! The cohort simulator: O(1) work per slot for uniform protocols.
//!
//! The paper's protocols are *uniform* (Section 1.1): every station
//! transmits with the same, history-determined probability. All stations
//! therefore share one state, and the number of transmitters in a slot is
//! `Binomial(n, p)` — the simulator tracks a single protocol copy and
//! samples the transmitter count directly, making per-slot cost
//! independent of `n`. This is what lets experiments sweep to `n = 2^20`
//! and beyond.
//!
//! **Lockstep invariant.** Under weak-CD a transmitter's feedback is an
//! assumed `Collision` while listeners see the true state; the two
//! disagree only in an *unjammed Single* slot — which ends the run — so
//! the single shared state remains exact for every continuing slot (see
//! `DESIGN.md` §4). Under strong-CD everyone sees the truth. Under no-CD
//! the engine collapses `Null` to `Collision` (listeners cannot tell) and
//! the same argument applies.

use crate::config::SimConfig;
use crate::protocol::UniformProtocol;
use crate::report::{EnergyStats, RunReport};
use jle_adversary::AdversarySpec;
use jle_radio::{CdModel, ChannelHistory, ChannelState, SlotTruth, Trace};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use rand_distr::{Binomial, Distribution};

const ADV_SEED_XOR: u64 = 0x9E37_79B9_7F4A_7C15;

/// Sample the number of transmitters among `n` stations each transmitting
/// independently with probability `p`.
///
/// Out-of-range `p` is clamped to `[0, 1]` (protocols may feed `1 + δ`
/// from float error), but NaN is rejected loudly: it survives `clamp`
/// (which propagates NaN) and would otherwise surface as an opaque
/// `Binomial` construction panic deep in a sweep.
///
/// # Panics
/// Panics if `p` is NaN.
#[inline]
pub fn sample_transmitters(n: u64, p: f64, rng: &mut SmallRng) -> u64 {
    assert!(!p.is_nan(), "transmission probability must not be NaN");
    let p = p.clamp(0.0, 1.0);
    if p == 0.0 || n == 0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    // rand_distr's Binomial (inversion / BTPE) is exact for all regimes.
    Binomial::new(n, p).expect("p validated").sample(rng)
}

/// Run a uniform protocol on the cohort engine.
///
/// Measures selection resolution: the run ends at the first unjammed
/// `Single` (or when the protocol [`UniformProtocol::finished`]s, or at
/// `max_slots`). Under strong-CD the resolving transmitter knows it won,
/// so the report also carries a leader; under weak-CD leader *knowledge*
/// requires the `Notification` wrapper, which runs on the exact engine.
pub fn run_cohort<U: UniformProtocol>(
    config: &SimConfig,
    adversary: &AdversarySpec,
    factory: impl FnOnce() -> U,
) -> RunReport {
    run_cohort_with(config, adversary, factory).0
}

/// Like [`run_cohort`], but also hands back the final protocol state —
/// needed to read out protocol-internal results such as `Estimation`'s
/// returned round.
pub fn run_cohort_with<U: UniformProtocol>(
    config: &SimConfig,
    adversary: &AdversarySpec,
    factory: impl FnOnce() -> U,
) -> (RunReport, U) {
    assert!(config.n >= 1, "need at least one station");
    let mut proto = factory();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut adv_rng = SmallRng::seed_from_u64(config.seed ^ ADV_SEED_XOR);
    let mut strategy = adversary.strategy();
    let mut budget = adversary.budget();
    let mut history = ChannelHistory::new(config.effective_retention(adversary.t_window));
    let mut trace =
        config.record_trace.then(|| Trace::with_capacity(config.max_slots.min(1 << 20) as usize));
    let mut energy = EnergyStats::default();
    let mut report = RunReport::default();

    for slot in 0..config.max_slots {
        if proto.finished() {
            break;
        }
        // 1. Adversary commits before the stations draw.
        let want = strategy.decide(&history, &budget, &mut adv_rng);
        let jam = want && budget.can_jam();
        budget.advance(jam);

        // 2. Transmitter count, plus unbudgeted environmental noise.
        let p = proto.tx_prob(slot);
        let k = sample_transmitters(config.n, p, &mut rng);
        let noisy = config.noise_prob > 0.0 && rng.gen_bool(config.noise_prob);
        if noisy {
            report.noise_slots += 1;
        }
        let truth = SlotTruth::new(k, jam || noisy);
        energy.transmissions += k;
        energy.listens += config.n - k;

        // 3. Record.
        if let Some(tr) = trace.as_mut() {
            match proto.estimate() {
                Some(u) => tr.push_with_estimate(&truth, u),
                None => tr.push(&truth),
            }
        }
        history.push(&truth);
        report.slots = slot + 1;

        // 4. Resolve or update.
        if truth.is_clean_single() {
            if report.resolved_at.is_none() {
                report.resolved_at = Some(slot);
                // The winner is uniform among the n symmetric stations.
                report.winner = Some(rng.gen_range(0..config.n));
            }
            if !config.continue_past_singles {
                break;
            }
        }
        let state = match (config.cd, truth.observed()) {
            (CdModel::NoCd, ChannelState::Null) => ChannelState::Collision,
            (_, s) => s,
        };
        debug_assert!(
            state != ChannelState::Single || config.continue_past_singles,
            "clean Single already handled"
        );
        proto.on_state(slot, state);
    }

    if let Some(w) = report.winner {
        if config.cd == CdModel::Strong {
            report.leaders = vec![w];
            report.all_terminated = true;
        }
    }
    report.timed_out =
        report.resolved_at.is_none() && !proto.finished() && report.slots == config.max_slots;
    report.cap_hit = report.timed_out;
    {
        use jle_radio::HistoryView;
        report.counts = history.counts();
    }
    report.energy = energy;
    report.trace = trace;
    (report, proto)
}

/// **Negative control — deliberately violates the model.** Run a uniform
/// protocol against an *oracle* jammer that decides **after** seeing the
/// current slot's transmitter count, jamming exactly the would-be
/// `Single`s (budget permitting).
///
/// The paper's adversary must commit "before it knows the actions of the
/// nodes in the current slot" (Section 1.1). This function shows why that
/// clause is load-bearing: an action-observing jammer with any
/// non-trivial budget suppresses every `Single` it can afford, and since
/// `Single`s are rare (≤ one expected per `e` slots at the optimum), a
/// `(T, 1−ε)` budget with `⌊(1−ε)T⌋ ≥ 1` suffices to block elections
/// essentially forever. Experiment E18 quantifies this.
pub fn run_cohort_against_oracle<U: UniformProtocol>(
    config: &SimConfig,
    eps: jle_adversary::Rate,
    t_window: u64,
    factory: impl FnOnce() -> U,
) -> RunReport {
    assert!(config.n >= 1, "need at least one station");
    let mut proto = factory();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut budget = jle_adversary::JamBudget::new(eps, t_window);
    let mut energy = EnergyStats::default();
    let mut report = RunReport::default();
    let mut counts = jle_radio::history::StateCounts::default();

    for slot in 0..config.max_slots {
        if proto.finished() {
            break;
        }
        let p = proto.tx_prob(slot);
        let k = sample_transmitters(config.n, p, &mut rng);
        // The cheat: decide with k in hand.
        let jam = k == 1 && budget.can_jam();
        budget.advance(jam);
        let truth = SlotTruth::new(k, jam);
        energy.transmissions += k;
        energy.listens += config.n - k;
        counts = {
            let mut c = counts;
            match truth.observed() {
                ChannelState::Null => c.nulls += 1,
                ChannelState::Single => c.singles += 1,
                ChannelState::Collision => c.collisions += 1,
            }
            if jam {
                c.jammed += 1;
            }
            c
        };
        report.slots = slot + 1;
        if truth.is_clean_single() {
            report.resolved_at = Some(slot);
            report.winner = Some(rng.gen_range(0..config.n));
            break;
        }
        let state = match (config.cd, truth.observed()) {
            (CdModel::NoCd, ChannelState::Null) => ChannelState::Collision,
            (_, s) => s,
        };
        proto.on_state(slot, state);
    }
    report.timed_out =
        report.resolved_at.is_none() && !proto.finished() && report.slots == config.max_slots;
    report.cap_hit = report.timed_out;
    report.counts = counts;
    report.energy = energy;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use jle_adversary::{JamStrategyKind, Rate};

    #[derive(Debug, Clone)]
    struct Fixed(f64);
    impl UniformProtocol for Fixed {
        fn tx_prob(&mut self, _: u64) -> f64 {
            self.0
        }
        fn on_state(&mut self, _: u64, _: ChannelState) {}
    }

    #[test]
    fn oracle_jammer_blocks_elections() {
        // The negative control: with the commit-first rule removed, a
        // (T=16, 1-eps=0.95) oracle suppresses essentially every Single —
        // a Single leaks only when 16 consecutive slots all carry one
        // (prob ≈ 0.38^16 ≈ 2e-7 per window). The same budget under the
        // fair commit-first rule cannot stop the election at all.
        let eps = Rate::from_f64(0.05);
        let config = SimConfig::new(16, CdModel::Strong).with_seed(4).with_max_slots(20_000);
        let report = run_cohort_against_oracle(&config, eps, 16, || Fixed(1.0 / 16.0));
        assert!(report.timed_out, "oracle must block the election");
        assert_eq!(report.counts.singles, 0);
        // Sanity: the same protocol under the *fair* saturating adversary
        // with the same budget elects easily.
        let spec = AdversarySpec::new(eps, 16, JamStrategyKind::Saturating);
        let fair = run_cohort(&config, &spec, || Fixed(1.0 / 16.0));
        assert!(fair.leader_elected());
    }

    #[test]
    fn continue_past_singles_keeps_running() {
        let config = SimConfig::new(1, CdModel::Strong)
            .with_seed(1)
            .with_max_slots(50)
            .with_continue_past_singles(true);
        // A lone always-transmitter: every unjammed slot is a Single.
        let report = run_cohort(&config, &AdversarySpec::passive(), || Fixed(1.0));
        assert_eq!(report.slots, 50, "must run to the cap");
        assert_eq!(report.resolved_at, Some(0), "first single still recorded");
        assert_eq!(report.counts.singles, 50);
        assert!(!report.timed_out, "a resolved run is not a timeout");
    }

    #[test]
    fn binomial_sampler_sanity() {
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(sample_transmitters(100, 0.0, &mut rng), 0);
        assert_eq!(sample_transmitters(100, 1.0, &mut rng), 100);
        assert_eq!(sample_transmitters(0, 0.5, &mut rng), 0);
        let total: u64 = (0..2000).map(|_| sample_transmitters(100, 0.3, &mut rng)).sum();
        let mean = total as f64 / 2000.0;
        assert!((mean - 30.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn sampler_clamps_out_of_range_probabilities() {
        let mut rng = SmallRng::seed_from_u64(8);
        assert_eq!(sample_transmitters(100, -0.5, &mut rng), 0, "negative p clamps to 0");
        assert_eq!(sample_transmitters(100, 1.5, &mut rng), 100, "p > 1 clamps to 1");
        assert_eq!(sample_transmitters(0, f64::INFINITY, &mut rng), 0, "n = 0 after clamp");
    }

    #[test]
    #[should_panic(expected = "transmission probability must not be NaN")]
    fn sampler_rejects_nan_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let _ = sample_transmitters(100, f64::NAN, &mut rng);
    }

    #[test]
    #[should_panic(expected = "transmission probability must not be NaN")]
    fn sampler_rejects_nan_even_for_zero_stations() {
        // The NaN check runs before any n-based early-out: a poisoned
        // probability is a bug wherever it appears.
        let mut rng = SmallRng::seed_from_u64(10);
        let _ = sample_transmitters(0, f64::NAN, &mut rng);
    }

    #[test]
    fn lone_station_resolves_at_zero() {
        let config = SimConfig::new(1, CdModel::Strong).with_seed(1).with_max_slots(10);
        let report = run_cohort(&config, &AdversarySpec::passive(), || Fixed(1.0));
        assert_eq!(report.resolved_at, Some(0));
        assert_eq!(report.winner, Some(0));
        assert_eq!(report.leaders, vec![0]);
    }

    #[test]
    fn saturated_channel_times_out() {
        let config = SimConfig::new(5, CdModel::Strong).with_seed(1).with_max_slots(20);
        let report = run_cohort(&config, &AdversarySpec::passive(), || Fixed(1.0));
        assert!(report.timed_out);
        assert_eq!(report.counts.collisions, 20);
    }

    #[test]
    fn weak_cd_resolution_reports_no_leader() {
        let config = SimConfig::new(4, CdModel::Weak).with_seed(2).with_max_slots(100_000);
        let report = run_cohort(&config, &AdversarySpec::passive(), || Fixed(0.25));
        assert!(report.resolved_at.is_some());
        assert!(report.leaders.is_empty());
        assert!(!report.all_terminated);
    }

    #[test]
    fn deterministic_given_seed() {
        let config = SimConfig::new(64, CdModel::Strong).with_seed(33).with_max_slots(100_000);
        let spec = AdversarySpec::new(Rate::from_f64(0.5), 8, JamStrategyKind::Saturating);
        let a = run_cohort(&config, &spec, || Fixed(1.0 / 64.0));
        let b = run_cohort(&config, &spec, || Fixed(1.0 / 64.0));
        assert_eq!(a.resolved_at, b.resolved_at);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.winner, b.winner);
    }

    #[test]
    fn finished_protocol_stops_engine() {
        #[derive(Debug)]
        struct CountDown(u32);
        impl UniformProtocol for CountDown {
            fn tx_prob(&mut self, _: u64) -> f64 {
                0.0
            }
            fn on_state(&mut self, _: u64, _: ChannelState) {
                self.0 -= 1;
            }
            fn finished(&self) -> bool {
                self.0 == 0
            }
        }
        let config = SimConfig::new(3, CdModel::Strong).with_seed(1).with_max_slots(100);
        let report = run_cohort(&config, &AdversarySpec::passive(), || CountDown(7));
        assert_eq!(report.slots, 7);
        assert!(!report.timed_out);
        assert_eq!(report.resolved_at, None);
    }

    #[test]
    fn jam_fraction_tracks_budget() {
        let spec = AdversarySpec::new(Rate::from_ratio(1, 4), 16, JamStrategyKind::Saturating);
        let config = SimConfig::new(2, CdModel::Strong).with_seed(9).with_max_slots(4000);
        let report = run_cohort(&config, &spec, || Fixed(1.0)); // never resolves
        let frac = report.jam_fraction();
        assert!(frac > 0.6 && frac <= 0.75 + 1e-9, "frac {frac}");
    }

    #[test]
    fn no_cd_null_becomes_collision_for_protocol() {
        #[derive(Debug, Default)]
        struct SeenNull(bool);
        impl UniformProtocol for SeenNull {
            fn tx_prob(&mut self, _: u64) -> f64 {
                0.0
            }
            fn on_state(&mut self, _: u64, s: ChannelState) {
                if s == ChannelState::Null {
                    self.0 = true;
                }
            }
            fn finished(&self) -> bool {
                false
            }
        }
        // We cannot observe inner state after the run (moved), so use a
        // panic-on-null protocol instead.
        #[derive(Debug)]
        struct PanicOnNull;
        impl UniformProtocol for PanicOnNull {
            fn tx_prob(&mut self, _: u64) -> f64 {
                0.0
            }
            fn on_state(&mut self, _: u64, s: ChannelState) {
                assert_ne!(s, ChannelState::Null, "no-CD must never surface Null");
            }
        }
        let config = SimConfig::new(3, CdModel::NoCd).with_seed(1).with_max_slots(50);
        let _ = run_cohort(&config, &AdversarySpec::passive(), || PanicOnNull);
        let _ = SeenNull::default();
    }
}

#[cfg(test)]
mod noise_tests {
    use super::*;
    use jle_adversary::AdversarySpec;
    use jle_radio::CdModel;

    #[derive(Debug, Clone)]
    struct Silent;
    impl UniformProtocol for Silent {
        fn tx_prob(&mut self, _: u64) -> f64 {
            0.0
        }
        fn on_state(&mut self, _: u64, _: ChannelState) {}
    }

    #[derive(Debug, Clone)]
    struct Fixed(f64);
    impl UniformProtocol for Fixed {
        fn tx_prob(&mut self, _: u64) -> f64 {
            self.0
        }
        fn on_state(&mut self, _: u64, _: ChannelState) {}
    }

    #[test]
    fn noise_corrupts_at_the_configured_rate() {
        let config =
            SimConfig::new(4, CdModel::Strong).with_seed(5).with_max_slots(20_000).with_noise(0.25);
        let r = run_cohort(&config, &AdversarySpec::passive(), || Silent);
        let frac = r.noise_slots as f64 / r.slots as f64;
        assert!((frac - 0.25).abs() < 0.02, "noise fraction {frac}");
        // Noise reads as Collision; silent stations otherwise yield Nulls.
        assert_eq!(r.counts.collisions, r.noise_slots);
        assert_eq!(r.counts.jammed, r.noise_slots);
        assert_eq!(r.counts.singles, 0);
    }

    #[test]
    fn zero_noise_does_not_consume_randomness() {
        // Adding the noise feature must not perturb noise-free runs.
        let base = SimConfig::new(16, CdModel::Strong).with_seed(9).with_max_slots(100_000);
        let a = run_cohort(&base, &AdversarySpec::passive(), || Fixed(0.1));
        let b = run_cohort(&base.clone().with_noise(0.0), &AdversarySpec::passive(), || Fixed(0.1));
        assert_eq!(a.resolved_at, b.resolved_at);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.noise_slots, 0);
    }

    #[test]
    fn noise_destroys_singles_like_jamming() {
        // A lone always-transmitter under heavy noise: only noise-free
        // slots can resolve.
        let config =
            SimConfig::new(1, CdModel::Strong).with_seed(3).with_max_slots(1_000).with_noise(0.9);
        let r = run_cohort(&config, &AdversarySpec::passive(), || Fixed(1.0));
        assert!(r.leader_elected());
        assert!(r.resolved_at.unwrap() > 0 || r.noise_slots == 0);
    }
}
