//! The cohort backend: O(1) work per slot for uniform protocols.
//!
//! The paper's protocols are *uniform* (Section 1.1): every station
//! transmits with the same, history-determined probability. All stations
//! therefore share one state, and the number of transmitters in a slot is
//! `Binomial(n, p)` — the backend tracks a single protocol copy and
//! samples the transmitter count directly, making per-slot cost
//! independent of `n`. This is what lets experiments sweep to `n = 2^20`
//! and beyond.
//!
//! **Lockstep invariant.** Under weak-CD a transmitter's feedback is an
//! assumed `Collision` while listeners see the true state; the two
//! disagree only in an *unjammed Single* slot — which ends the run — so
//! the single shared state remains exact for every continuing slot (see
//! `DESIGN.md` §4). Under strong-CD everyone sees the truth. Under no-CD
//! the engine collapses `Null` to `Collision` (listeners cannot tell) and
//! the same argument applies.
//!
//! The slot loop lives in [`crate::core::SimCore`]; [`CohortStations`]
//! supplies the binomial sampling and shared-state feedback, and the
//! `run_cohort*` functions are thin shims. The oracle negative control is
//! the same backend driven by [`SimCore::oracle`]'s action-observing
//! jammer.

use crate::config::SimConfig;
use crate::core::{SimArena, SimCore, SlotActions, StationSet};
use crate::protocol::UniformProtocol;
use crate::report::RunReport;
use jle_adversary::AdversarySpec;
use jle_radio::{CdModel, ChannelState, SlotTruth};
use rand::{rngs::SmallRng, Rng};
use rand_distr::{Binomial, Distribution};

/// Sample the number of transmitters among `n` stations each transmitting
/// independently with probability `p`.
///
/// Out-of-range `p` is clamped to `[0, 1]` (protocols may feed `1 + δ`
/// from float error), but NaN is rejected loudly: it survives `clamp`
/// (which propagates NaN) and would otherwise surface as an opaque
/// `Binomial` construction panic deep in a sweep.
///
/// # Panics
/// Panics if `p` is NaN.
#[inline]
pub fn sample_transmitters(n: u64, p: f64, rng: &mut SmallRng) -> u64 {
    assert!(!p.is_nan(), "transmission probability must not be NaN");
    let p = p.clamp(0.0, 1.0);
    if p == 0.0 || n == 0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    // rand_distr's Binomial (inversion / BTPE) is exact for all regimes.
    Binomial::new(n, p).expect("p validated").sample(rng)
}

/// The uniform-protocol [`StationSet`] backend: one shared protocol state,
/// binomial transmitter counts, and a uniformly drawn winner on the
/// resolving `Single` (the stations are symmetric, so the lone transmitter
/// is uniform among them).
#[derive(Debug)]
pub struct CohortStations<U> {
    proto: U,
    claim_leader: bool,
}

impl<U: UniformProtocol> CohortStations<U> {
    /// Wrap a uniform protocol state.
    pub fn new(proto: U) -> Self {
        CohortStations { proto, claim_leader: true }
    }

    /// Like [`CohortStations::new`], but the resolving transmitter never
    /// claims leadership in the report — used for the oracle negative
    /// control, which measures suppression, not elections.
    pub fn without_leader_claim(proto: U) -> Self {
        CohortStations { proto, claim_leader: false }
    }

    /// Recover the wrapped protocol state after the run.
    pub fn into_inner(self) -> U {
        self.proto
    }
}

impl<U: UniformProtocol> StationSet for CohortStations<U> {
    fn finished(&self) -> bool {
        self.proto.finished()
    }

    fn act(&mut self, slot: u64, config: &SimConfig, rng: &mut SmallRng) -> SlotActions {
        let p = self.proto.tx_prob(slot);
        let k = sample_transmitters(config.n, p, rng);
        SlotActions { transmitters: k, listeners: config.n - k, lone_transmitter: None }
    }

    fn pick_winner(
        &mut self,
        _actions: &SlotActions,
        config: &SimConfig,
        rng: &mut SmallRng,
    ) -> Option<u64> {
        // The winner is uniform among the n symmetric stations.
        Some(rng.gen_range(0..config.n))
    }

    fn feedback(&mut self, slot: u64, truth: &SlotTruth, config: &SimConfig) {
        if truth.is_clean_single() && !config.continue_past_singles {
            // The run ends on this slot; the shared state never hears it.
            return;
        }
        let state = match (config.cd, truth.observed()) {
            (CdModel::NoCd, ChannelState::Null) => ChannelState::Collision,
            (_, s) => s,
        };
        debug_assert!(
            state != ChannelState::Single || config.continue_past_singles,
            "clean Single already handled"
        );
        self.proto.on_state(slot, state);
    }

    fn estimate(&self) -> Option<f64> {
        self.proto.estimate()
    }

    fn should_stop(
        &mut self,
        truth: &SlotTruth,
        config: &SimConfig,
        _report: &mut RunReport,
    ) -> bool {
        truth.is_clean_single() && !config.continue_past_singles
    }

    fn finalize(&mut self, config: &SimConfig, report: &mut RunReport) {
        if let Some(w) = report.winner {
            if self.claim_leader && config.cd == CdModel::Strong {
                // Strong-CD: the resolving transmitter saw its own Single.
                report.leaders = vec![w];
                report.all_terminated = true;
            }
        }
        report.timed_out = report.resolved_at.is_none()
            && !self.proto.finished()
            && report.slots == config.max_slots;
        report.cap_hit = report.timed_out;
    }
}

/// Run a uniform protocol on the cohort engine.
///
/// Measures selection resolution: the run ends at the first unjammed
/// `Single` (or when the protocol [`UniformProtocol::finished`]s, or at
/// `max_slots`). Under strong-CD the resolving transmitter knows it won,
/// so the report also carries a leader; under weak-CD leader *knowledge*
/// requires the `Notification` wrapper, which runs on the exact engine.
pub fn run_cohort<U: UniformProtocol>(
    config: &SimConfig,
    adversary: &AdversarySpec,
    factory: impl FnOnce() -> U,
) -> RunReport {
    run_cohort_with(config, adversary, factory).0
}

/// Like [`run_cohort`], but also hands back the final protocol state —
/// needed to read out protocol-internal results such as `Estimation`'s
/// returned round.
pub fn run_cohort_with<U: UniformProtocol>(
    config: &SimConfig,
    adversary: &AdversarySpec,
    factory: impl FnOnce() -> U,
) -> (RunReport, U) {
    let mut stations = CohortStations::new(factory());
    let report = SimCore::new(config, adversary).run(&mut stations);
    (report, stations.into_inner())
}

/// Like [`run_cohort`], but reusing `arena`'s history ring (and trace
/// allocation, if reclaimed) across repeated trials on one thread.
pub fn run_cohort_in<U: UniformProtocol>(
    config: &SimConfig,
    adversary: &AdversarySpec,
    factory: impl FnOnce() -> U,
    arena: &mut SimArena,
) -> RunReport {
    let mut stations = CohortStations::new(factory());
    SimCore::new(config, adversary).with_arena(arena).run(&mut stations)
}

/// **Negative control — deliberately violates the model.** Run a uniform
/// protocol against an *oracle* jammer that decides **after** seeing the
/// current slot's transmitter count, jamming exactly the would-be
/// `Single`s (budget permitting).
///
/// The paper's adversary must commit "before it knows the actions of the
/// nodes in the current slot" (Section 1.1). This function shows why that
/// clause is load-bearing: an action-observing jammer with any
/// non-trivial budget suppresses every `Single` it can afford, and since
/// `Single`s are rare (≤ one expected per `e` slots at the optimum), a
/// `(T, 1−ε)` budget with `⌊(1−ε)T⌋ ≥ 1` suffices to block elections
/// essentially forever. Experiment E18 quantifies this.
pub fn run_cohort_against_oracle<U: UniformProtocol>(
    config: &SimConfig,
    eps: jle_adversary::Rate,
    t_window: u64,
    factory: impl FnOnce() -> U,
) -> RunReport {
    let mut stations = CohortStations::without_leader_claim(factory());
    SimCore::oracle(config, eps, t_window).run(&mut stations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jle_adversary::{JamStrategyKind, Rate};

    #[derive(Debug, Clone)]
    struct Fixed(f64);
    impl UniformProtocol for Fixed {
        fn tx_prob(&mut self, _: u64) -> f64 {
            self.0
        }
        fn on_state(&mut self, _: u64, _: ChannelState) {}
    }

    #[test]
    fn oracle_jammer_blocks_elections() {
        // The negative control: with the commit-first rule removed, a
        // (T=16, 1-eps=0.95) oracle suppresses essentially every Single —
        // a Single leaks only when 16 consecutive slots all carry one
        // (prob ≈ 0.38^16 ≈ 2e-7 per window). The same budget under the
        // fair commit-first rule cannot stop the election at all.
        let eps = Rate::from_f64(0.05);
        let config = SimConfig::new(16, CdModel::Strong).with_seed(4).with_max_slots(20_000);
        let report = run_cohort_against_oracle(&config, eps, 16, || Fixed(1.0 / 16.0));
        assert!(report.timed_out, "oracle must block the election");
        assert_eq!(report.counts.singles, 0);
        // Sanity: the same protocol under the *fair* saturating adversary
        // with the same budget elects easily.
        let spec = AdversarySpec::new(eps, 16, JamStrategyKind::Saturating);
        let fair = run_cohort(&config, &spec, || Fixed(1.0 / 16.0));
        assert!(fair.leader_elected());
    }

    #[test]
    fn oracle_never_claims_a_leader() {
        // Even when a Single leaks through the oracle's budget, the
        // negative control records the resolution but no leader claim.
        let config = SimConfig::new(1, CdModel::Strong).with_seed(2).with_max_slots(100);
        let report = run_cohort_against_oracle(&config, Rate::from_f64(0.95), 16, || Fixed(1.0));
        assert!(report.resolved_at.is_some());
        assert!(report.leaders.is_empty(), "oracle runs never claim leadership");
        assert!(!report.all_terminated);
    }

    #[test]
    fn continue_past_singles_keeps_running() {
        let config = SimConfig::new(1, CdModel::Strong)
            .with_seed(1)
            .with_max_slots(50)
            .with_continue_past_singles(true);
        // A lone always-transmitter: every unjammed slot is a Single.
        let report = run_cohort(&config, &AdversarySpec::passive(), || Fixed(1.0));
        assert_eq!(report.slots, 50, "must run to the cap");
        assert_eq!(report.resolved_at, Some(0), "first single still recorded");
        assert_eq!(report.counts.singles, 50);
        assert!(!report.timed_out, "a resolved run is not a timeout");
    }

    #[test]
    fn binomial_sampler_sanity() {
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(sample_transmitters(100, 0.0, &mut rng), 0);
        assert_eq!(sample_transmitters(100, 1.0, &mut rng), 100);
        assert_eq!(sample_transmitters(0, 0.5, &mut rng), 0);
        let total: u64 = (0..2000).map(|_| sample_transmitters(100, 0.3, &mut rng)).sum();
        let mean = total as f64 / 2000.0;
        assert!((mean - 30.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn sampler_clamps_out_of_range_probabilities() {
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(8);
        assert_eq!(sample_transmitters(100, -0.5, &mut rng), 0, "negative p clamps to 0");
        assert_eq!(sample_transmitters(100, 1.5, &mut rng), 100, "p > 1 clamps to 1");
        assert_eq!(sample_transmitters(0, f64::INFINITY, &mut rng), 0, "n = 0 after clamp");
    }

    #[test]
    #[should_panic(expected = "transmission probability must not be NaN")]
    fn sampler_rejects_nan_probability() {
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(9);
        let _ = sample_transmitters(100, f64::NAN, &mut rng);
    }

    #[test]
    #[should_panic(expected = "transmission probability must not be NaN")]
    fn sampler_rejects_nan_even_for_zero_stations() {
        use rand::SeedableRng;
        // The NaN check runs before any n-based early-out: a poisoned
        // probability is a bug wherever it appears.
        let mut rng = SmallRng::seed_from_u64(10);
        let _ = sample_transmitters(0, f64::NAN, &mut rng);
    }

    #[test]
    fn lone_station_resolves_at_zero() {
        let config = SimConfig::new(1, CdModel::Strong).with_seed(1).with_max_slots(10);
        let report = run_cohort(&config, &AdversarySpec::passive(), || Fixed(1.0));
        assert_eq!(report.resolved_at, Some(0));
        assert_eq!(report.winner, Some(0));
        assert_eq!(report.leaders, vec![0]);
    }

    #[test]
    fn saturated_channel_times_out() {
        let config = SimConfig::new(5, CdModel::Strong).with_seed(1).with_max_slots(20);
        let report = run_cohort(&config, &AdversarySpec::passive(), || Fixed(1.0));
        assert!(report.timed_out);
        assert_eq!(report.counts.collisions, 20);
    }

    #[test]
    fn weak_cd_resolution_reports_no_leader() {
        let config = SimConfig::new(4, CdModel::Weak).with_seed(2).with_max_slots(100_000);
        let report = run_cohort(&config, &AdversarySpec::passive(), || Fixed(0.25));
        assert!(report.resolved_at.is_some());
        assert!(report.leaders.is_empty());
        assert!(!report.all_terminated);
    }

    #[test]
    fn deterministic_given_seed() {
        let config = SimConfig::new(64, CdModel::Strong).with_seed(33).with_max_slots(100_000);
        let spec = AdversarySpec::new(Rate::from_f64(0.5), 8, JamStrategyKind::Saturating);
        let a = run_cohort(&config, &spec, || Fixed(1.0 / 64.0));
        let b = run_cohort(&config, &spec, || Fixed(1.0 / 64.0));
        assert_eq!(a.resolved_at, b.resolved_at);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.winner, b.winner);
    }

    #[test]
    fn finished_protocol_stops_engine() {
        #[derive(Debug)]
        struct CountDown(u32);
        impl UniformProtocol for CountDown {
            fn tx_prob(&mut self, _: u64) -> f64 {
                0.0
            }
            fn on_state(&mut self, _: u64, _: ChannelState) {
                self.0 -= 1;
            }
            fn finished(&self) -> bool {
                self.0 == 0
            }
        }
        let config = SimConfig::new(3, CdModel::Strong).with_seed(1).with_max_slots(100);
        let report = run_cohort(&config, &AdversarySpec::passive(), || CountDown(7));
        assert_eq!(report.slots, 7);
        assert!(!report.timed_out);
        assert_eq!(report.resolved_at, None);
    }

    #[test]
    fn jam_fraction_tracks_budget() {
        let spec = AdversarySpec::new(Rate::from_ratio(1, 4), 16, JamStrategyKind::Saturating);
        let config = SimConfig::new(2, CdModel::Strong).with_seed(9).with_max_slots(4000);
        let report = run_cohort(&config, &spec, || Fixed(1.0)); // never resolves
        let frac = report.jam_fraction();
        assert!(frac > 0.6 && frac <= 0.75 + 1e-9, "frac {frac}");
    }

    #[test]
    fn no_cd_null_becomes_collision_for_protocol() {
        #[derive(Debug)]
        struct PanicOnNull;
        impl UniformProtocol for PanicOnNull {
            fn tx_prob(&mut self, _: u64) -> f64 {
                0.0
            }
            fn on_state(&mut self, _: u64, s: ChannelState) {
                assert_ne!(s, ChannelState::Null, "no-CD must never surface Null");
            }
        }
        let config = SimConfig::new(3, CdModel::NoCd).with_seed(1).with_max_slots(50);
        let _ = run_cohort(&config, &AdversarySpec::passive(), || PanicOnNull);
    }

    #[test]
    fn arena_runs_are_bit_identical_to_fresh_runs() {
        let config = SimConfig::new(64, CdModel::Strong).with_seed(33).with_max_slots(100_000);
        let spec = AdversarySpec::new(Rate::from_f64(0.5), 8, JamStrategyKind::Saturating);
        let fresh = run_cohort(&config, &spec, || Fixed(1.0 / 64.0));
        let mut arena = SimArena::new();
        // Dirty the arena with unrelated runs first.
        for s in 0..3u64 {
            let other = config.clone().with_seed(500 + s);
            let _ = run_cohort_in(&other, &spec, || Fixed(1.0 / 64.0), &mut arena);
        }
        let reused = run_cohort_in(&config, &spec, || Fixed(1.0 / 64.0), &mut arena);
        assert_eq!(fresh.slots, reused.slots);
        assert_eq!(fresh.resolved_at, reused.resolved_at);
        assert_eq!(fresh.winner, reused.winner);
        assert_eq!(fresh.counts, reused.counts);
        assert_eq!(fresh.energy, reused.energy);
    }
}

#[cfg(test)]
mod noise_tests {
    use super::*;
    use jle_adversary::AdversarySpec;
    use jle_radio::CdModel;

    #[derive(Debug, Clone)]
    struct Silent;
    impl UniformProtocol for Silent {
        fn tx_prob(&mut self, _: u64) -> f64 {
            0.0
        }
        fn on_state(&mut self, _: u64, _: ChannelState) {}
    }

    #[derive(Debug, Clone)]
    struct Fixed(f64);
    impl UniformProtocol for Fixed {
        fn tx_prob(&mut self, _: u64) -> f64 {
            self.0
        }
        fn on_state(&mut self, _: u64, _: ChannelState) {}
    }

    #[test]
    fn noise_corrupts_at_the_configured_rate() {
        let config =
            SimConfig::new(4, CdModel::Strong).with_seed(5).with_max_slots(20_000).with_noise(0.25);
        let r = run_cohort(&config, &AdversarySpec::passive(), || Silent);
        let frac = r.noise_slots as f64 / r.slots as f64;
        assert!((frac - 0.25).abs() < 0.02, "noise fraction {frac}");
        // Noise reads as Collision; silent stations otherwise yield Nulls.
        assert_eq!(r.counts.collisions, r.noise_slots);
        assert_eq!(r.counts.jammed, r.noise_slots);
        assert_eq!(r.counts.singles, 0);
    }

    #[test]
    fn zero_noise_does_not_consume_randomness() {
        // Adding the noise feature must not perturb noise-free runs.
        let base = SimConfig::new(16, CdModel::Strong).with_seed(9).with_max_slots(100_000);
        let a = run_cohort(&base, &AdversarySpec::passive(), || Fixed(0.1));
        let b = run_cohort(&base.clone().with_noise(0.0), &AdversarySpec::passive(), || Fixed(0.1));
        assert_eq!(a.resolved_at, b.resolved_at);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.noise_slots, 0);
    }

    #[test]
    fn noise_destroys_singles_like_jamming() {
        // A lone always-transmitter under heavy noise: only noise-free
        // slots can resolve.
        let config =
            SimConfig::new(1, CdModel::Strong).with_seed(3).with_max_slots(1_000).with_noise(0.9);
        let r = run_cohort(&config, &AdversarySpec::passive(), || Fixed(1.0));
        assert!(r.leader_elected());
        assert!(r.resolved_at.unwrap() > 0 || r.noise_slots == 0);
    }
}
