//! Engine ↔ telemetry glue: a [`TelemetryObserver`] for the
//! [`crate::SlotObserver`] stack, the `jle_engine_*` metric family, and a
//! panic postmortem helper for [`crate::MonteCarlo::run_caught`].
//!
//! The observer is strictly passive (it never draws randomness and never
//! mutates the report — `tests/telemetry_invariance.rs` re-runs every
//! golden-seed fixture with it attached and asserts bit-identical
//! reports). Per slot it does one ring-buffer write; everything heavier —
//! metric updates, anomaly classification, flight-record dumps — happens
//! once per run in [`SlotObserver::after_run`], where the final report is
//! settled.

use crate::config::SimConfig;
use crate::core::SlotActions;
use crate::observer::SlotObserver;
use crate::report::{Outcome, RunReport};
use jle_radio::SlotTruth;
use jle_telemetry::{
    AnomalyKind, Counter, FlightRecord, FlightRecorder, FlightRing, Gauge, Histogram,
    MetricRegistry, SlotEvent,
};
use std::path::PathBuf;
use std::sync::Arc;

/// The engine's metric family (`jle_engine_*`), registered once per
/// registry and shared by every [`TelemetryObserver`] built from it.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// `jle_engine_slots_total` — channel slots simulated.
    pub slots_total: Counter,
    /// `jle_engine_runs_total` — simulation runs completed.
    pub runs_total: Counter,
    /// `jle_engine_election_slots` — slots to the first clean `Single`,
    /// observed only for runs that resolved.
    pub election_slots: Histogram,
    /// `jle_engine_energy_per_station` — per-station channel accesses
    /// (transmissions + listens, averaged over `n`).
    pub energy_per_station: Histogram,
    /// `jle_engine_adv_budget_spent` — fraction of the adversary's
    /// jamming allowance spent in the most recent run.
    pub adv_budget_spent: Gauge,
    /// `jle_engine_awake_stations` — stations that were up (transmitting
    /// or listening) in the last observed slot. On duty-cycled workloads
    /// this is the live size of the fast backend's awake set, the
    /// quantity its O(awake) slot cost scales with.
    pub awake_stations: Gauge,
    /// `jle_engine_anomalies_total` — anomalies detected across runs.
    pub anomalies_total: Counter,
    /// `jle_engine_split_brain_windows_total` — maximal slot windows with
    /// ≥2 concurrent leadership believers, across observed runs.
    pub split_brain_windows_total: Counter,
    /// `jle_engine_split_brain_slots_total` — slots spent with ≥2
    /// concurrent believers, across observed runs.
    pub split_brain_slots_total: Counter,
    /// `jle_engine_reelections_total` — lease-loss re-elections across
    /// observed runs.
    pub reelections_total: Counter,
    /// `jle_engine_multihop_cluster_resolved_total` — clusters that
    /// resolved a leader, across observed multi-hop runs.
    pub multihop_cluster_resolved_total: Counter,
    /// `jle_engine_cross_cluster_interference_slots` — node-slot events
    /// where a foreign cluster manufactured a collision, across observed
    /// multi-hop runs.
    pub cross_cluster_interference_slots: Counter,
}

impl EngineMetrics {
    /// Register (or fetch) the family on `registry`.
    pub fn register(registry: &MetricRegistry) -> Self {
        EngineMetrics {
            slots_total: registry
                .counter("jle_engine_slots_total", "channel slots simulated by observed runs"),
            runs_total: registry.counter("jle_engine_runs_total", "observed simulation runs"),
            election_slots: registry.histogram(
                "jle_engine_election_slots",
                "slots until the first clean Single (resolved runs only)",
            ),
            energy_per_station: registry.histogram(
                "jle_engine_energy_per_station",
                "per-station channel accesses (tx + listen) per run",
            ),
            adv_budget_spent: registry.gauge(
                "jle_engine_adv_budget_spent",
                "fraction of the adversary's jamming allowance spent (last observed run)",
            ),
            awake_stations: registry.gauge(
                "jle_engine_awake_stations",
                "stations up (tx + listen) in the last observed slot",
            ),
            anomalies_total: registry
                .counter("jle_engine_anomalies_total", "anomalies detected across observed runs"),
            split_brain_windows_total: registry.counter(
                "jle_engine_split_brain_windows_total",
                "slot windows with >=2 concurrent leadership believers",
            ),
            split_brain_slots_total: registry.counter(
                "jle_engine_split_brain_slots_total",
                "slots spent with >=2 concurrent leadership believers",
            ),
            reelections_total: registry.counter(
                "jle_engine_reelections_total",
                "lease-loss re-elections across observed runs",
            ),
            multihop_cluster_resolved_total: registry.counter(
                "jle_engine_multihop_cluster_resolved_total",
                "clusters that resolved a leader across observed multi-hop runs",
            ),
            cross_cluster_interference_slots: registry.counter(
                "jle_engine_cross_cluster_interference_slots",
                "foreign-cluster collision node-slots across observed multi-hop runs",
            ),
        }
    }
}

/// Default flight-ring capacity: enough context to see the adversary's
/// recent cadence without bloating the postmortem artifact.
pub const DEFAULT_RING_CAPACITY: usize = 64;

/// A passive telemetry layer for the observer stack: fills a flight ring
/// every slot, then (once, after finalization) updates metrics and dumps
/// a [`FlightRecord`] if the run ended anomalously.
///
/// ```
/// use jle_adversary::AdversarySpec;
/// use jle_engine::{telemetry::TelemetryObserver, CohortStations, SimConfig, SimCore};
/// use jle_engine::UniformProtocol;
/// use jle_radio::{CdModel, ChannelState};
///
/// struct Silent;
/// impl UniformProtocol for Silent {
///     fn tx_prob(&mut self, _: u64) -> f64 { 0.0 }
///     fn on_state(&mut self, _: u64, _: ChannelState) {}
/// }
///
/// let config = SimConfig::new(4, CdModel::Strong).with_seed(1).with_max_slots(32);
/// let mut obs = TelemetryObserver::new(&config);
/// let mut stations = CohortStations::new(Silent);
/// let report = SimCore::new(&config, &AdversarySpec::passive())
///     .observe(&mut obs)
///     .run(&mut stations);
/// assert_eq!(report.slots, 32);
/// ```
pub struct TelemetryObserver {
    ring: FlightRing,
    seed: u64,
    n: u64,
    fingerprint: Option<String>,
    context: Vec<(String, String)>,
    metrics: Option<EngineMetrics>,
    recorder: Option<Arc<FlightRecorder>>,
    artifacts: Vec<PathBuf>,
    last_awake: u64,
}

impl TelemetryObserver {
    /// An observer for a run of `config` (captures the seed and station
    /// count; attach it with [`crate::SimCore::observe`]).
    pub fn new(config: &SimConfig) -> Self {
        TelemetryObserver {
            ring: FlightRing::new(DEFAULT_RING_CAPACITY),
            seed: config.seed,
            n: config.n,
            fingerprint: None,
            context: Vec::new(),
            metrics: None,
            recorder: None,
            artifacts: Vec::new(),
            last_awake: 0,
        }
    }

    /// Keep the last `capacity` slot events instead of the default.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring = FlightRing::new(capacity);
        self
    }

    /// Update `metrics` when the run ends.
    pub fn with_metrics(mut self, metrics: EngineMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Dump a flight record through `recorder` when the run ends
    /// anomalously.
    pub fn with_flight_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Stamp dumps with the owning work unit's config fingerprint.
    pub fn with_fingerprint(mut self, fp: impl Into<String>) -> Self {
        self.fingerprint = Some(fp.into());
        self
    }

    /// Stamp dumps with one context key/value pair (experiment id, trial
    /// index, …).
    pub fn with_context(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.context.push((key.into(), value.into()));
        self
    }

    /// Flight-record artifacts written so far by this observer.
    pub fn artifacts(&self) -> &[PathBuf] {
        &self.artifacts
    }

    /// The flight ring (for tests and external anomaly hooks).
    pub fn ring(&self) -> &FlightRing {
        &self.ring
    }

    /// Dump a flight record for an externally detected anomaly (e.g. a
    /// supervisor restart harvested after the run) with the ring's current
    /// contents. No-op without a recorder.
    pub fn dump_anomaly(&mut self, kind: AnomalyKind, detail: impl Into<String>) {
        let Some(recorder) = self.recorder.as_ref() else { return };
        let mut record = FlightRecord::new(kind, self.seed, &self.ring).with_detail(detail.into());
        record.fingerprint = self.fingerprint.clone();
        record.context = self.context.clone();
        if let Some(m) = &self.metrics {
            m.anomalies_total.inc();
        }
        if let Ok(Some(path)) = recorder.dump(&record) {
            self.artifacts.push(path);
        }
    }

    /// The dominant anomaly of a settled report, if any (the flight
    /// recorder dumps one record per run, for the most severe condition:
    /// validity violations dominate liveness failures dominate cap hits).
    pub fn classify(report: &RunReport) -> Option<(AnomalyKind, String)> {
        match report.outcome() {
            Outcome::MultiLeader => Some((
                AnomalyKind::MultiLeader,
                format!("{} stations terminated as Leader", report.leaders.len()),
            )),
            Outcome::SplitBrain => Some((
                AnomalyKind::SplitBrain,
                format!(
                    "unresolved split brain: believers {:?} after {} split window(s), \
                     longest {} slot(s)",
                    report.split_brain.believers,
                    report.split_brain.windows,
                    report.split_brain.longest_split
                ),
            )),
            Outcome::LeaderCrashed => Some((
                AnomalyKind::LeaderCrashed,
                format!("leader {:?} crashed before the horizon", report.winner),
            )),
            Outcome::DeadlineExceeded => Some((
                AnomalyKind::CapHit,
                format!("run consumed its {}-slot budget without resolving", report.slots),
            )),
            _ => None,
        }
    }
}

impl std::fmt::Debug for TelemetryObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryObserver")
            .field("seed", &self.seed)
            .field("ring_len", &self.ring.len())
            .field("artifacts", &self.artifacts.len())
            .finish_non_exhaustive()
    }
}

impl SlotObserver for TelemetryObserver {
    fn on_slot(&mut self, slot: u64, truth: &SlotTruth, actions: &SlotActions, _: Option<f64>) {
        self.last_awake = actions.transmitters + actions.listeners;
        self.ring.push(SlotEvent {
            slot,
            transmitters: actions.transmitters,
            listeners: actions.listeners,
            jammed: truth.jammed,
        });
    }

    fn after_run(&mut self, report: &RunReport) {
        if let Some(m) = &self.metrics {
            m.slots_total.add(report.slots);
            m.runs_total.inc();
            if let Some(at) = report.resolved_at {
                m.election_slots.observe(at + 1);
            }
            if let Some(per_station) = report.energy.total().checked_div(self.n) {
                m.energy_per_station.observe(per_station);
            }
            m.adv_budget_spent.set(report.adv_budget_spent);
            m.awake_stations.set(self.last_awake as f64);
            if report.split_brain.tracked {
                m.split_brain_windows_total.add(report.split_brain.windows);
                m.split_brain_slots_total.add(report.split_brain.split_slots);
                m.reelections_total.add(report.split_brain.reelections);
            }
            if let Some(mh) = &report.multihop {
                let resolved = mh.clusters.iter().filter(|c| c.resolved_at.is_some()).count();
                m.multihop_cluster_resolved_total.add(resolved as u64);
                m.cross_cluster_interference_slots.add(mh.cross_cluster_interference);
            }
        }
        if let Some((kind, detail)) = Self::classify(report) {
            if let Some(m) = &self.metrics {
                m.anomalies_total.inc();
            }
            if let Some(recorder) = self.recorder.as_ref() {
                let mut record = FlightRecord::new(kind, self.seed, &self.ring).with_detail(detail);
                record.fingerprint = self.fingerprint.clone();
                record.context = self.context.clone();
                if let Ok(Some(path)) = recorder.dump(&record) {
                    self.artifacts.push(path);
                }
            }
        }
    }
}

/// Postmortem for a panicked trial: [`crate::MonteCarlo::run_caught`]
/// destroys the trial's stack (and any in-trial flight ring) during
/// unwinding, so the record carries no slot events — the seed plus
/// fingerprint still replay the trial exactly, which is what a panic
/// postmortem needs.
pub fn dump_panic(
    recorder: &FlightRecorder,
    seed: u64,
    fingerprint: Option<&str>,
    message: &str,
) -> std::io::Result<Option<PathBuf>> {
    let mut record =
        FlightRecord::new(AnomalyKind::Panic, seed, &FlightRing::new(1)).with_detail(message);
    record.fingerprint = fingerprint.map(str::to_string);
    recorder.dump(&record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CohortStations, SimCore, UniformProtocol};
    use jle_adversary::AdversarySpec;
    use jle_radio::{CdModel, ChannelState};

    #[derive(Debug, Clone)]
    struct Silent;
    impl UniformProtocol for Silent {
        fn tx_prob(&mut self, _: u64) -> f64 {
            0.0
        }
        fn on_state(&mut self, _: u64, _: ChannelState) {}
    }

    #[derive(Debug, Clone)]
    struct AlwaysTx;
    impl UniformProtocol for AlwaysTx {
        fn tx_prob(&mut self, _: u64) -> f64 {
            1.0
        }
        fn on_state(&mut self, _: u64, _: ChannelState) {}
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("jle-engine-telemetry-{tag}-{}", std::process::id()))
    }

    #[test]
    fn metrics_update_after_a_run() {
        let reg = MetricRegistry::new();
        let metrics = EngineMetrics::register(&reg);
        let config = SimConfig::new(1, CdModel::Strong).with_seed(3).with_max_slots(100);
        let mut obs = TelemetryObserver::new(&config).with_metrics(metrics.clone());
        let mut stations = CohortStations::new(AlwaysTx);
        let report =
            SimCore::new(&config, &AdversarySpec::passive()).observe(&mut obs).run(&mut stations);
        assert_eq!(report.resolved_at, Some(0), "one always-tx station resolves immediately");
        assert_eq!(metrics.runs_total.get(), 1);
        assert_eq!(metrics.slots_total.get(), report.slots);
        assert_eq!(metrics.election_slots.count(), 1);
        assert_eq!(metrics.election_slots.sum(), 1, "resolved at slot 0 → 1 slot");
        assert_eq!(metrics.anomalies_total.get(), 0);
    }

    #[test]
    fn cap_hit_dumps_a_flight_record_with_ring_context() {
        let dir = tmp_dir("cap");
        let _ = std::fs::remove_dir_all(&dir);
        let recorder = Arc::new(FlightRecorder::new(&dir).unwrap());
        // A silent cohort can never resolve: the run must hit the cap.
        let config = SimConfig::new(4, CdModel::Strong).with_seed(11).with_max_slots(50);
        let mut obs = TelemetryObserver::new(&config)
            .with_ring_capacity(8)
            .with_flight_recorder(Arc::clone(&recorder))
            .with_fingerprint("cafe1234")
            .with_context("experiment", "unit-test");
        let mut stations = CohortStations::new(Silent);
        let report =
            SimCore::new(&config, &AdversarySpec::passive()).observe(&mut obs).run(&mut stations);
        assert!(report.cap_hit);
        assert_eq!(obs.artifacts().len(), 1, "one postmortem for the cap hit");
        let text = std::fs::read_to_string(&obs.artifacts()[0]).unwrap();
        let record: FlightRecord = serde_json::from_str(&text).unwrap();
        assert_eq!(record.anomaly, AnomalyKind::CapHit);
        assert_eq!(record.seed, 11);
        assert_eq!(record.fingerprint.as_deref(), Some("cafe1234"));
        assert_eq!(record.slots_seen, 50);
        assert_eq!(record.events.len(), 8, "ring kept the last 8 slots");
        assert_eq!(record.events.last().unwrap().slot, 49);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn healthy_run_dumps_nothing() {
        let dir = tmp_dir("healthy");
        let _ = std::fs::remove_dir_all(&dir);
        let recorder = Arc::new(FlightRecorder::new(&dir).unwrap());
        let config = SimConfig::new(1, CdModel::Strong).with_seed(5).with_max_slots(100);
        let mut obs = TelemetryObserver::new(&config).with_flight_recorder(Arc::clone(&recorder));
        let mut stations = CohortStations::new(AlwaysTx);
        let report =
            SimCore::new(&config, &AdversarySpec::passive()).observe(&mut obs).run(&mut stations);
        assert!(report.leader_elected());
        assert!(obs.artifacts().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn external_anomalies_can_be_dumped_post_run() {
        let dir = tmp_dir("external");
        let _ = std::fs::remove_dir_all(&dir);
        let recorder = Arc::new(FlightRecorder::new(&dir).unwrap());
        let config = SimConfig::new(1, CdModel::Strong).with_seed(5).with_max_slots(100);
        let mut obs = TelemetryObserver::new(&config).with_flight_recorder(Arc::clone(&recorder));
        let mut stations = CohortStations::new(AlwaysTx);
        let _ =
            SimCore::new(&config, &AdversarySpec::passive()).observe(&mut obs).run(&mut stations);
        obs.dump_anomaly(AnomalyKind::SupervisorRestart, "watchdog fired at slot 42");
        assert_eq!(obs.artifacts().len(), 1);
        let record: FlightRecord =
            serde_json::from_str(&std::fs::read_to_string(&obs.artifacts()[0]).unwrap()).unwrap();
        assert_eq!(record.anomaly, AnomalyKind::SupervisorRestart);
        assert!(record.detail.contains("slot 42"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_panic_writes_a_replayable_record() {
        let dir = tmp_dir("panic");
        let _ = std::fs::remove_dir_all(&dir);
        let recorder = FlightRecorder::new(&dir).unwrap();
        let path = dump_panic(&recorder, 99, Some("feedface"), "index out of bounds")
            .unwrap()
            .expect("under the cap");
        let record: FlightRecord =
            serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(record.anomaly, AnomalyKind::Panic);
        assert_eq!(record.seed, 99);
        assert_eq!(record.fingerprint.as_deref(), Some("feedface"));
        assert!(record.detail.contains("index out of bounds"));
        assert!(record.events.is_empty(), "panic unwinding destroys the ring");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn awake_gauge_tracks_the_last_slot() {
        let reg = MetricRegistry::new();
        let metrics = EngineMetrics::register(&reg);
        let config = SimConfig::new(4, CdModel::Strong).with_seed(2).with_max_slots(10);
        let mut obs = TelemetryObserver::new(&config).with_metrics(metrics.clone());
        let mut stations = CohortStations::new(Silent);
        let _ =
            SimCore::new(&config, &AdversarySpec::passive()).observe(&mut obs).run(&mut stations);
        assert_eq!(metrics.awake_stations.get(), 4.0, "all four silent stations listen");
    }

    #[test]
    fn split_brain_runs_update_counters_and_classify() {
        use crate::report::SplitBrainStats;
        let reg = MetricRegistry::new();
        let metrics = EngineMetrics::register(&reg);
        let config = SimConfig::new(4, CdModel::Strong).with_seed(2).with_max_slots(10);
        let mut obs = TelemetryObserver::new(&config).with_metrics(metrics.clone());
        let mut report = RunReport { slots: 10, ..Default::default() };
        report.split_brain = SplitBrainStats {
            tracked: true,
            windows: 2,
            split_slots: 9,
            longest_split: 6,
            max_believers: 2,
            believers: vec![1, 4],
            reelections: 3,
        };
        obs.after_run(&report);
        assert_eq!(metrics.split_brain_windows_total.get(), 2);
        assert_eq!(metrics.split_brain_slots_total.get(), 9);
        assert_eq!(metrics.reelections_total.get(), 3);
        assert_eq!(metrics.anomalies_total.get(), 1, "unresolved split is an anomaly");
        let (kind, detail) = TelemetryObserver::classify(&report).expect("split at end");
        assert_eq!(kind, AnomalyKind::SplitBrain);
        assert!(detail.contains("believers [1, 4]"), "got {detail}");
        // A converged run updates counters but is not anomalous.
        report.split_brain.believers = vec![4];
        assert!(TelemetryObserver::classify(&report).is_none());
    }

    #[test]
    fn multihop_runs_update_cluster_counters() {
        use crate::report::{ClusterOutcome, MultihopReport};
        let reg = MetricRegistry::new();
        let metrics = EngineMetrics::register(&reg);
        let config = SimConfig::new(6, CdModel::Strong).with_seed(2).with_max_slots(10);
        let mut obs = TelemetryObserver::new(&config).with_metrics(metrics.clone());
        let mut report = RunReport { slots: 10, ..Default::default() };
        report.multihop = Some(MultihopReport {
            topology: "dense-linear:3,2".into(),
            components: 1,
            clusters: vec![
                ClusterOutcome { cluster: 0, size: 3, resolved_at: Some(4), leader: Some(1) },
                ClusterOutcome { cluster: 1, size: 3, resolved_at: None, leader: None },
            ],
            converged_at: None,
            network_leader: None,
            cross_cluster_interference: 7,
        });
        obs.after_run(&report);
        assert_eq!(metrics.multihop_cluster_resolved_total.get(), 1);
        assert_eq!(metrics.cross_cluster_interference_slots.get(), 7);
    }

    #[test]
    fn budget_spend_gauge_reflects_the_adversary() {
        use jle_adversary::{JamStrategyKind, Rate};
        let reg = MetricRegistry::new();
        let metrics = EngineMetrics::register(&reg);
        let adv = AdversarySpec::new(Rate::from_f64(0.5), 8, JamStrategyKind::Saturating);
        let config = SimConfig::new(4, CdModel::Strong).with_seed(2).with_max_slots(64);
        let mut obs = TelemetryObserver::new(&config).with_metrics(metrics.clone());
        let mut stations = CohortStations::new(Silent);
        let report = SimCore::new(&config, &adv).observe(&mut obs).run(&mut stations);
        assert!(report.counts.jammed > 0, "saturating adversary jams");
        let spent = metrics.adv_budget_spent.get();
        assert!(spent > 0.5 && spent <= 1.5, "saturating spend near the allowance, got {spent}");
        assert_eq!(spent, report.adv_budget_spent);
    }
}
