//! # jle-engine — discrete-slot simulation engine
//!
//! Drives protocols from `jle-protocols` against adversaries from
//! `jle-adversary` over the channel model of `jle-radio`, one slot at a
//! time, with the paper's information flow: the adversary commits its jam
//! decision *before* station actions are drawn, stations receive
//! observations filtered by the collision-detection model, and jammed
//! slots are indistinguishable from collisions.
//!
//! ## Architecture: one loop, six backends
//!
//! The slot loop is written exactly once, in [`SimCore`] (see
//! `DESIGN.md` §10). What varies between simulators is *who the stations
//! are*, captured by the [`StationSet`] trait:
//!
//! * [`ExactStations`] / [`run_exact`] — per-station, O(n) per slot;
//!   required for role-split protocols (`Notification`).
//! * [`FastExactStations`] / [`run_fast_exact`] — the same per-station
//!   semantics on an active-set slot loop: sleeping and withdrawn
//!   stations leave the loop until their [`Protocol::wake_hint`] slot,
//!   and every draw comes from a counter-based per-station stream
//!   ([`StationRng`]) so the action phase is order-independent and can be
//!   sharded across threads. O(awake) per slot — million-station exact
//!   sweeps. Statistically equivalent to [`ExactStations`], not
//!   bit-identical (see `DESIGN.md` §12).
//! * [`CohortStations`] / [`run_cohort`] — for the paper's *uniform*
//!   protocol class; tracks one shared state and samples transmitter
//!   counts binomially, O(1) per slot (n-independent), enabling sweeps to
//!   millions of stations.
//! * [`BatchExactStations`] / [`run_batch_exact`] — K trials of the same
//!   experiment in lockstep with structure-of-arrays state: per-trial
//!   bitplanes (one `u64` word covers 64 trials per station), a merged
//!   wake calendar, and one pass per slot over all live trials. Per
//!   trial **bit-identical** to [`FastExactStations`], so batch results
//!   share the fast backend's cache entries; resolved trials retire
//!   early without perturbing the others (draws are coordinate-pure).
//!   [`run_batch_uniform`] adds a one-shared-state-per-trial fast path
//!   for the uniform protocol class (see `DESIGN.md` §17).
//! * [`FaultyStations`] / [`run_exact_faulty`] — the exact backend with
//!   the [`faults`] subsystem layered on: station crashes, staggered
//!   wakeups, deafness, and sensing errors, with failures classified by
//!   the [`Outcome`] degradation taxonomy.
//! * [`MultihopStations`] / [`run_multihop`] — per-*neighborhood* slot
//!   resolution over an interference [`Topology`](jle_radio::Topology)
//!   (complete / unit-disk / explicit), with message delivery on clean
//!   local `Single`s, per-component rayon sharding, and cluster-election
//!   tracking ([`MultihopReport`]). On `Topology::Complete` it is
//!   bit-identical to [`ExactStations`] (`Shared` discipline) and
//!   [`FastExactStations`] (`Counter` discipline) — single-hop is just
//!   the complete-graph special case (see `DESIGN.md` §15).
//!
//! Instrumentation (energy accounting, trace recording, live throughput)
//! attaches as composable [`SlotObserver`] layers rather than being inlined
//! in the loop, and repeated trials on one thread can reuse buffers
//! through a [`SimArena`] ([`run_exact_in`] / [`run_cohort_in`]).
//!
//! Plus the deterministic Rayon-parallel [`MonteCarlo`] driver used by all
//! experiments (with a panic-isolating [`MonteCarlo::run_caught`]
//! variant).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod churn;
pub mod cohort;
pub mod config;
pub mod core;
pub mod exact;
pub mod fast;
pub mod faults;
pub mod leadership;
pub mod multihop;
pub mod observer;
pub mod protocol;
pub mod report;
pub mod runner;
pub mod streams;
pub mod telemetry;

pub use crate::core::{SimArena, SimCore, SlotActions, SlotFlags, StationSet, ADV_SEED_XOR};
pub use batch::{
    run_batch_exact, run_batch_exact_faulty, run_batch_exact_with, run_batch_uniform,
    BatchExactStations, BatchUniformStations,
};
pub use churn::{
    run_batch_exact_churn, run_exact_churn, run_fast_exact_churn, ChurnPlan, StationChurn,
};
pub use cohort::{
    run_cohort, run_cohort_against_oracle, run_cohort_in, run_cohort_with, sample_transmitters,
    CohortStations,
};
pub use config::{SimConfig, StopRule};
pub use exact::{run_exact, run_exact_in, ExactStations};
pub use fast::{
    run_fast_exact, run_fast_exact_faulty, run_fast_exact_in, FastExactStations, FastFaultyStations,
};
pub use faults::{run_exact_faulty, FaultPlan, FaultyStation, FaultyStations, StationFaults};
pub use leadership::{LeaderLedger, SplitBrainObserver, SplitInterval};
pub use multihop::{
    run_multihop, run_multihop_std, run_multihop_with, MeshMessage, MeshProtocol, MeshStatus,
    MultihopStations, RngDiscipline, StdMesh,
};
pub use observer::{EnergyObserver, SlotObserver, StateProbe, ThroughputObserver, TraceObserver};
pub use protocol::{Action, PerStation, Protocol, Status, UniformProtocol};
pub use report::{
    ClusterOutcome, EnergyStats, MultihopReport, Outcome, RunReport, SlotCost, SplitBrainStats,
};
pub use runner::{catch_trial, panic_count, MonteCarlo, TrialOutcome};
pub use streams::{fill_block, mix64, slot_material, station_key, StationRng};
pub use telemetry::{EngineMetrics, TelemetryObserver};
