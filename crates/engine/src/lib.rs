//! # jle-engine — discrete-slot simulation engine
//!
//! Drives protocols from `jle-protocols` against adversaries from
//! `jle-adversary` over the channel model of `jle-radio`, one slot at a
//! time, with the paper's information flow: the adversary commits its jam
//! decision *before* station actions are drawn, stations receive
//! observations filtered by the collision-detection model, and jammed
//! slots are indistinguishable from collisions.
//!
//! Two simulators:
//!
//! * [`run_exact`] — per-station, O(n) per slot; required for role-split
//!   protocols (`Notification`).
//! * [`run_cohort`] — for the paper's *uniform* protocol class; tracks one
//!   shared state and samples transmitter counts binomially, O(1) per slot
//!   (n-independent), enabling sweeps to millions of stations.
//!
//! Plus the deterministic Rayon-parallel [`MonteCarlo`] driver used by all
//! experiments (with a panic-isolating [`MonteCarlo::run_caught`] variant)
//! and the [`faults`] subsystem for injecting station crashes, staggered
//! wakeups, deafness, and sensing errors into exact-engine runs
//! ([`run_exact_faulty`]), with failures classified by the
//! [`Outcome`] degradation taxonomy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cohort;
pub mod config;
pub mod exact;
pub mod faults;
pub mod protocol;
pub mod report;
pub mod runner;

pub use cohort::{run_cohort, run_cohort_against_oracle, run_cohort_with, sample_transmitters};
pub use config::{SimConfig, StopRule};
pub use exact::run_exact;
pub use faults::{run_exact_faulty, FaultPlan, FaultyStation, StationFaults};
pub use protocol::{Action, PerStation, Protocol, Status, UniformProtocol};
pub use report::{EnergyStats, Outcome, RunReport, SlotCost};
pub use runner::{catch_trial, panic_count, MonteCarlo, TrialOutcome};
