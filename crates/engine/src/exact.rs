//! The exact per-station backend.
//!
//! Faithful to the model slot by slot: the adversary commits its jam
//! decision first (it never sees current-slot actions), every running
//! station then draws its action *in station-index order*, the ground
//! truth is resolved, and each station receives its CD-model-specific
//! observation. Cost is O(n) per slot — use [`crate::cohort`] for uniform
//! protocols at large `n`.
//!
//! The slot loop itself lives in [`crate::core::SimCore`];
//! [`ExactStations`] supplies the per-station action/feedback semantics
//! and [`run_exact`] / [`run_exact_in`] are thin shims.

use crate::config::{SimConfig, StopRule};
use crate::core::{SimArena, SimCore, SlotActions, SlotFlags, StationSet};
use crate::observer::StateProbe;
use crate::protocol::{Action, Protocol, Status};
use crate::report::RunReport;
use jle_adversary::AdversarySpec;
use jle_radio::{cd, SlotTruth};
use rand::rngs::SmallRng;

/// The per-station [`StationSet`] backend: a vector of independent
/// [`Protocol`] state machines plus the word-packed per-slot
/// `transmitted`/`asleep` bookkeeping ([`SlotFlags`]) the feedback phase
/// needs.
pub struct ExactStations {
    stations: Vec<Box<dyn Protocol>>,
    flags: SlotFlags,
}

impl ExactStations {
    /// Build a fresh station set; `factory(i)` builds station `i`.
    pub fn new(config: &SimConfig, factory: impl FnMut(u64) -> Box<dyn Protocol>) -> Self {
        let stations: Vec<Box<dyn Protocol>> = (0..config.n).map(factory).collect();
        let n = stations.len();
        ExactStations { stations, flags: SlotFlags::new(n) }
    }

    /// Like [`ExactStations::new`], but reusing the station vector and
    /// flag buffers held by `arena`. Pair with
    /// [`ExactStations::recycle`] to return them after the run.
    ///
    /// If the arena holds exactly `config.n` stations from a previous run
    /// and every one of them supports [`Protocol::reset`], the boxes are
    /// recycled in place and `factory` is never called — the
    /// allocation-free steady state. Otherwise the set is rebuilt from
    /// `factory`. Recycled stations resurrect their own construction-time
    /// parameters, so share an arena only across runs whose factories
    /// build equivalently-initialized stations (see [`Protocol::reset`]).
    pub fn new_in(
        config: &SimConfig,
        factory: impl FnMut(u64) -> Box<dyn Protocol>,
        arena: &mut SimArena,
    ) -> Self {
        let mut stations = std::mem::take(&mut arena.stations);
        if stations.len() != config.n as usize || !stations.iter_mut().all(|s| s.reset()) {
            stations.clear();
            stations.extend((0..config.n).map(factory));
        }
        let n = stations.len();
        let mut flags = std::mem::take(&mut arena.flags);
        flags.reset(n);
        ExactStations { stations, flags }
    }

    /// Return the backing buffers to `arena` for the next run. Station
    /// boxes are kept intact so a following [`ExactStations::new_in`] can
    /// recycle resettable ones in place; non-resettable stations are
    /// dropped there when the set is rebuilt.
    pub fn recycle(self, arena: &mut SimArena) {
        arena.stations = self.stations;
        arena.flags = self.flags;
    }

    /// The stations, for post-run inspection.
    pub fn stations(&self) -> &[Box<dyn Protocol>] {
        &self.stations
    }
}

impl std::fmt::Debug for ExactStations {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExactStations").field("n", &self.stations.len()).finish_non_exhaustive()
    }
}

impl StationSet for ExactStations {
    fn finished(&self) -> bool {
        // Guarded by `any`: protocols that never implement `finished()`
        // (the default) keep the historical behavior of running until a
        // stop rule or the cap. When some station *does* finish (an
        // `Estimation`-style protocol returning its answer), the run ends
        // once every station has either terminated or finished — the
        // cohort engine's semantics, now honored per-station.
        self.stations.iter().any(|s| s.finished())
            && self.stations.iter().all(|s| s.status().terminal() || s.finished())
    }

    fn act(&mut self, slot: u64, _config: &SimConfig, rng: &mut SmallRng) -> SlotActions {
        let mut actions = SlotActions::default();
        self.flags.begin_slot(); // one memset instead of 2n bool stores
        for (i, st) in self.stations.iter_mut().enumerate() {
            if st.status().terminal() {
                self.flags.set_asleep(i); // terminated stations observe nothing
                continue;
            }
            match st.act(slot, rng) {
                Action::Transmit => {
                    self.flags.set_transmitted(i);
                    actions.transmitters += 1;
                    actions.lone_transmitter =
                        if actions.transmitters == 1 { Some(i as u64) } else { None };
                }
                Action::Listen => actions.listeners += 1,
                Action::Sleep => self.flags.set_asleep(i),
            }
        }
        actions
    }

    fn pick_winner(
        &mut self,
        actions: &SlotActions,
        _config: &SimConfig,
        _rng: &mut SmallRng,
    ) -> Option<u64> {
        // The exact engine knows the identity: no randomness drawn.
        actions.lone_transmitter
    }

    fn feedback(&mut self, slot: u64, truth: &SlotTruth, config: &SimConfig) {
        // Sleeping and terminated stations observe nothing.
        for (i, st) in self.stations.iter_mut().enumerate() {
            let transmitted = self.flags.transmitted(i);
            if self.flags.asleep(i) && !transmitted {
                continue;
            }
            let obs = cd::observe(config.cd, transmitted, truth);
            st.feedback(slot, transmitted, obs);
        }
    }

    fn estimate(&self) -> Option<f64> {
        self.stations.iter().find(|s| !s.status().terminal()).and_then(|s| s.estimate())
    }

    fn collect_probes(&self, out: &mut Vec<StateProbe>) {
        for (i, st) in self.stations.iter().enumerate() {
            if let Some((state, value)) = st.state_probe() {
                out.push(StateProbe { station: i as u64, state, value });
            }
        }
    }

    fn should_stop(
        &mut self,
        _truth: &SlotTruth,
        config: &SimConfig,
        report: &mut RunReport,
    ) -> bool {
        match config.stop {
            StopRule::FirstCleanSingle => report.resolved_at.is_some(),
            StopRule::AllTerminated => {
                if self.stations.iter().all(|s| s.status().terminal()) {
                    report.all_terminated = true;
                    true
                } else {
                    false
                }
            }
            StopRule::Horizon => false,
        }
    }

    fn finalize(&mut self, config: &SimConfig, report: &mut RunReport) {
        report.timed_out = match config.stop {
            StopRule::FirstCleanSingle => report.resolved_at.is_none() && !self.finished(),
            StopRule::AllTerminated => !report.all_terminated,
            StopRule::Horizon => false,
        };
        report.cap_hit = report.timed_out && report.slots == config.max_slots;
        report.leaders = self
            .stations
            .iter()
            .enumerate()
            .filter(|(_, s)| s.status() == Status::Leader)
            .map(|(i, _)| i as u64)
            .collect();
    }
}

/// Run one simulation with a fresh station set from `factory`.
///
/// `factory(i)` builds the protocol instance of station `i`; protocols
/// needing distinct roles can inspect `i`, while symmetric protocols
/// ignore it.
pub fn run_exact(
    config: &SimConfig,
    adversary: &AdversarySpec,
    factory: impl FnMut(u64) -> Box<dyn Protocol>,
) -> RunReport {
    let mut stations = ExactStations::new(config, factory);
    SimCore::new(config, adversary).run(&mut stations)
}

/// Like [`run_exact`], but reusing `arena`'s buffers — the allocation-free
/// steady state for tight Monte-Carlo trial loops on one thread.
pub fn run_exact_in(
    config: &SimConfig,
    adversary: &AdversarySpec,
    factory: impl FnMut(u64) -> Box<dyn Protocol>,
    arena: &mut SimArena,
) -> RunReport {
    let mut stations = ExactStations::new_in(config, factory, arena);
    let report = SimCore::new(config, adversary).with_arena(arena).run(&mut stations);
    stations.recycle(arena);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{PerStation, UniformProtocol};
    use jle_adversary::{JamStrategyKind, Rate};
    use jle_radio::{CdModel, ChannelState};

    /// Uniform protocol transmitting with fixed probability forever.
    #[derive(Debug, Clone)]
    struct Fixed(f64);
    impl UniformProtocol for Fixed {
        fn tx_prob(&mut self, _: u64) -> f64 {
            self.0
        }
        fn on_state(&mut self, _: u64, _: ChannelState) {}
    }

    fn passive() -> AdversarySpec {
        AdversarySpec::passive()
    }

    #[test]
    fn single_station_wins_immediately_strong_cd() {
        let config = SimConfig::new(1, CdModel::Strong).with_seed(3).with_max_slots(10);
        let report = run_exact(&config, &passive(), |_| Box::new(PerStation::new(Fixed(1.0))));
        assert_eq!(report.resolved_at, Some(0));
        assert_eq!(report.winner, Some(0));
        assert_eq!(report.leaders, vec![0]);
        assert!(report.leader_elected());
        assert!(!report.timed_out);
    }

    #[test]
    fn two_always_transmitters_never_resolve() {
        let config = SimConfig::new(2, CdModel::Strong).with_seed(3).with_max_slots(50);
        let report = run_exact(&config, &passive(), |_| Box::new(PerStation::new(Fixed(1.0))));
        assert!(report.timed_out);
        assert_eq!(report.resolved_at, None);
        assert_eq!(report.counts.collisions, 50);
        assert_eq!(report.energy.transmissions, 100);
    }

    #[test]
    fn coin_flip_eventually_resolves() {
        let config = SimConfig::new(2, CdModel::Strong).with_seed(5).with_max_slots(10_000);
        let report = run_exact(&config, &passive(), |_| Box::new(PerStation::new(Fixed(0.5))));
        assert!(report.leader_elected());
        let w = report.winner.unwrap();
        assert_eq!(report.leaders, vec![w]);
    }

    #[test]
    fn weak_cd_winner_does_not_learn() {
        // Under weak-CD the winner keeps Running: no station ends Leader.
        let config = SimConfig::new(2, CdModel::Weak).with_seed(5).with_max_slots(10_000);
        let report = run_exact(&config, &passive(), |_| Box::new(PerStation::new(Fixed(0.5))));
        assert!(report.resolved_at.is_some());
        assert!(report.leaders.is_empty());
        // Selection still counts as "elected" under FirstCleanSingle: the
        // clean Single happened.
        assert!(report.leader_elected());
    }

    #[test]
    fn deterministic_given_seed() {
        let config = SimConfig::new(8, CdModel::Strong).with_seed(11).with_max_slots(100_000);
        let a = run_exact(&config, &passive(), |_| Box::new(PerStation::new(Fixed(0.25))));
        let b = run_exact(&config, &passive(), |_| Box::new(PerStation::new(Fixed(0.25))));
        assert_eq!(a.resolved_at, b.resolved_at);
        assert_eq!(a.winner, b.winner);
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn jamming_suppresses_singles() {
        // eps=1/2, T=2: adversary can jam every other slot. A lone
        // always-transmitter resolves only in an unjammed slot.
        let spec = AdversarySpec::new(Rate::from_f64(0.5), 2, JamStrategyKind::Saturating);
        let config = SimConfig::new(1, CdModel::Strong).with_seed(1).with_max_slots(10);
        let report = run_exact(&config, &spec, |_| Box::new(PerStation::new(Fixed(1.0))));
        // Slot 0 is jammed (budget allows one of the first two), slot 1
        // cannot be, so resolution happens at slot 1.
        assert_eq!(report.resolved_at, Some(1));
        assert_eq!(report.counts.jammed, 1);
    }

    #[test]
    fn trace_recording_includes_estimates() {
        #[derive(Debug, Clone)]
        struct WithEstimate(f64);
        impl UniformProtocol for WithEstimate {
            fn tx_prob(&mut self, _: u64) -> f64 {
                0.0
            }
            fn on_state(&mut self, _: u64, _: ChannelState) {
                self.0 += 1.0;
            }
            fn estimate(&self) -> Option<f64> {
                Some(self.0)
            }
        }
        let config =
            SimConfig::new(3, CdModel::Strong).with_seed(1).with_max_slots(5).with_trace(true);
        let report =
            run_exact(&config, &passive(), |_| Box::new(PerStation::new(WithEstimate(0.0))));
        let trace = report.trace.expect("trace requested");
        assert_eq!(trace.len(), 5);
        assert_eq!(trace.estimates.len(), 5);
        assert_eq!(trace.estimates, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn all_terminated_stop_rule_reports_leaders() {
        let config = SimConfig::new(1, CdModel::Strong)
            .with_seed(3)
            .with_max_slots(10)
            .with_stop(StopRule::AllTerminated);
        let report = run_exact(&config, &passive(), |_| Box::new(PerStation::new(Fixed(1.0))));
        assert!(report.all_terminated);
        assert!(!report.timed_out);
        assert_eq!(report.leaders, vec![0]);
    }

    #[test]
    fn resettable_stations_are_recycled_without_calling_the_factory() {
        /// `Fixed` plus in-place reset (it carries no run state).
        #[derive(Debug, Clone)]
        struct ResettableFixed(f64);
        impl UniformProtocol for ResettableFixed {
            fn tx_prob(&mut self, _: u64) -> f64 {
                self.0
            }
            fn on_state(&mut self, _: u64, _: ChannelState) {}
            fn reset(&mut self) -> bool {
                true
            }
        }

        let spec = AdversarySpec::new(Rate::from_f64(0.5), 8, JamStrategyKind::Saturating);
        let mut arena = SimArena::new();
        let mut factory_calls = 0u64;
        for round in 0..4u64 {
            let config = SimConfig::new(8, CdModel::Strong).with_seed(round).with_max_slots(500);
            let fresh =
                run_exact(&config, &spec, |_| Box::new(PerStation::new(ResettableFixed(0.3))));
            let reused = run_exact_in(
                &config,
                &spec,
                |_| {
                    factory_calls += 1;
                    Box::new(PerStation::new(ResettableFixed(0.3)))
                },
                &mut arena,
            );
            assert_eq!(fresh.slots, reused.slots, "round {round}");
            assert_eq!(fresh.resolved_at, reused.resolved_at, "round {round}");
            assert_eq!(fresh.winner, reused.winner, "round {round}");
            assert_eq!(fresh.counts, reused.counts, "round {round}");
            assert_eq!(fresh.energy, reused.energy, "round {round}");
        }
        assert_eq!(factory_calls, 8, "only the first arena run may build stations");
    }

    #[test]
    fn station_count_change_rebuilds_instead_of_recycling() {
        #[derive(Debug, Clone)]
        struct Resettable;
        impl UniformProtocol for Resettable {
            fn tx_prob(&mut self, _: u64) -> f64 {
                0.5
            }
            fn on_state(&mut self, _: u64, _: ChannelState) {}
            fn reset(&mut self) -> bool {
                true
            }
        }

        let mut arena = SimArena::new();
        for n in [4u64, 16, 4] {
            let config = SimConfig::new(n, CdModel::Strong).with_seed(2).with_max_slots(200);
            let fresh = run_exact(&config, &passive(), |_| Box::new(PerStation::new(Resettable)));
            let reused = run_exact_in(
                &config,
                &passive(),
                |_| Box::new(PerStation::new(Resettable)),
                &mut arena,
            );
            assert_eq!(fresh.resolved_at, reused.resolved_at, "n = {n}");
            assert_eq!(fresh.counts, reused.counts, "n = {n}");
        }
    }

    #[test]
    fn arena_runs_are_bit_identical_to_fresh_runs() {
        let config = SimConfig::new(8, CdModel::Strong)
            .with_seed(21)
            .with_max_slots(50_000)
            .with_trace(true);
        let spec = AdversarySpec::new(Rate::from_f64(0.5), 8, JamStrategyKind::Saturating);
        let fresh = run_exact(&config, &spec, |_| Box::new(PerStation::new(Fixed(0.2))));
        let mut arena = SimArena::new();
        for seed_bump in 0..3u64 {
            // Interleave other seeds so reuse carries real dirty state.
            let other = config.clone().with_seed(100 + seed_bump);
            let mut r =
                run_exact_in(&other, &spec, |_| Box::new(PerStation::new(Fixed(0.2))), &mut arena);
            arena.reclaim_trace(&mut r);
        }
        let mut reused =
            run_exact_in(&config, &spec, |_| Box::new(PerStation::new(Fixed(0.2))), &mut arena);
        assert_eq!(fresh.slots, reused.slots);
        assert_eq!(fresh.resolved_at, reused.resolved_at);
        assert_eq!(fresh.winner, reused.winner);
        assert_eq!(fresh.counts, reused.counts);
        assert_eq!(fresh.energy, reused.energy);
        let (ft, rt) = (fresh.trace.unwrap(), reused.trace.as_ref().unwrap());
        assert_eq!(ft.len(), rt.len());
        assert!(ft.iter().zip(rt.iter()).all(|(a, b)| a == b));
        assert_eq!(ft.estimates, rt.estimates);
        arena.reclaim_trace(&mut reused);
    }
}
