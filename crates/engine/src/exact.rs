//! The exact per-station simulator.
//!
//! Faithful to the model slot by slot: the adversary commits its jam
//! decision first (it never sees current-slot actions), every running
//! station then draws its action, the ground truth is resolved, and each
//! station receives its CD-model-specific observation. Cost is O(n) per
//! slot — use [`crate::cohort`] for uniform protocols at large `n`.

use crate::config::{SimConfig, StopRule};
use crate::protocol::{Action, Protocol, Status};
use crate::report::{EnergyStats, RunReport};
use jle_adversary::AdversarySpec;
use jle_radio::{cd, ChannelHistory, SlotTruth, Trace};
use rand::{rngs::SmallRng, SeedableRng};

/// Seed-stream separator so station randomness and adversary randomness
/// are independent.
const ADV_SEED_XOR: u64 = 0x9E37_79B9_7F4A_7C15;

/// Run one simulation with a fresh station set from `factory`.
///
/// `factory(i)` builds the protocol instance of station `i`; protocols
/// needing distinct roles can inspect `i`, while symmetric protocols
/// ignore it.
pub fn run_exact(
    config: &SimConfig,
    adversary: &AdversarySpec,
    mut factory: impl FnMut(u64) -> Box<dyn Protocol>,
) -> RunReport {
    assert!(config.n >= 1, "need at least one station");
    let mut stations: Vec<Box<dyn Protocol>> = (0..config.n).map(&mut factory).collect();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut adv_rng = SmallRng::seed_from_u64(config.seed ^ ADV_SEED_XOR);
    let mut strategy = adversary.strategy();
    let mut budget = adversary.budget();
    let mut history = ChannelHistory::new(config.effective_retention(adversary.t_window));
    let mut trace =
        config.record_trace.then(|| Trace::with_capacity(config.max_slots.min(1 << 20) as usize));
    let mut energy = EnergyStats::default();
    let mut report = RunReport::default();
    let mut transmitted = vec![false; stations.len()];
    let mut asleep = vec![false; stations.len()];

    for slot in 0..config.max_slots {
        // 1. Adversary commits before seeing actions.
        let want = strategy.decide(&history, &budget, &mut adv_rng);
        let jam = want && budget.can_jam();
        budget.advance(jam);

        // 2. Running stations act.
        let mut k = 0u64;
        let mut lone_tx: Option<u64> = None;
        let mut listeners = 0u64;
        for (i, st) in stations.iter_mut().enumerate() {
            transmitted[i] = false;
            asleep[i] = false;
            if st.status().terminal() {
                asleep[i] = true; // terminated stations observe nothing
                continue;
            }
            match st.act(slot, &mut rng) {
                Action::Transmit => {
                    transmitted[i] = true;
                    k += 1;
                    lone_tx = if k == 1 { Some(i as u64) } else { None };
                }
                Action::Listen => listeners += 1,
                Action::Sleep => asleep[i] = true,
            }
        }
        let noisy = config.noise_prob > 0.0 && {
            use rand::Rng;
            rng.gen_bool(config.noise_prob)
        };
        if noisy {
            report.noise_slots += 1;
        }
        let truth = SlotTruth::new(k, jam || noisy);
        energy.transmissions += k;
        energy.listens += listeners;

        // 3. Record.
        if let Some(tr) = trace.as_mut() {
            let est = stations.iter().find(|s| !s.status().terminal()).and_then(|s| s.estimate());
            match est {
                Some(u) => tr.push_with_estimate(&truth, u),
                None => tr.push(&truth),
            }
        }
        if truth.is_clean_single() && report.resolved_at.is_none() {
            report.resolved_at = Some(slot);
            report.winner = lone_tx;
        }

        // 4. Deliver observations to stations that participated (sleeping
        // and terminated stations observe nothing).
        for (i, st) in stations.iter_mut().enumerate() {
            if asleep[i] && !transmitted[i] {
                continue;
            }
            let obs = cd::observe(config.cd, transmitted[i], &truth);
            st.feedback(slot, transmitted[i], obs);
        }
        history.push(&truth);
        report.slots = slot + 1;

        // 5. Stop rules.
        match config.stop {
            StopRule::FirstCleanSingle => {
                if report.resolved_at.is_some() {
                    break;
                }
            }
            StopRule::AllTerminated => {
                if stations.iter().all(|s| s.status().terminal()) {
                    report.all_terminated = true;
                    break;
                }
            }
        }
    }

    report.timed_out = match config.stop {
        StopRule::FirstCleanSingle => report.resolved_at.is_none(),
        StopRule::AllTerminated => !report.all_terminated,
    };
    report.cap_hit = report.timed_out && report.slots == config.max_slots;
    report.leaders = stations
        .iter()
        .enumerate()
        .filter(|(_, s)| s.status() == Status::Leader)
        .map(|(i, _)| i as u64)
        .collect();
    report.counts = {
        use jle_radio::HistoryView;
        history.counts()
    };
    report.energy = energy;
    report.trace = trace;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{PerStation, UniformProtocol};
    use jle_adversary::{JamStrategyKind, Rate};
    use jle_radio::{CdModel, ChannelState};

    /// Uniform protocol transmitting with fixed probability forever.
    #[derive(Debug, Clone)]
    struct Fixed(f64);
    impl UniformProtocol for Fixed {
        fn tx_prob(&mut self, _: u64) -> f64 {
            self.0
        }
        fn on_state(&mut self, _: u64, _: ChannelState) {}
    }

    fn passive() -> AdversarySpec {
        AdversarySpec::passive()
    }

    #[test]
    fn single_station_wins_immediately_strong_cd() {
        let config = SimConfig::new(1, CdModel::Strong).with_seed(3).with_max_slots(10);
        let report = run_exact(&config, &passive(), |_| Box::new(PerStation::new(Fixed(1.0))));
        assert_eq!(report.resolved_at, Some(0));
        assert_eq!(report.winner, Some(0));
        assert_eq!(report.leaders, vec![0]);
        assert!(report.leader_elected());
        assert!(!report.timed_out);
    }

    #[test]
    fn two_always_transmitters_never_resolve() {
        let config = SimConfig::new(2, CdModel::Strong).with_seed(3).with_max_slots(50);
        let report = run_exact(&config, &passive(), |_| Box::new(PerStation::new(Fixed(1.0))));
        assert!(report.timed_out);
        assert_eq!(report.resolved_at, None);
        assert_eq!(report.counts.collisions, 50);
        assert_eq!(report.energy.transmissions, 100);
    }

    #[test]
    fn coin_flip_eventually_resolves() {
        let config = SimConfig::new(2, CdModel::Strong).with_seed(5).with_max_slots(10_000);
        let report = run_exact(&config, &passive(), |_| Box::new(PerStation::new(Fixed(0.5))));
        assert!(report.leader_elected());
        let w = report.winner.unwrap();
        assert_eq!(report.leaders, vec![w]);
    }

    #[test]
    fn weak_cd_winner_does_not_learn() {
        // Under weak-CD the winner keeps Running: no station ends Leader.
        let config = SimConfig::new(2, CdModel::Weak).with_seed(5).with_max_slots(10_000);
        let report = run_exact(&config, &passive(), |_| Box::new(PerStation::new(Fixed(0.5))));
        assert!(report.resolved_at.is_some());
        assert!(report.leaders.is_empty());
        // Selection still counts as "elected" under FirstCleanSingle: the
        // clean Single happened.
        assert!(report.leader_elected());
    }

    #[test]
    fn deterministic_given_seed() {
        let config = SimConfig::new(8, CdModel::Strong).with_seed(11).with_max_slots(100_000);
        let a = run_exact(&config, &passive(), |_| Box::new(PerStation::new(Fixed(0.25))));
        let b = run_exact(&config, &passive(), |_| Box::new(PerStation::new(Fixed(0.25))));
        assert_eq!(a.resolved_at, b.resolved_at);
        assert_eq!(a.winner, b.winner);
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn jamming_suppresses_singles() {
        // eps=1/2, T=2: adversary can jam every other slot. A lone
        // always-transmitter resolves only in an unjammed slot.
        let spec = AdversarySpec::new(Rate::from_f64(0.5), 2, JamStrategyKind::Saturating);
        let config = SimConfig::new(1, CdModel::Strong).with_seed(1).with_max_slots(10);
        let report = run_exact(&config, &spec, |_| Box::new(PerStation::new(Fixed(1.0))));
        // Slot 0 is jammed (budget allows one of the first two), slot 1
        // cannot be, so resolution happens at slot 1.
        assert_eq!(report.resolved_at, Some(1));
        assert_eq!(report.counts.jammed, 1);
    }

    #[test]
    fn trace_recording_includes_estimates() {
        #[derive(Debug, Clone)]
        struct WithEstimate(f64);
        impl UniformProtocol for WithEstimate {
            fn tx_prob(&mut self, _: u64) -> f64 {
                0.0
            }
            fn on_state(&mut self, _: u64, _: ChannelState) {
                self.0 += 1.0;
            }
            fn estimate(&self) -> Option<f64> {
                Some(self.0)
            }
        }
        let config =
            SimConfig::new(3, CdModel::Strong).with_seed(1).with_max_slots(5).with_trace(true);
        let report =
            run_exact(&config, &passive(), |_| Box::new(PerStation::new(WithEstimate(0.0))));
        let trace = report.trace.expect("trace requested");
        assert_eq!(trace.len(), 5);
        assert_eq!(trace.estimates.len(), 5);
        assert_eq!(trace.estimates, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn all_terminated_stop_rule_reports_leaders() {
        let config = SimConfig::new(1, CdModel::Strong)
            .with_seed(3)
            .with_max_slots(10)
            .with_stop(StopRule::AllTerminated);
        let report = run_exact(&config, &passive(), |_| Box::new(PerStation::new(Fixed(1.0))));
        assert!(report.all_terminated);
        assert!(!report.timed_out);
        assert_eq!(report.leaders, vec![0]);
    }
}
